//! TCP property suite: random operation sequences over an adversarial,
//! seeded lossy link, checked against an in-memory byte-stream oracle.
//!
//! Each case builds two TCP endpoints joined by a [`simlink`] configured
//! with ≥10 % drop, ≥10 % duplication and ≥10 % reordering, opens a few
//! connections, then interleaves random sends, receives, pumps and clock
//! ticks on both sides. The oracle is trivial: every byte `send` accepts
//! is appended to a growing `Vec` per direction. After teardown the bytes
//! each application received must equal the oracle **exactly** — same
//! content, same order, nothing missing, nothing duplicated — no matter
//! what the wire did.
//!
//! Determinism rides along: the whole exchange is a pure function of the
//! machine clock and the seeds, so replaying a session must reproduce
//! bit-identical endpoint stats — including the FNV digest folded over
//! every transmitted and received segment (the segment trace).
//!
//! [`simlink`]: paramecium::netstack::simlink

use paramecium::machine::Machine;
use paramecium::netstack::simlink::{make_simlink, LinkConfig};
use paramecium::netstack::tcp::{make_tcp, BASE_RTO, STAT_RETRANSMITS};
use paramecium::prelude::*;
use parking_lot::Mutex;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

const IP_A: u32 = 0x0A00_0001;
const IP_B: u32 = 0x0A00_0002;
const MAC_A: [u8; 6] = [2, 0, 0, 0, 0, 0xAA];
const MAC_B: [u8; 6] = [2, 0, 0, 0, 0, 0xBB];
const PORT: i64 = 3000;

fn tcp(ep: &ObjRef, method: &str, args: &[Value]) -> Value {
    ep.invoke("tcp", method, args).unwrap()
}

fn tcp_stats(ep: &ObjRef) -> Vec<i64> {
    tcp(ep, "stats", &[])
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

fn state_of(ep: &ObjRef, id: i64) -> String {
    tcp(ep, "state", &[Value::Int(id)])
        .as_str()
        .unwrap()
        .to_string()
}

/// The full observable outcome of a session, compared across replays.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    stats_a: Vec<i64>,
    stats_b: Vec<i64>,
    delivered_to_b: Vec<Vec<u8>>,
    delivered_to_a: Vec<Vec<u8>>,
}

/// Runs one random session over a link with every impairment at 10 %.
/// Panics if any stream diverges from its oracle or a connection fails
/// to open or close.
fn run_session(seed: u64) -> Outcome {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let (end_a, end_b) = make_simlink(machine.clone(), LinkConfig::adversarial(seed));
    let a = make_tcp(machine.clone(), end_a, IP_A, MAC_A);
    let b = make_tcp(machine.clone(), end_b, IP_B, MAC_B);
    tcp(&b, "listen", &[Value::Int(PORT)]);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7C15_5EED);
    let pump_round = |ticks: u64| {
        tcp(&a, "pump", &[]);
        tcp(&b, "pump", &[]);
        machine.lock().tick(ticks);
    };

    // Open connections one at a time so the a-side/b-side id pairing is
    // unambiguous even when the wire reorders handshakes.
    let n_conns = rng.gen_range(1usize..3);
    let mut conns: Vec<(i64, i64)> = Vec::new();
    for _ in 0..n_conns {
        let ida = tcp(&a, "connect", &[Value::Int(IP_B as i64), Value::Int(PORT)])
            .as_int()
            .unwrap();
        let idb = loop {
            let idb = tcp(&b, "accept", &[Value::Int(PORT)]).as_int().unwrap();
            if idb >= 0 {
                break idb;
            }
            pump_round(BASE_RTO / 4);
        };
        conns.push((ida, idb));
    }

    // Oracles and receive logs, one per connection per direction.
    let mut oracle_ab = vec![Vec::new(); n_conns];
    let mut oracle_ba = vec![Vec::new(); n_conns];
    let mut got_at_b = vec![Vec::new(); n_conns];
    let mut got_at_a = vec![Vec::new(); n_conns];

    let steps = rng.gen_range(30usize..100);
    for _ in 0..steps {
        let c = rng.gen_range(0usize..n_conns);
        let (ida, idb) = conns[c];
        match rng.gen_range(0u32..6) {
            // Send a..=b: only the bytes `send` accepts enter the oracle.
            dir @ (0 | 1) => {
                let len = rng.gen_range(1usize..1800);
                let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
                let (ep, id, oracle) = if dir == 0 {
                    (&a, ida, &mut oracle_ab[c])
                } else {
                    (&b, idb, &mut oracle_ba[c])
                };
                let accepted = tcp(
                    ep,
                    "send",
                    &[
                        Value::Int(id),
                        Value::Bytes(bytes::Bytes::from(data.clone())),
                    ],
                )
                .as_int()
                .unwrap() as usize;
                oracle.extend_from_slice(&data[..accepted]);
            }
            dir @ (2 | 3) => {
                let max = rng.gen_range(1i64..8192);
                let (ep, id, log) = if dir == 2 {
                    (&b, idb, &mut got_at_b[c])
                } else {
                    (&a, ida, &mut got_at_a[c])
                };
                let chunk = tcp(ep, "recv", &[Value::Int(id), Value::Int(max)]);
                log.extend_from_slice(chunk.as_bytes().unwrap());
            }
            4 => pump_round(rng.gen_range(1u64..BASE_RTO)),
            _ => machine.lock().tick(rng.gen_range(1u64..BASE_RTO / 2)),
        }
    }

    // Teardown: close every connection from both ends, then keep the
    // network moving (draining receivers so flow control cannot stall)
    // until everything reaches CLOSED.
    for &(ida, idb) in &conns {
        tcp(&a, "close", &[Value::Int(ida)]);
        tcp(&b, "close", &[Value::Int(idb)]);
    }
    for round in 0.. {
        assert!(round < 4_000, "connections failed to close");
        pump_round(BASE_RTO / 2);
        for (c, &(ida, idb)) in conns.iter().enumerate() {
            let chunk = tcp(&b, "recv", &[Value::Int(idb), Value::Int(1 << 16)]);
            got_at_b[c].extend_from_slice(chunk.as_bytes().unwrap());
            let chunk = tcp(&a, "recv", &[Value::Int(ida), Value::Int(1 << 16)]);
            got_at_a[c].extend_from_slice(chunk.as_bytes().unwrap());
        }
        let all_closed = conns
            .iter()
            .all(|&(ida, idb)| state_of(&a, ida) == "closed" && state_of(&b, idb) == "closed");
        if all_closed {
            break;
        }
    }

    // The delivered streams must match the oracles exactly: in order,
    // complete, duplicate-free — despite ≥10 % drop/dup/reorder.
    for c in 0..n_conns {
        assert_eq!(
            got_at_b[c], oracle_ab[c],
            "conn {c}: a→b stream diverged from oracle (seed {seed})"
        );
        assert_eq!(
            got_at_a[c], oracle_ba[c],
            "conn {c}: b→a stream diverged from oracle (seed {seed})"
        );
    }

    Outcome {
        stats_a: tcp_stats(&a),
        stats_b: tcp_stats(&b),
        delivered_to_b: got_at_b,
        delivered_to_a: got_at_a,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed: the delivered byte streams equal the oracle exactly
    /// (checked inside `run_session`), and replaying the same seed
    /// reproduces bit-identical stats — including the segment-trace
    /// digest — on both endpoints.
    #[test]
    fn prop_random_ops_match_oracle_and_replay_identically(seed in any::<u64>()) {
        let first = run_session(seed);
        let second = run_session(seed);
        prop_assert_eq!(&first, &second);
    }
}

/// A fixed seed chosen so the wire demonstrably hurt the exchange: the
/// oracle still matches (asserted inside), and the endpoints really did
/// retransmit — the suite is not accidentally testing a clean link.
#[test]
fn lossy_link_forces_retransmissions_yet_streams_survive() {
    let outcome = run_session(7);
    let retransmits = outcome.stats_a[STAT_RETRANSMITS] + outcome.stats_b[STAT_RETRANSMITS];
    assert!(
        retransmits > 0,
        "a 10% lossy link must force retransmissions, stats: {outcome:?}"
    );
    let moved: usize = outcome
        .delivered_to_b
        .iter()
        .chain(&outcome.delivered_to_a)
        .map(Vec::len)
        .sum();
    assert!(moved > 0, "the session must actually move data");
}

/// Different seeds must take different fates — if every run produced the
/// same digest the determinism check above would be vacuous.
#[test]
fn different_seeds_diverge() {
    let a = run_session(1001);
    let b = run_session(1002);
    assert_ne!(
        (a.stats_a, a.stats_b),
        (b.stats_a, b.stats_b),
        "distinct seeds should produce distinct segment traces"
    );
}
