//! Integration: the complete loader decision matrix — component kind ×
//! placement × certification state × options — asserting the protection
//! regime (or refusal) for every combination.

use paramecium::prelude::*;
use paramecium::sfi::workloads;

/// What certification state the component is in before the load.
#[derive(Clone, Copy, Debug)]
enum CertState {
    None,
    UserOnly,
    Kernel,
}

fn prepare(world: &World, name: &str, verifiable: bool, cert: CertState) {
    let n = &world.nucleus;
    let program = if verifiable {
        workloads::checksum_loop_verified(64, 1)
    } else {
        workloads::checksum_loop(64, 1)
    };
    n.repository.add_bytecode(name, &program);
    match cert {
        CertState::None => {}
        CertState::UserOnly => world.certify_by_root(name, &[Right::RunUser]).unwrap(),
        CertState::Kernel => world
            .certify_by_root(name, &[Right::RunKernel, Right::RunUser])
            .unwrap(),
    }
}

#[test]
fn kernel_placement_matrix() {
    // (verifiable, cert, strict, expected)
    let cases: &[(bool, CertState, bool, Option<Protection>)] = &[
        // Certified for kernel: always native, strict or not.
        (
            true,
            CertState::Kernel,
            true,
            Some(Protection::CertifiedNative),
        ),
        (
            false,
            CertState::Kernel,
            true,
            Some(Protection::CertifiedNative),
        ),
        (
            false,
            CertState::Kernel,
            false,
            Some(Protection::CertifiedNative),
        ),
        // Uncertified, permissive: software protection by verifiability.
        (true, CertState::None, false, Some(Protection::Verified)),
        (false, CertState::None, false, Some(Protection::Sandboxed)),
        // Uncertified, strict: refused.
        (true, CertState::None, true, None),
        (false, CertState::None, true, None),
        // User-only certificate never helps kernel placement.
        (true, CertState::UserOnly, true, None),
        // …but permissive mode still softens it in.
        (true, CertState::UserOnly, false, Some(Protection::Verified)),
    ];
    for (i, (verifiable, cert, strict, expected)) in cases.iter().enumerate() {
        let world = World::boot();
        let name = format!("c{i}");
        prepare(&world, &name, *verifiable, *cert);
        let mut opts = LoadOptions::kernel(format!("/kernel/{name}"));
        if *strict {
            opts = opts.strict();
        }
        let got = world.nucleus.load(&name, &opts);
        match expected {
            Some(p) => assert_eq!(
                got.as_ref().map(|r| r.protection).ok(),
                Some(*p),
                "case {i}: {verifiable} {cert:?} strict={strict} -> {got:?}"
            ),
            None => assert!(got.is_err(), "case {i} should be refused, got {got:?}"),
        }
    }
}

#[test]
fn forced_sandbox_overrides_everything() {
    // Even a fully certified, verifiable component runs sandboxed when
    // the user forces the Exokernel baseline.
    let world = World::boot();
    prepare(&world, "c", true, CertState::Kernel);
    let report = world
        .nucleus
        .load("c", &LoadOptions::kernel("/kernel/c").sandboxed())
        .unwrap();
    assert_eq!(report.protection, Protection::Sandboxed);
}

#[test]
fn user_placement_matrix() {
    for (i, (cert, require_cert, ok)) in [
        (CertState::None, false, true),
        (CertState::None, true, false),
        (CertState::UserOnly, true, true),
        (CertState::Kernel, true, true),
    ]
    .iter()
    .enumerate()
    {
        let world = World::boot();
        let name = format!("u{i}");
        prepare(&world, &name, false, *cert);
        let app = world
            .nucleus
            .create_domain("app", KERNEL_DOMAIN, [])
            .unwrap();
        let mut opts = LoadOptions::user(app.id, format!("/app/{name}"));
        opts.require_user_cert = *require_cert;
        let got = world.nucleus.load(&name, &opts);
        if *ok {
            assert_eq!(got.unwrap().protection, Protection::Hardware, "case {i}");
        } else {
            assert!(got.is_err(), "case {i}");
        }
    }
}

#[test]
fn load_into_nonexistent_domain_fails_cleanly() {
    let world = World::boot();
    prepare(&world, "c", true, CertState::Kernel);
    let err = world
        .nucleus
        .load("c", &LoadOptions::user(DomainId(99), "/x/c"))
        .unwrap_err();
    assert!(matches!(err, paramecium::core::CoreError::NoSuchDomain(99)));
}

#[test]
fn duplicate_registration_path_fails_and_leaves_first_intact() {
    let world = World::boot();
    prepare(&world, "a", true, CertState::Kernel);
    prepare(&world, "b", true, CertState::Kernel);
    world
        .nucleus
        .load("a", &LoadOptions::kernel("/kernel/slot"))
        .unwrap();
    assert!(world
        .nucleus
        .load("b", &LoadOptions::kernel("/kernel/slot"))
        .is_err());
    let obj = world.nucleus.bind(KERNEL_DOMAIN, "/kernel/slot").unwrap();
    assert_eq!(obj.class(), "a");
}

#[test]
fn missing_component_is_a_clean_error() {
    let world = World::boot();
    assert!(matches!(
        world
            .nucleus
            .load("ghost", &LoadOptions::kernel("/kernel/g")),
        Err(paramecium::core::CoreError::NoSuchComponent(_))
    ));
}
