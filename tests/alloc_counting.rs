//! Heap-allocation accounting for the dispatch fast path.
//!
//! The no-alloc invocation pipeline promises that a warmed flat-args
//! dispatch performs **zero** heap allocations, and that each interposer
//! hop adds none either. This binary installs a counting
//! `#[global_allocator]` and pins those budgets; a regression that
//! reintroduces a per-call `Vec` clone or `Box` fails here, not in a
//! benchmark someone has to eyeball.
//!
//! Counting is **per thread** (const-initialised TLS, so the allocator
//! hooks never allocate): the default test harness runs `#[test]`s on
//! parallel threads, and a process-global counter would pick up sibling
//! tests' setup allocations and flake.

use paramecium::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn record_alloc() {
    // TLS access can itself recurse into the allocator during teardown on
    // some platforms; `try_with` makes that path a no-op instead of UB.
    let _ = TL_COUNTING.try_with(|counting| {
        if counting.get() {
            let _ = TL_ALLOCS.try_with(|allocs| allocs.set(allocs.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Returns the number of heap allocations performed by `f` on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    TL_ALLOCS.with(|a| a.set(0));
    TL_COUNTING.with(|c| c.set(true));
    f();
    TL_COUNTING.with(|c| c.set(false));
    TL_ALLOCS.with(|a| a.get())
}

fn counter() -> ObjRef {
    ObjectBuilder::new("counter")
        .state(0i64)
        .interface("ctr", |i| {
            i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let by = args[0].as_int()?;
                this.with_state(|n: &mut i64| {
                    *n += by;
                    Ok(Value::Int(*n))
                })
            })
        })
        .build()
}

const CALLS: u64 = 1_000;

#[test]
fn flat_args_dispatch_fast_path_is_zero_alloc() {
    let obj = counter();
    let args = [Value::Int(1)];
    // Warm: first call resolves and publishes the cache snapshot.
    for _ in 0..8 {
        obj.invoke("ctr", "incr", &args).unwrap();
    }
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            obj.invoke("ctr", "incr", &args).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "warmed flat-args dispatch must not touch the heap ({allocs} allocs / {CALLS} calls)"
    );
}

#[test]
fn bound_method_call_is_zero_alloc() {
    let obj = counter();
    let bound = obj
        .interface("ctr")
        .unwrap()
        .bind_method(&obj, "incr")
        .unwrap();
    let args = [Value::Int(2)];
    bound.call(&args).unwrap();
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            bound.call(&args).unwrap();
        }
    });
    assert_eq!(allocs, 0, "bound-method calls must not touch the heap");
}

#[test]
fn interposer_hops_are_zero_alloc_once_warm() {
    // A 4-deep hook-free chain: every hop forwards through a warmed
    // `CallCache`. The budget is zero allocations per call *per hop*.
    let mut obj = counter();
    for _ in 0..4 {
        obj = InterposerBuilder::new(obj).build();
    }
    let args = [Value::Int(1)];
    for _ in 0..8 {
        obj.invoke("ctr", "incr", &args).unwrap();
    }
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            obj.invoke("ctr", "incr", &args).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "warmed interposer chain must not touch the heap ({allocs} allocs / {CALLS} calls)"
    );
}

#[test]
fn hooked_interposer_hops_have_bounded_allocations() {
    // Hooks are user code, so the budget is looser, but the *dispatch*
    // machinery still must not allocate: with counting-only hooks the
    // whole chain stays at zero.
    let hook_calls = std::sync::Arc::new(AtomicU64::new(0));
    let mut obj = counter();
    for _ in 0..2 {
        let h = hook_calls.clone();
        obj = InterposerBuilder::new(obj)
            .before(move |_, _, _| {
                h.fetch_add(1, Ordering::Relaxed);
            })
            .build();
    }
    let args = [Value::Int(1)];
    for _ in 0..8 {
        obj.invoke("ctr", "incr", &args).unwrap();
    }
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            obj.invoke("ctr", "incr", &args).unwrap();
        }
    });
    assert_eq!(allocs, 0, "hook wrappers must not allocate per call");
    assert!(hook_calls.load(Ordering::Relaxed) >= 2 * CALLS);
}

#[test]
fn delegated_dispatch_has_bounded_allocations() {
    // Delegated (fallback-served) methods re-resolve the interface on
    // every call today; the budget pins the status quo so regressions
    // (e.g. a per-call argument clone) cannot hide. Currently the path
    // performs zero allocations per call as well.
    let base = counter();
    let iface = paramecium::obj::InterfaceBuilder::new("ctr").finish();
    let child = ObjectBuilder::new("child")
        .raw_interface(paramecium::obj::delegate_interface(iface, base))
        .build();
    let args = [Value::Int(1)];
    for _ in 0..8 {
        child.invoke("ctr", "incr", &args).unwrap();
    }
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            child.invoke("ctr", "incr", &args).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "warmed delegated dispatch must not touch the heap ({allocs} allocs / {CALLS} calls)"
    );
}

#[test]
fn zero_copy_frame_path_is_alloc_free_once_warm() {
    // The netstack threads refcounted `bytes::Bytes` views from the NIC
    // device through the driver object: `send` hands the caller's buffer
    // to the device and `recv` hands the device's buffer to the caller,
    // neither copying the frame body. With the dispatch path warm and the
    // device queues grown, a full send + receive round trip must not
    // touch the heap at all — a regression that reintroduces a per-frame
    // `to_vec()` fails here.
    use paramecium::core::memsvc::MemService;
    use paramecium::machine::{dev::nic::Nic, Machine};
    use paramecium::netstack::make_driver;

    let machine = std::sync::Arc::new(parking_lot::Mutex::new(Machine::new()));
    let mem = std::sync::Arc::new(MemService::new(machine.clone()));
    let driver = make_driver(&mem, KERNEL_DOMAIN).unwrap();
    let frame = bytes::Bytes::from(vec![0u8; 1024]);
    let args = [Value::Bytes(frame.clone())];

    let roundtrip = |assert_len: bool| {
        driver.invoke("netdev", "send", &args).unwrap();
        let mut m = machine.lock();
        let nic = m.device_mut::<Nic>("nic").unwrap();
        let wire_frame = nic.tx_take().unwrap();
        nic.inject_rx(wire_frame);
        drop(m);
        let got = driver.invoke("netdev", "recv", &[]).unwrap();
        if assert_len {
            assert_eq!(got.as_bytes().unwrap().len(), 1024);
        }
    };

    // Warm: dispatch caches publish, device queues reach steady capacity.
    for _ in 0..8 {
        roundtrip(true);
    }
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            roundtrip(false);
        }
    });
    assert_eq!(
        allocs, 0,
        "frame send + recv round trips must not copy or allocate \
         ({allocs} allocs / {CALLS} round trips)"
    );
}

#[test]
fn arg_frame_inline_push_is_zero_alloc() {
    use paramecium::obj::value::{ArgFrame, ARG_FRAME_INLINE};
    let allocs = count_allocs(|| {
        for _ in 0..CALLS {
            let mut frame = ArgFrame::new();
            for i in 0..ARG_FRAME_INLINE {
                frame.push(Value::Int(i as i64));
            }
            assert!(frame.is_inline());
            std::hint::black_box(frame.as_slice());
        }
    });
    assert_eq!(allocs, 0, "inline frames must live entirely on the stack");
}
