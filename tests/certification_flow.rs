//! Integration: the full certification story, including the attacks the
//! architecture is designed to stop.

use paramecium::cert::{
    validate_chain, AdminCertifier, Authority, CertificationPolicy, CertifyMethod,
    CompilerCertifier, ProverCertifier,
};
use paramecium::prelude::*;
use paramecium::sfi::workloads;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn compiler_to_kernel_pipeline() {
    // SPIN-style: the trusted compiler's output is automatically certified
    // and runs native in the kernel.
    let world = World::boot();
    let n = &world.nucleus;
    n.repository
        .add_bytecode("fast-path", &workloads::checksum_words_verified(1024, 2));
    let signer = world.certify("fast-path", &[Right::RunKernel]).unwrap();
    assert_eq!(signer, 0, "the compiler signs verifiable code first");
    let report = n
        .load(
            "fast-path",
            &LoadOptions::kernel("/kernel/fast-path").strict(),
        )
        .unwrap();
    assert_eq!(report.protection, Protection::CertifiedNative);
    let obj = n.bind(KERNEL_DOMAIN, "/kernel/fast-path").unwrap();
    let r = obj
        .invoke(
            "component",
            "run",
            &[
                Value::Bytes(bytes::Bytes::from(vec![1u8; 1024])),
                Value::Int(0),
            ],
        )
        .unwrap();
    assert!(matches!(r, Value::Int(_)));
}

#[test]
fn escape_hatch_orders_subordinates_by_preference() {
    let mut rng = StdRng::seed_from_u64(11);
    let root = Authority::new("root", &mut rng, 512);
    let honest_raw = workloads::table_fill(64, 2).encode();
    let policy = CertificationPolicy::standard(
        &root,
        CompilerCertifier::new(Authority::new("compiler", &mut rng, 512)),
        ProverCertifier::new(Authority::new("prover", &mut rng, 512), 1_000),
        AdminCertifier::new(Authority::new("admin", &mut rng, 512), &[&honest_raw]),
        vec![Right::RunKernel],
    )
    .unwrap();

    // Verifiable: first subordinate.
    let out = policy
        .certify("v", &workloads::alu_loop(4).encode(), &[Right::RunKernel])
        .unwrap();
    assert_eq!(out.signer_index, 0);

    // Unverifiable but hand-checked: falls through to the admin, and the
    // produced chain still validates against the root.
    let out = policy
        .certify("h", &honest_raw, &[Right::RunKernel])
        .unwrap();
    assert_eq!(out.signer_index, 2);
    validate_chain(root.public(), &out.chain, &out.certificate).unwrap();
    assert_eq!(out.attempts.len(), 3);
}

#[test]
fn packet_snooper_cannot_obtain_kernel_rights() {
    // The paper's threat: "software verification of the component cannot
    // easily reveal packet snooping" — but our snooper isn't even memory
    // safe, and nobody signs it.
    let world = World::boot();
    world
        .nucleus
        .repository
        .add_bytecode("snooper", &workloads::wild_writer());
    assert!(world.certify("snooper", &[Right::RunKernel]).is_err());
    // Strict kernel load refused; sandboxed load contains it.
    assert!(world
        .nucleus
        .load("snooper", &LoadOptions::kernel("/kernel/snooper").strict())
        .is_err());
    let report = world
        .nucleus
        .load("snooper", &LoadOptions::kernel("/kernel/snooper"))
        .unwrap();
    assert_eq!(report.protection, Protection::Sandboxed);
}

#[test]
fn testing_certifier_can_be_fooled_where_verification_cannot() {
    // An input-dependent bomb: behaves for small r1, scribbles wild when
    // r1 has its top bit set. Random testing with a fixed seed may miss
    // it; the verifier never does. This is why certification *method*
    // matters and is recorded in the certificate.
    use paramecium::sfi::{asm::Asm, Reg};
    let r = Reg::new;
    let mut a = Asm::new(16);
    a.li(r(2), 1);
    a.li(r(3), 63);
    a.raw(paramecium::sfi::Insn::Shr {
        rd: r(4),
        rs1: r(1),
        rs2: r(3),
    });
    a.bne(r(4), r(2), "ok"); // Top bit clear → behave.
    a.li(r(5), 0x7000_0000);
    a.stb(r(2), r(5), 0); // Bomb.
    a.label("ok");
    a.li(r(0), 0);
    a.halt();
    let bomb = a.finish().unwrap();

    // The verifier rejects it outright.
    assert!(paramecium::sfi::verifier::verify(&bomb).is_err());

    // A test team whose random inputs happen to avoid the top bit signs
    // it — the paper's point that different certifiers embody different
    // levels of assurance.
    let mut rng = StdRng::seed_from_u64(5);
    let qa = paramecium::cert::TestTeamCertifier::new(
        Authority::new("qa", &mut rng, 512),
        0, // Zero test runs: the laziest possible team.
        1 << 16,
        1,
    );
    match qa.try_certify("bomb", &bomb.encode(), &[Right::RunKernel]) {
        CertifyOutcome::Certified(cert) => {
            assert_eq!(cert.method, CertifyMethod::TestTeam);
        }
        CertifyOutcome::Declined { reason } => panic!("lazy QA declined: {reason}"),
    }
}

#[test]
fn stolen_certificate_does_not_transfer_to_other_code() {
    // Certify component A, then try to load component B claiming A's
    // certificate: the digest lookup fails.
    let world = World::boot();
    let n = &world.nucleus;
    n.repository.add_bytecode("a", &workloads::alu_loop(4));
    world.certify("a", &[Right::RunKernel]).unwrap();
    n.repository.add_bytecode("b", &workloads::alu_loop(5)); // Different code.
    let err = n
        .load("b", &LoadOptions::kernel("/kernel/b").strict())
        .unwrap_err();
    assert!(matches!(err, paramecium::core::CoreError::Cert(_)));
}

#[test]
fn rights_are_checked_per_placement() {
    // Certified for user domains only: kernel load must fail.
    let world = World::boot();
    let n = &world.nucleus;
    let image = n
        .repository
        .add_bytecode("user-only", &workloads::alu_loop(4));
    let cert = world
        .root
        .certify(
            "user-only",
            &image,
            vec![Right::RunUser],
            CertifyMethod::Administrator,
        )
        .unwrap();
    n.certsvc.install(cert, vec![]);
    assert!(n
        .load("user-only", &LoadOptions::kernel("/kernel/u").strict())
        .is_err());
    // But a user-domain load with certificate requirement passes.
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let mut opts = LoadOptions::user(app.id, "/app/u");
    opts.require_user_cert = true;
    let report = n.load("user-only", &opts).unwrap();
    assert_eq!(report.protection, Protection::Hardware);
}

#[test]
fn delegation_cannot_amplify_rights_end_to_end() {
    let mut rng = StdRng::seed_from_u64(21);
    let world = World::boot();
    let n = &world.nucleus;
    // Root delegates RunUser only; the subordinate signs for RunKernel.
    let sub = Authority::new("sneaky", &mut rng, 512);
    let chain = vec![world
        .root
        .delegate("sneaky", sub.public(), vec![Right::RunUser])
        .unwrap()];
    let image = n.repository.add_bytecode("esc", &workloads::alu_loop(4));
    let cert = sub
        .certify(
            "esc",
            &image,
            vec![Right::RunKernel],
            CertifyMethod::Administrator,
        )
        .unwrap();
    n.certsvc.install(cert, chain);
    let err = n
        .load("esc", &LoadOptions::kernel("/kernel/esc").strict())
        .unwrap_err();
    assert!(matches!(err, paramecium::core::CoreError::Cert(_)));
}

#[test]
fn certification_method_is_auditable_on_the_loaded_component() {
    let world = World::boot();
    let n = &world.nucleus;
    n.repository
        .add_bytecode("audited", &workloads::checksum_loop_verified(64, 1));
    world.certify("audited", &[Right::RunKernel]).unwrap();
    n.load("audited", &LoadOptions::kernel("/kernel/audited"))
        .unwrap();
    let image = n.repository.image_of("audited").unwrap();
    let cert = n.certsvc.validate_for(&image, Right::RunKernel).unwrap();
    assert_eq!(cert.method, CertifyMethod::TypeSafeCompiler);
    assert_eq!(cert.component, "audited");
}
