//! Workspace-wiring smoke test: one path through `core` + `cert` + `sfi` +
//! `obj` at once. Boots a world, certifies a single `sfi::workloads`
//! component, loads it into both the kernel domain and a user domain, and
//! invokes it locally and across the domain boundary (through a proxy).

use paramecium::prelude::*;

#[test]
fn certified_component_loads_into_kernel_and_user_domains() {
    let world = World::boot();
    let n = &world.nucleus;

    // Repository + certification policy (cert crate over an sfi image).
    let program = paramecium::sfi::workloads::checksum_loop_verified(64, 1);
    n.repository.add_bytecode("csum", &program);
    world
        .certify("csum", &[Right::RunKernel, Right::RunUser])
        .unwrap();

    // Kernel placement: the certificate wins, so the component runs as
    // certified native code with no run-time checks.
    let kernel_report = n
        .load("csum", &LoadOptions::kernel("/kernel/csum"))
        .unwrap();
    assert_eq!(kernel_report.protection, Protection::CertifiedNative);
    assert_eq!(kernel_report.domain, KERNEL_DOMAIN);

    // The same image also goes into a user protection domain, where the
    // MMU (not certification) is the protection mechanism.
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let mut user_opts = LoadOptions::user(app.id, "/app/csum");
    user_opts.require_user_cert = true;
    let user_report = n.load("csum", &user_opts).unwrap();
    assert_eq!(user_report.protection, Protection::Hardware);
    assert_eq!(user_report.domain, app.id);

    // Invoke the kernel instance from its home domain (plain dispatch) and
    // from the user domain (cross-domain proxy): same answer both ways.
    let payload = Value::Bytes(bytes::Bytes::from(vec![1u8; 64]));
    let local = n.bind(KERNEL_DOMAIN, "/kernel/csum").unwrap();
    let proxied = n.bind(app.id, "/kernel/csum").unwrap();
    let direct = local
        .invoke("component", "run", &[payload.clone(), Value::Int(0)])
        .unwrap();
    let cross = proxied
        .invoke("component", "run", &[payload.clone(), Value::Int(0)])
        .unwrap();
    assert_eq!(direct, Value::Int(64));
    assert_eq!(direct, cross);

    // The user-domain instance computes the same checksum under hardware
    // protection, and knows which regime it is running under.
    let user_obj = n.bind(app.id, "/app/csum").unwrap();
    let user_sum = user_obj
        .invoke("component", "run", &[payload, Value::Int(0)])
        .unwrap();
    assert_eq!(user_sum, Value::Int(64));
    let regime = user_obj.invoke("component", "protection", &[]).unwrap();
    assert_eq!(regime, Value::Str("Hardware".into()));
}
