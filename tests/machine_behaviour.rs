//! Integration: machine-substrate behaviour observed through the nucleus —
//! TLB effects, interrupt priorities, console logging, disk persistence.

use paramecium::machine::dev::{console, Console, Disk};
use paramecium::machine::mmu::Perms;
use paramecium::machine::trap::IRQ_VECTOR_BASE;
use paramecium::prelude::*;
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

#[test]
fn tlb_hit_rates_reflect_locality() {
    let world = World::boot();
    let n = &world.nucleus;
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let base = n.mem.alloc(app.id, 8, Perms::RW).unwrap();
    n.machine().lock().mmu.tlb.reset_stats();

    // Sequential touch of 8 pages, 100 times: after the first sweep,
    // everything hits (8 pages ≪ 64 TLB entries).
    let mut buf = [0u8; 1];
    for _ in 0..100 {
        for p in 0..8u64 {
            n.mem
                .read(
                    app.id,
                    base + p * paramecium::machine::PAGE_SIZE as u64,
                    &mut buf,
                )
                .unwrap();
        }
    }
    let stats = n.machine().lock().mmu.tlb.stats();
    assert_eq!(stats.misses, 8, "one miss per page, ever");
    assert_eq!(stats.hits, 792);
}

#[test]
fn context_switches_are_counted_per_real_switch() {
    let world = World::boot();
    let n = &world.nucleus;
    let a = n.create_domain("a", KERNEL_DOMAIN, []).unwrap();
    let echo = ObjectBuilder::new("echo")
        .interface("e", |i| {
            i.method("nop", &[], TypeTag::Unit, |_, _| Ok(Value::Unit))
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/e", echo).unwrap();
    let proxy = n.bind(a.id, "/svc/e").unwrap();
    let before = n.machine().lock().mmu.switch_count();
    for _ in 0..5 {
        proxy.invoke("e", "nop", &[]).unwrap();
    }
    let switches = n.machine().lock().mmu.switch_count() - before;
    // Each crossing: caller→kernel (fault handler) →target(kernel, same) →caller.
    assert!(
        switches >= 10,
        "at least two real switches per crossing, got {switches}"
    );
}

#[test]
fn irq_priority_orders_simultaneous_interrupts() {
    let world = World::boot();
    let n = &world.nucleus;
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for line in [0u32, 1, 7] {
        let o = order.clone();
        n.events
            .register(
                IRQ_VECTOR_BASE + line,
                KERNEL_DOMAIN,
                Arc::new(move |t: &paramecium::machine::trap::Trap| o.lock().push(t.code)),
            )
            .unwrap();
    }
    {
        let machine = n.machine().clone();
        let mut m = machine.lock();
        m.irq.raise(7);
        m.irq.raise(0);
        m.irq.raise(1);
    }
    n.events.drain_interrupts(n.machine());
    assert_eq!(*order.lock(), vec![0, 1, 7], "lowest line first");
}

#[test]
fn console_collects_kernel_log_output() {
    let world = World::boot();
    let n = &world.nucleus;
    {
        let machine = n.machine().clone();
        let mut m = machine.lock();
        for b in b"panic: just kidding\n" {
            m.io_write("console", console::regs::PUTC, u32::from(*b))
                .unwrap();
        }
    }
    let machine = n.machine().clone();
    let mut m = machine.lock();
    let c = m.device_mut::<Console>("console").unwrap();
    assert_eq!(c.contents(), "panic: just kidding\n");
}

#[test]
fn disk_contents_survive_across_driver_instances() {
    use paramecium::machine::dev::disk::SECTOR_SIZE;
    let world = World::boot();
    let n = &world.nucleus;
    // Write raw via the device, read via a fresh driver object.
    {
        let machine = n.machine().clone();
        let mut m = machine.lock();
        let d = m.device_mut::<Disk>("disk").unwrap();
        let mut sector = [0u8; SECTOR_SIZE];
        sector[..4].copy_from_slice(b"BOOT");
        d.write_sector(0, &sector).unwrap();
    }
    let driver = paramecium::store::StackBuilder::disk(&n.mem, KERNEL_DOMAIN)
        .build()
        .unwrap()
        .top;
    let v = driver.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
    assert_eq!(&v.as_bytes().unwrap()[..4], b"BOOT");
}

#[test]
fn interrupt_storm_coalesces_not_overflows() {
    let world = World::boot();
    let n = &world.nucleus;
    let hits = Arc::new(AtomicU64::new(0));
    let h = hits.clone();
    n.events
        .register(
            IRQ_VECTOR_BASE + 3,
            KERNEL_DOMAIN,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
    {
        let machine = n.machine().clone();
        let mut m = machine.lock();
        for _ in 0..1000 {
            m.irq.raise(3);
        }
        assert_eq!(m.irq.coalesced_count(), 999);
    }
    n.events.drain_interrupts(n.machine());
    assert_eq!(
        hits.load(Ordering::Relaxed),
        1,
        "one delivery for the storm"
    );
}

#[test]
fn free_cost_model_still_computes_correctly() {
    // Logical behaviour must be identical under the free cost model
    // (the cost model is instrumentation, not semantics).
    let world = World::boot_with_cost(CostModel::free());
    let n = &world.nucleus;
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let echo = ObjectBuilder::new("echo")
        .interface("e", |i| {
            i.method("id", &[TypeTag::Int], TypeTag::Int, |_, a| Ok(a[0].clone()))
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/e", echo).unwrap();
    let proxy = n.bind(app.id, "/svc/e").unwrap();
    assert_eq!(
        proxy.invoke("e", "id", &[Value::Int(9)]).unwrap(),
        Value::Int(9)
    );
    assert_eq!(n.now(), 0, "free model charges nothing");
}
