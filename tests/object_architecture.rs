//! Integration: the software-architecture claims of paper §2, exercised
//! end-to-end through the nucleus — interface evolution, delegation,
//! dynamic composition, overrides, and the inline-dispatch fast path.

use paramecium::obj::compose::COMPOSITION_IFACE;
use paramecium::prelude::*;

/// "Adding a measurement interface to an RPC object does not require
/// recompilation of its users, since the RPC interface itself does not
/// change."
#[test]
fn interface_evolution_does_not_disturb_existing_bindings() {
    let world = World::boot();
    let n = &world.nucleus;

    let rpc = ObjectBuilder::new("rpc")
        .state(0i64)
        .interface("rpc", |i| {
            i.method("call", &[TypeTag::Str], TypeTag::Str, |this, args| {
                let req = args[0].as_str()?.to_owned();
                this.with_state(|calls: &mut i64| {
                    *calls += 1;
                    Ok(Value::Str(format!("reply:{req}")))
                })
            })
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/rpc", rpc).unwrap();

    // An old client binds and uses the object.
    let old_client = n.bind(KERNEL_DOMAIN, "/svc/rpc").unwrap();
    old_client
        .invoke("rpc", "call", &[Value::Str("a".into())])
        .unwrap();

    // Later, a measurement interface is added to the *live instance*.
    let live = n.bind(KERNEL_DOMAIN, "/svc/rpc").unwrap();
    let mut measurement = paramecium::obj::Interface::new("measurement");
    measurement.insert_method(
        paramecium::obj::MethodSig::new("calls", &[], TypeTag::Int),
        std::sync::Arc::new(|this: &ObjRef, _: &[Value]| {
            this.with_state(|calls: &mut i64| Ok(Value::Int(*calls)))
        }),
    );
    live.export_interface(measurement);

    // The old client keeps working through its existing handle…
    old_client
        .invoke("rpc", "call", &[Value::Str("b".into())])
        .unwrap();
    // …and a monitoring tool reads the new interface off the same name.
    let monitor = n.bind(KERNEL_DOMAIN, "/svc/rpc").unwrap();
    assert_eq!(
        monitor.invoke("measurement", "calls", &[]).unwrap(),
        Value::Int(2)
    );
}

/// "To support code sharing the architecture supports method delegation" —
/// several specialised instances sharing one generic implementation.
#[test]
fn delegation_shares_one_implementation_across_instances() {
    use paramecium::obj::{delegate_interface, InterfaceBuilder};

    let world = World::boot();
    let n = &world.nucleus;

    // The shared generic layer.
    let generic = ObjectBuilder::new("generic-proto")
        .state(0i64)
        .interface("proto", |i| {
            i.method("checksum", &[TypeTag::Bytes], TypeTag::Int, |_, args| {
                let b = args[0].as_bytes()?;
                Ok(Value::Int(b.iter().map(|&x| i64::from(x)).sum()))
            })
            .method("mtu", &[], TypeTag::Int, |_, _| Ok(Value::Int(1500)))
        })
        .build();

    // Two specialisations overriding only `mtu`.
    for (name, mtu) in [("jumbo", 9000i64), ("slip", 296)] {
        let iface = InterfaceBuilder::new("proto")
            .method("mtu", &[], TypeTag::Int, move |_, _| Ok(Value::Int(mtu)))
            .finish();
        let spec = ObjectBuilder::new(name)
            .raw_interface(delegate_interface(iface, generic.clone()))
            .build();
        n.register(KERNEL_DOMAIN, &format!("/proto/{name}"), spec)
            .unwrap();
    }

    let jumbo = n.bind(KERNEL_DOMAIN, "/proto/jumbo").unwrap();
    let slip = n.bind(KERNEL_DOMAIN, "/proto/slip").unwrap();
    assert_eq!(jumbo.invoke("proto", "mtu", &[]).unwrap(), Value::Int(9000));
    assert_eq!(slip.invoke("proto", "mtu", &[]).unwrap(), Value::Int(296));
    // The shared method is the same code, reached by delegation.
    let payload = Value::Bytes(bytes::Bytes::from_static(&[1, 2, 3]));
    let args = std::slice::from_ref(&payload);
    assert_eq!(
        jumbo.invoke("proto", "checksum", args).unwrap(),
        Value::Int(6)
    );
    assert_eq!(
        slip.invoke("proto", "checksum", args).unwrap(),
        Value::Int(6)
    );
}

/// "The latter is the most common form of object composition since it
/// allows for the composing objects to be replaced by new instances" —
/// dynamic composition with live replacement, published in the name space.
#[test]
fn dynamic_composition_supports_live_component_replacement() {
    let world = World::boot();
    let n = &world.nucleus;

    let v1 = ObjectBuilder::new("codec-v1")
        .interface("codec", |i| {
            i.method("version", &[], TypeTag::Int, |_, _| Ok(Value::Int(1)))
        })
        .build();
    let pipeline = CompositionBuilder::new("pipeline")
        .child("codec", v1)
        .export("codec", "codec")
        .build()
        .unwrap();
    n.register(KERNEL_DOMAIN, "/app/pipeline", pipeline)
        .unwrap();

    let client = n.bind(KERNEL_DOMAIN, "/app/pipeline").unwrap();
    assert_eq!(
        client.invoke("codec", "version", &[]).unwrap(),
        Value::Int(1)
    );

    // Hot-swap the codec inside the running composition.
    let v2 = ObjectBuilder::new("codec-v2")
        .interface("codec", |i| {
            i.method("version", &[], TypeTag::Int, |_, _| Ok(Value::Int(2)))
        })
        .build();
    client
        .invoke(
            COMPOSITION_IFACE,
            "replace",
            &[Value::Str("codec".into()), Value::Handle(v2)],
        )
        .unwrap();
    // The client's existing handle now reaches the new instance.
    assert_eq!(
        client.invoke("codec", "version", &[]).unwrap(),
        Value::Int(2)
    );
}

/// The bound-method fast path ("run time inline techniques", §2) agrees
/// with dynamic dispatch and survives heavy use.
#[test]
fn inline_fast_path_agrees_with_dynamic_dispatch() {
    let obj = ObjectBuilder::new("acc")
        .state(0i64)
        .interface("acc", |i| {
            i.method("add", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let v = args[0].as_int()?;
                this.with_state(|s: &mut i64| {
                    *s += v;
                    Ok(Value::Int(*s))
                })
            })
        })
        .build();
    let bound = obj
        .interface("acc")
        .unwrap()
        .bind_method(&obj, "add")
        .unwrap();
    let mut expect = 0i64;
    for i in 0..1000i64 {
        expect += i;
        let via = if i % 2 == 0 {
            bound.call(&[Value::Int(i)]).unwrap()
        } else {
            obj.invoke("acc", "add", &[Value::Int(i)]).unwrap()
        };
        assert_eq!(via, Value::Int(expect));
    }
}

/// Overrides are *local*: "control the child objects it will import" —
/// three sibling domains, three different views of the same path, while
/// interposition on the shared binding reaches everyone.
#[test]
fn override_locality_vs_interposition_globality() {
    use paramecium::core::directory::NsEntry;

    let world = World::boot();
    let n = &world.nucleus;
    n.register(
        KERNEL_DOMAIN,
        "/lib/log",
        ObjectBuilder::new("syslog").build(),
    )
    .unwrap();

    let quiet = n
        .create_domain(
            "quiet",
            KERNEL_DOMAIN,
            [(
                "/lib/log".to_owned(),
                NsEntry {
                    obj: ObjectBuilder::new("null-log").build(),
                    home: KERNEL_DOMAIN,
                },
            )],
        )
        .unwrap();
    let verbose = n
        .create_domain(
            "verbose",
            KERNEL_DOMAIN,
            [(
                "/lib/log".to_owned(),
                NsEntry {
                    obj: ObjectBuilder::new("debug-log").build(),
                    home: KERNEL_DOMAIN,
                },
            )],
        )
        .unwrap();
    let plain = n.create_domain("plain", KERNEL_DOMAIN, []).unwrap();

    assert_eq!(
        n.bind(quiet.id, "/lib/log").unwrap().class(),
        "proxy<null-log>"
    );
    assert_eq!(
        n.bind(verbose.id, "/lib/log").unwrap().class(),
        "proxy<debug-log>"
    );
    assert_eq!(
        n.bind(plain.id, "/lib/log").unwrap().class(),
        "proxy<syslog>"
    );

    // Interpose on the *shared* binding: only inheritors without local
    // overrides see the agent.
    let target = n.bind(KERNEL_DOMAIN, "/lib/log").unwrap();
    let agent = InterposerBuilder::new(target).class("log-agent").build();
    n.interpose(KERNEL_DOMAIN, "/lib/log", agent).unwrap();
    assert_eq!(
        n.bind(plain.id, "/lib/log").unwrap().class(),
        "proxy<log-agent>"
    );
    assert_eq!(
        n.bind(quiet.id, "/lib/log").unwrap().class(),
        "proxy<null-log>"
    );
}
