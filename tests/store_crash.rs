//! Crash-injection suite for the journalled store stack (PR 8).
//!
//! The machine can arm a power failure at an exact cost-model charge
//! event ([`Machine::arm_crash_after`]); the disk driver turns a crash
//! mid-batch into a committed prefix plus one torn sector. These tests
//! drive the journal through every such crash point and check the only
//! promise that matters after a power failure:
//!
//! > every operation the stack acknowledged is durable, and the
//! > operation in flight either happened entirely or not at all.
//!
//! - `committed_prefix_holds_at_every_crash_point`: a seeded random
//!   operation sequence is replayed with a crash injected at *every*
//!   charge step, remounted, and compared differentially against an
//!   in-memory oracle.
//! - `recovery_is_idempotent_even_when_recovery_crashes`: mount-time
//!   replay is itself crashed at progressively later points until it
//!   completes; replaying twice must equal replaying once.
//! - `torn_write_at_log_tail_is_detected`: a crash while appending a
//!   transaction tears its descriptor, payload, or commit marker; the
//!   checksummed records keep the half-written transaction invisible.
//! - `flush_homes_cache_dirty_data_before_checkpoint_truncates`: the
//!   cache-above-journal ordering pin — a full-stack flush must drain
//!   cache-dirty lines *through* the journal before the checkpoint
//!   truncates the log.
//! - `group_commit_coalesces_concurrent_commits`: concurrent committers
//!   over a slow backing store land in measurably fewer group appends
//!   than transactions.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

use paramecium::core::memsvc::MemService;
use paramecium::machine::dev::disk::SECTOR_SIZE;
use paramecium::prelude::*;
use paramecium::store::vectored::{pairs_arg, sectors_arg, txn_arg, txn_write_args};
use paramecium::store::{JournalConfig, StackBuilder};

/// Sector range the random sequences write: small enough that sectors
/// are overwritten many times and checkpoints matter.
const RANGE: i64 = 12;

/// A deliberately small log so sequences overflow it and exercise the
/// inline-checkpoint path under crashes.
const SMALL_LOG: JournalConfig = JournalConfig { log_sectors: 30 };

fn fresh() -> (Arc<MemService>, paramecium::store::StoreStack) {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine));
    let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(SMALL_LOG)
        .build()
        .unwrap();
    (mem, stack)
}

fn sector_of(byte: u8) -> Value {
    Value::Bytes(Bytes::from(vec![byte; SECTOR_SIZE]))
}

fn jstats(j: &ObjRef) -> Vec<i64> {
    j.invoke("journal", "stats", &[])
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

/// One logical operation of the random sequence. Every variant is
/// atomic at the `blockdev` interface: after a crash it must be visible
/// entirely or not at all.
#[derive(Clone, Debug)]
enum Op {
    /// Bare single-sector write (an implicit transaction).
    Write(i64, u8),
    /// Vectorized batch (one atomic transaction).
    WriteMany(Vec<(i64, u8)>),
    /// Explicit begin/txn_write*/commit transaction.
    Txn(Vec<(i64, u8)>),
    /// Checkpoint: home the overlay, truncate the log.
    Flush,
}

fn gen_ops(seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let writes = |rng: &mut StdRng, n: usize| -> Vec<(i64, u8)> {
        (0..n)
            .map(|_| (rng.gen_range(0..RANGE), rng.gen_range(1..256i64) as u8))
            .collect()
    };
    (0..14)
        .map(|_| match rng.gen_range(0..6u32) {
            0..=2 => {
                let (sec, val) = writes(&mut rng, 1)[0];
                Op::Write(sec, val)
            }
            3 => Op::WriteMany({
                let n = rng.gen_range(2..5usize);
                writes(&mut rng, n)
            }),
            4 => Op::Txn({
                let n = rng.gen_range(2..4usize);
                writes(&mut rng, n)
            }),
            _ => Op::Flush,
        })
        .collect()
}

/// Applies one op to the per-sector oracle (last writer wins).
fn apply(oracle: &mut [u8], op: &Op) {
    match op {
        Op::Write(sec, val) => oracle[*sec as usize] = *val,
        Op::WriteMany(pairs) | Op::Txn(pairs) => {
            for (sec, val) in pairs {
                oracle[*sec as usize] = *val;
            }
        }
        Op::Flush => {}
    }
}

/// Runs one op through the stack top. The whole op is one atomic unit:
/// an error anywhere means the op is in flight at the crash.
fn run_op(top: &ObjRef, op: &Op) -> Result<(), String> {
    let r = match op {
        Op::Write(sec, val) => top
            .invoke("blockdev", "write", &[Value::Int(*sec), sector_of(*val)])
            .map(|_| ()),
        Op::WriteMany(pairs) => {
            let batch: Vec<(i64, Bytes)> = pairs
                .iter()
                .map(|(sec, val)| (*sec, Bytes::from(vec![*val; SECTOR_SIZE])))
                .collect();
            top.invoke("blockdev", "write_many", &[pairs_arg(batch)])
                .map(|_| ())
        }
        Op::Txn(pairs) => (|| {
            let txn = top.invoke("blockdev", "begin_txn", &[])?.as_int()?;
            for (sec, val) in pairs {
                top.invoke(
                    "blockdev",
                    "txn_write",
                    &txn_write_args(txn, *sec, Bytes::from(vec![*val; SECTOR_SIZE])),
                )?;
            }
            top.invoke("blockdev", "commit", &txn_arg(txn)).map(|_| ())
        })(),
        Op::Flush => top.invoke("blockdev", "flush", &[]).map(|_| ()),
    };
    r.map_err(|e| e.to_string())
}

/// Runs ops until the first failure, returning how many were
/// acknowledged and whether one was in flight when the machine died.
fn run_until_crash(top: &ObjRef, ops: &[Op]) -> (usize, Option<usize>) {
    for (i, op) in ops.iter().enumerate() {
        if let Err(e) = run_op(top, op) {
            assert!(
                e.contains("power failure"),
                "only power failure may abort a valid op, got: {e}"
            );
            return (i, Some(i));
        }
    }
    (ops.len(), None)
}

/// Reads every data sector in [0, RANGE) through `top` as full sectors.
fn read_all(top: &ObjRef) -> Vec<Bytes> {
    top.invoke("blockdev", "read_many", &[sectors_arg(0..RANGE)])
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_bytes().unwrap().clone())
        .collect()
}

/// Whether the on-disk state equals the oracle (full-sector compare, so
/// a torn home sector that recovery failed to repair is caught).
fn matches_oracle(state: &[Bytes], oracle: &[u8]) -> bool {
    state
        .iter()
        .zip(oracle)
        .all(|(got, &val)| got.as_ref() == vec![val; SECTOR_SIZE].as_slice())
}

#[test]
fn committed_prefix_holds_at_every_crash_point() {
    for seed in [1u64, 2, 3] {
        let ops = gen_ops(seed);

        // Clean run: count the charge events the sequence costs. Every
        // one of them is a distinct crash point for the sweep below.
        let (mem, stack) = fresh();
        let c0 = mem.machine().lock().charge_events();
        let (acked, inflight) = run_until_crash(&stack.top, &ops);
        assert_eq!((acked, inflight), (ops.len(), None), "clean run crashed");
        let steps = mem.machine().lock().charge_events() - c0;
        assert!(steps > 20, "sequence too cheap to be interesting: {steps}");

        for k in 1..=steps {
            let (mem, stack) = fresh();
            mem.machine().lock().arm_crash_after(k);
            let (acked, inflight) = run_until_crash(&stack.top, &ops);
            assert!(
                inflight.is_some(),
                "seed {seed}: crash at step {k} never fired"
            );
            drop(stack);
            {
                let mut m = mem.machine().lock();
                m.disarm_crash();
                m.reboot();
            }
            // Remount over the surviving disk: recovery replays the
            // committed prefix of the log.
            let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
                .journal(SMALL_LOG)
                .build()
                .unwrap();
            let state = read_all(&stack.top);

            // Exactly two outcomes are legal: the acknowledged prefix,
            // or the prefix plus the in-flight op applied atomically.
            let mut without = vec![0u8; RANGE as usize];
            for op in &ops[..acked] {
                apply(&mut without, op);
            }
            let mut with = without.clone();
            apply(&mut with, &ops[inflight.unwrap()]);
            assert!(
                matches_oracle(&state, &without) || matches_oracle(&state, &with),
                "seed {seed}, crash at step {k}/{steps}: state after recovery \
                 matches neither acked-prefix nor acked-prefix+in-flight \
                 (acked {acked} of {} ops: {:?})",
                ops.len(),
                ops[..=inflight.unwrap()].last()
            );
        }
    }
}

#[test]
fn recovery_is_idempotent_even_when_recovery_crashes() {
    let (mem, stack) = fresh();
    // Commit a handful of transactions, none of them checkpointed: all
    // the data lives only in the log.
    for sec in 0..6i64 {
        stack
            .top
            .invoke(
                "blockdev",
                "write",
                &[Value::Int(sec), sector_of(0xC0 + sec as u8)],
            )
            .unwrap();
    }
    drop(stack);

    // Crash recovery itself at step 1, 2, 3, ... until one attempt gets
    // all the way through. Every failed attempt leaves the log intact
    // (home-writes-then-truncate), so the next one replays the same
    // committed prefix — mount is idempotent under its own crashes.
    let mut k = 1u64;
    let recovered = loop {
        assert!(k < 1000, "recovery never completed");
        {
            let mut m = mem.machine().lock();
            m.reboot();
            m.arm_crash_after(k);
        }
        match StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(SMALL_LOG)
            .build()
        {
            Ok(stack) => break stack,
            Err(_) => k += 1,
        }
    };
    mem.machine().lock().disarm_crash();
    assert!(k > 1, "recovery should charge more than one event");
    let replayed_once = jstats(recovered.journal.as_ref().unwrap())[4];
    assert_eq!(replayed_once, 6, "all six transactions replayed");
    for sec in 0..6i64 {
        let v = recovered
            .top
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xC0 + sec as u8);
    }
    drop(recovered);

    // Replay twice ≡ once: a second remount finds a truncated log,
    // replays nothing, and observes identical state.
    let again = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(SMALL_LOG)
        .build()
        .unwrap();
    assert_eq!(jstats(again.journal.as_ref().unwrap())[4], 0);
    for sec in 0..6i64 {
        let v = again
            .top
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xC0 + sec as u8);
    }
}

#[test]
fn torn_write_at_log_tail_is_detected() {
    // A bare write appends three record sectors: descriptor, payload,
    // commit marker. Crashing on the k-th charge of that append tears
    // exactly the k-th record at the log tail.
    for (k, torn) in [(1, "descriptor"), (2, "payload"), (3, "commit marker")] {
        let (mem, stack) = fresh();
        stack
            .top
            .invoke("blockdev", "write", &[Value::Int(0), sector_of(0xA1)])
            .unwrap();
        mem.machine().lock().arm_crash_after(k);
        let err = stack
            .top
            .invoke("blockdev", "write", &[Value::Int(1), sector_of(0xB2)])
            .unwrap_err();
        assert!(err.to_string().contains("power failure"), "{err}");
        drop(stack);
        {
            let mut m = mem.machine().lock();
            m.disarm_crash();
            m.reboot();
        }
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(SMALL_LOG)
            .build()
            .unwrap();
        let j = stack.journal.as_ref().unwrap();
        assert_eq!(
            jstats(j)[4],
            1,
            "torn {torn}: only the acknowledged write replays"
        );
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(0)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xA1, "acked write survives");
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(1)])
            .unwrap();
        assert_eq!(
            v.as_bytes().unwrap()[0],
            0,
            "torn {torn}: unacknowledged write stays invisible"
        );
        // The truncated log scans clean.
        assert_eq!(j.invoke("journal", "scan", &[]).unwrap(), Value::Int(0));
    }
}

#[test]
fn flush_homes_cache_dirty_data_before_checkpoint_truncates() {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine));
    let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(SMALL_LOG)
        .sharded_cache(8, 2)
        .build()
        .unwrap();

    // Writes park as dirty lines in the cache; the journal below sees
    // nothing yet.
    for sec in 0..4i64 {
        stack
            .top
            .invoke(
                "blockdev",
                "write",
                &[Value::Int(sec), sector_of(0xD0 + sec as u8)],
            )
            .unwrap();
    }

    // The ordering pin: a full-stack flush must push the cache's dirty
    // lines down *before* the journal checkpoint runs, so the
    // checkpoint journals-and-homes them rather than truncating a log
    // that never saw them. After the flush the data must sit at its
    // home location on the raw driver.
    stack.top.invoke("blockdev", "flush", &[]).unwrap();
    for sec in 0..4i64 {
        let v = stack
            .driver
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(
            v.as_bytes().unwrap()[0],
            0xD0 + sec as u8,
            "sector {sec} homed"
        );
    }

    // A crash after the flush loses nothing: remount replays nothing
    // (everything is already home) and reads back the same data.
    mem.machine().lock().arm_crash_after(1);
    assert!(
        stack
            .top
            .invoke("blockdev", "write", &[Value::Int(9), sector_of(0xEE)])
            .is_err()
            || stack.top.invoke("blockdev", "flush", &[]).is_err()
    );
    drop(stack);
    {
        let mut m = mem.machine().lock();
        m.disarm_crash();
        m.reboot();
    }
    let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(SMALL_LOG)
        .sharded_cache(8, 2)
        .build()
        .unwrap();
    assert_eq!(
        jstats(stack.journal.as_ref().unwrap())[4],
        0,
        "nothing to replay"
    );
    for sec in 0..4i64 {
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xD0 + sec as u8);
    }
}

#[test]
fn flush_of_more_dirty_lines_than_one_log_transaction_succeeds() {
    // Regression: the cache used to write back every dirty line as one
    // `write_many`, which the journal takes as a single log transaction.
    // With the documented stack (default 126-slot log, 256-line cache)
    // any flush of more than ~122 dirty lines failed — and because a
    // failed flush leaves lines dirty, every retry failed too:
    // durability was permanently wedged. The cache now probes the
    // journal's `write_limit` and chunks.
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine));
    let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(JournalConfig::default())
        .sharded_cache(256, 4)
        .build()
        .unwrap();
    let limit = stack
        .journal
        .as_ref()
        .unwrap()
        .invoke("blockdev", "write_limit", &[])
        .unwrap()
        .as_int()
        .unwrap();
    assert!(
        limit < 200,
        "premise: the dirty set must exceed one transaction"
    );
    for sec in 0..200i64 {
        stack
            .top
            .invoke(
                "blockdev",
                "write",
                &[Value::Int(sec), sector_of(sec as u8)],
            )
            .unwrap();
    }
    // Flush drains all 200 lines through several journal transactions
    // and the checkpoint homes them.
    stack.top.invoke("blockdev", "flush", &[]).unwrap();
    for sec in 0..200i64 {
        let v = stack
            .driver
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], sec as u8, "sector {sec} homed");
    }
    // The barrier path chunks the same way, and everything it
    // acknowledged survives a reboot.
    for sec in 0..200i64 {
        stack
            .top
            .invoke(
                "blockdev",
                "write",
                &[Value::Int(sec), sector_of((sec as u8).wrapping_add(0x5A))],
            )
            .unwrap();
    }
    stack.top.invoke("blockdev", "barrier", &[]).unwrap();
    drop(stack);
    mem.machine().lock().reboot();
    let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(JournalConfig::default())
        .sharded_cache(256, 4)
        .build()
        .unwrap();
    for sec in 0..200i64 {
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(
            v.as_bytes().unwrap()[0],
            (sec as u8).wrapping_add(0x5A),
            "sector {sec} durable after the barrier"
        );
    }
}

#[test]
fn group_commit_coalesces_concurrent_commits() {
    const THREADS: usize = 4;
    const WRITES_PER_THREAD: usize = 8;

    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine));
    let driver = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top;

    // A slow backing store: every append sleeps, so commits issued while
    // the leader's append is in flight pile up and ride the next group.
    let slow = {
        let inner = driver.clone();
        let i_read = inner.clone();
        let i_read_many = inner.clone();
        let i_write_many = inner.clone();
        let i_sectors = inner.clone();
        ObjectBuilder::new("slow-disk")
            .interface("blockdev", |i| {
                i.method("read", &[TypeTag::Int], TypeTag::Bytes, move |_, args| {
                    i_read.invoke("blockdev", "read", args)
                })
                .method(
                    "read_many",
                    &[TypeTag::List],
                    TypeTag::List,
                    move |_, args| i_read_many.invoke("blockdev", "read_many", args),
                )
                .method(
                    "write_many",
                    &[TypeTag::List],
                    TypeTag::Int,
                    move |_, args| {
                        std::thread::sleep(std::time::Duration::from_millis(3));
                        i_write_many.invoke("blockdev", "write_many", args)
                    },
                )
                .method("sectors", &[], TypeTag::Int, move |_, _| {
                    i_sectors.invoke("blockdev", "sectors", &[])
                })
            })
            .build()
    };
    let stack = StackBuilder::on(slow)
        .journal(JournalConfig::default())
        .build()
        .unwrap();
    let top = stack.top.clone();

    let start = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let top = top.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for i in 0..WRITES_PER_THREAD {
                    let sec = (t * WRITES_PER_THREAD + i) as i64;
                    top.invoke(
                        "blockdev",
                        "write",
                        &[Value::Int(sec), sector_of(0x40 + sec as u8)],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let s = jstats(stack.journal.as_ref().unwrap());
    let (commits, group_appends) = (s[0], s[1]);
    assert_eq!(commits, (THREADS * WRITES_PER_THREAD) as i64);
    assert!(
        group_appends < commits,
        "expected coalescing: {commits} commits in {group_appends} appends"
    );
    // Every acknowledged commit is readable back.
    for sec in 0..(THREADS * WRITES_PER_THREAD) as i64 {
        let v = top.invoke("blockdev", "read", &[Value::Int(sec)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x40 + sec as u8);
    }
}
