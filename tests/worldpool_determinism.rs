//! Determinism regression for the world pool: the final state of every
//! world is a pure function of the pool seed — **independent of how many
//! OS threads the pool multiplexes over** and of how the OS interleaves
//! them.
//!
//! Eight worlds run a mixed workload — per-world store traffic through a
//! private sharded block cache plus a cross-world active-message
//! ping-ring — under pool sizes 1, 2 and 8. The per-world fingerprint
//! (virtual clock, RNG stream position, cache statistics, flushed store
//! contents, received-message log, cross-endpoint counters) must be
//! bit-identical across all three runs.

use paramecium::machine::dev::disk::SECTOR_SIZE;
use paramecium::pool::WorldPool;
use paramecium::prelude::*;
use paramecium::store::StackBuilder;
use rand::Rng;

const WORLDS: usize = 8;
const SEED: u64 = 0xC0FF_EE00_DEAD_BEE5;
const ROUNDS: u64 = 3;
const HOT_SECTORS: i64 = 48;

/// A handler object recording every cross-world message it receives, in
/// delivery order — the part of the fingerprint most sensitive to
/// scheduling: any reordering or early/late delivery changes the log.
fn recorder() -> ObjRef {
    ObjectBuilder::new("recorder")
        .state(Vec::<i64>::new())
        .interface("rec", |i| {
            i.method("push", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let v = args[0].as_int()?;
                this.with_state(|log: &mut Vec<i64>| {
                    log.push(v);
                    Ok(Value::Int(log.len() as i64))
                })
            })
            .method("all", &[], TypeTag::List, |this, _| {
                this.with_state(|log: &mut Vec<i64>| {
                    Ok(Value::List(log.iter().copied().map(Value::Int).collect()))
                })
            })
        })
        .build()
}

fn sector_bytes(tag: u64) -> Value {
    let mut buf = vec![0u8; SECTOR_SIZE];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (tag as u8).wrapping_add(i as u8);
    }
    Value::Bytes(bytes::Bytes::from(buf))
}

/// FNV-1a over the hot sector range, read back through the cache after a
/// flush — pins the store contents without dumping 24 KiB per world.
fn store_digest(cache: &ObjRef) -> u64 {
    cache.invoke("cache", "flush", &[]).unwrap();
    let sectors = Value::List((0..HOT_SECTORS).map(Value::Int).collect());
    let data = cache.invoke("blockdev", "read_many", &[sectors]).unwrap();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data.as_list().unwrap() {
        for &b in v.as_bytes().unwrap().iter() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Boots an 8-world pool, runs the mixed workload on `threads` OS
/// threads (split across two `run_rounds` calls to exercise round
/// continuation), and fingerprints every world.
fn run(threads: usize) -> Vec<String> {
    let mut pool = WorldPool::boot(WORLDS, SEED);

    let mut caches = Vec::with_capacity(WORLDS);
    let mut recorders = Vec::with_capacity(WORLDS);
    for w in pool.worlds() {
        let cache = StackBuilder::disk(&w.world.nucleus.mem, KERNEL_DOMAIN)
            .sharded_cache(32, 4)
            .build()
            .unwrap()
            .top;
        let rec = recorder();
        w.cross.register_handler("ring", rec.clone());
        caches.push(cache);
        recorders.push(rec);
    }

    let step = |w: &mut paramecium::pool::PoolWorld, r: u64| {
        let cache = &caches[w.id];
        // Store traffic: RNG-chosen sectors, written then read back, so
        // the cache state entangles the RNG stream with the store.
        for _ in 0..4 {
            let sec = (w.rng.gen::<u64>() % HOT_SECTORS as u64) as i64;
            let tag = w.rng.gen::<u64>();
            cache
                .invoke("blockdev", "write", &[Value::Int(sec), sector_bytes(tag)])
                .unwrap();
            cache
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
        }
        // Ping-ring: each world posts to its successor; the payload
        // encodes (sender, round) so the receiver's log pins ordering.
        let to = (w.id + 1) % WORLDS;
        let payload = ((w.id as i64) << 32) | r as i64;
        assert!(w.post(to, "ring", "rec", "push", vec![Value::Int(payload)]));
    };

    let a = pool.run_rounds(threads, ROUNDS, step);
    let b = pool.run_rounds(threads, ROUNDS, step);
    assert_eq!(a.rounds, ROUNDS);
    assert!(
        a.delivered + b.delivered >= 2 * ROUNDS * WORLDS as u64,
        "every posted ring message must be delivered"
    );

    pool.into_worlds()
        .into_iter()
        .map(|mut w| {
            let clock = w.world.nucleus.now();
            let rng_probe: u64 = w.rng.gen();
            let cstats = caches[w.id].invoke("cache", "stats", &[]).unwrap();
            let digest = store_digest(&caches[w.id]);
            let log = recorders[w.id].invoke("rec", "all", &[]).unwrap();
            let x = w.cross.stats();
            format!(
                "world {}: clock={clock} rng={rng_probe:#018x} cache={cstats:?} \
                 store={digest:#018x} log={log:?} \
                 cross=[posted={} delivered={} no_handler={} am_full={}]",
                w.id, x.posted, x.delivered, x.no_handler, x.am_full
            )
        })
        .collect()
}

#[test]
fn final_state_is_identical_for_pool_sizes_1_2_and_8() {
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    for id in 0..WORLDS {
        assert_eq!(one[id], two[id], "world {id}: 1 thread vs 2 threads");
        assert_eq!(one[id], eight[id], "world {id}: 1 thread vs 8 threads");
    }
}

#[test]
fn rerunning_the_same_seed_reproduces_the_same_fingerprints() {
    assert_eq!(run(2), run(2));
}
