//! Integration: extra known-answer vectors and cross-identities for the
//! crypto substrate (the trust anchor of the whole certification story).

use paramecium::crypto::{encode, rsa, sha256, Sha256, Ubig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn sha256_additional_nist_vectors() {
    // NIST CAVP short-message samples.
    let cases: &[(&[u8], &str)] = &[
        (
            b"\xd3",
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1",
        ),
        (
            b"\x11\xaf",
            "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(&encode::to_hex(&sha256::sha256(msg)), want);
    }
}

#[test]
fn sha256_streaming_across_odd_chunk_sizes() {
    let data: Vec<u8> = (0..1000u32).map(|i| (i * 131) as u8).collect();
    let want = sha256::sha256(&data);
    for chunk in [1usize, 3, 7, 31, 63, 64, 65, 127, 999] {
        let mut h = Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        assert_eq!(h.finish(), want, "chunk size {chunk}");
    }
}

#[test]
fn rsa_interops_between_key_sizes() {
    let digest = sha256::sha256(b"component");
    for bits in [512u32, 768] {
        let kp = rsa::generate(&mut StdRng::seed_from_u64(u64::from(bits)), bits);
        let sig = rsa::sign(&kp.private, &digest).unwrap();
        assert_eq!(sig.len(), (bits as usize).div_ceil(8));
        rsa::verify(&kp.public, &digest, &sig).unwrap();
        // A signature from one key size never verifies under another.
        let other = rsa::generate(&mut StdRng::seed_from_u64(999), 512);
        assert!(rsa::verify(&other.public, &digest, &sig).is_err());
    }
}

#[test]
fn key_serialisation_roundtrips_through_bytes() {
    let kp = rsa::generate(&mut StdRng::seed_from_u64(4), 512);
    let pub_bytes = kp.public.to_bytes();
    let priv_bytes = kp.private.to_bytes();
    let pub2 = paramecium::crypto::PublicKey::from_bytes(&pub_bytes).unwrap();
    let priv2 = paramecium::crypto::PrivateKey::from_bytes(&priv_bytes).unwrap();
    assert_eq!(pub2, kp.public);
    assert_eq!(priv2, kp.private);
    // And the deserialised halves still work together.
    let digest = sha256::sha256(b"x");
    let sig = rsa::sign(&priv2, &digest).unwrap();
    rsa::verify(&pub2, &digest, &sig).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The binomial identity on random big numbers: (a+b)² = a² + 2ab + b².
    #[test]
    fn bignum_binomial_identity(
        a in proptest::collection::vec(any::<u64>(), 1..6),
        b in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let a = Ubig::from_limbs(a);
        let b = Ubig::from_limbs(b);
        let lhs = {
            let s = a.add(&b);
            s.mul(&s)
        };
        let two_ab = a.mul(&b).shl_bits(1);
        let rhs = a.mul(&a).add(&two_ab).add(&b.mul(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// Modular exponentiation laws: x^(e1+e2) ≡ x^e1 · x^e2 (mod m).
    #[test]
    fn bignum_modpow_addition_law(
        x in 1u64.., e1 in 0u64..1000, e2 in 0u64..1000, m in 2u64..,
    ) {
        let (x, m) = (Ubig::from(x), Ubig::from(m));
        let lhs = x.modpow(&Ubig::from(e1 + e2), &m);
        let rhs = x.modpow(&Ubig::from(e1), &m).modmul(&x.modpow(&Ubig::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    /// RSA correctness on arbitrary digests (fixed key for speed).
    #[test]
    fn rsa_roundtrip_arbitrary_digests(seed in any::<[u8; 32]>()) {
        static KP: std::sync::OnceLock<paramecium::crypto::KeyPair> = std::sync::OnceLock::new();
        let kp = KP.get_or_init(|| rsa::generate(&mut StdRng::seed_from_u64(11), 512));
        let sig = rsa::sign(&kp.private, &seed).unwrap();
        prop_assert!(rsa::verify(&kp.public, &seed, &sig).is_ok());
        // Any different digest must fail.
        let mut other = seed;
        other[0] ^= 1;
        prop_assert!(rsa::verify(&kp.public, &other, &sig).is_err());
    }
}
