//! Integration: boot invariants, domain lifecycle, name-space visibility,
//! and syscall-style access to nucleus services through proxies.

use paramecium::core::directory::NsEntry;
use paramecium::prelude::*;

#[test]
fn boot_exposes_all_four_services_as_objects() {
    let world = World::boot();
    let n = &world.nucleus;
    for (path, iface, method, args) in [
        (
            "/nucleus/events",
            "events",
            "callbacks",
            vec![Value::Int(1)],
        ),
        ("/nucleus/memory", "memory", "stats", vec![]),
        (
            "/nucleus/directory",
            "directory",
            "list",
            vec![Value::Str("/".into())],
        ),
        (
            "/nucleus/certification",
            "certification",
            "is_certified",
            vec![Value::Bytes(bytes::Bytes::from_static(b"x"))],
        ),
    ] {
        let obj = n.bind(KERNEL_DOMAIN, path).unwrap();
        obj.invoke(iface, method, &args)
            .unwrap_or_else(|e| panic!("{path}.{iface}::{method} failed: {e}"));
    }
}

#[test]
fn kernel_is_a_composition_of_its_services() {
    let world = World::boot();
    let kernel = world.nucleus.bind(KERNEL_DOMAIN, "/nucleus").unwrap();
    // The composition interface lists the four children.
    let children = kernel
        .invoke(paramecium::obj::compose::COMPOSITION_IFACE, "children", &[])
        .unwrap();
    let names: Vec<String> = children
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(names, ["certification", "directory", "events", "memory"]);
    // And re-exports their interfaces.
    assert!(kernel.has_interface("events"));
    assert!(kernel.has_interface("memory"));
    assert!(kernel.has_interface("directory"));
    assert!(kernel.has_interface("certification"));
}

#[test]
fn user_domain_reaches_nucleus_services_via_proxy_syscalls() {
    let world = World::boot();
    let n = &world.nucleus;
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let dir = n.bind(app.id, "/nucleus/directory").unwrap();
    assert!(dir.class().starts_with("proxy<"));
    let crossings_before = n.proxy_stats().crossings();
    let listed = dir
        .invoke("directory", "list", &[Value::Str("/nucleus".into())])
        .unwrap();
    assert_eq!(listed.as_list().unwrap().len(), 5);
    assert_eq!(n.proxy_stats().crossings(), crossings_before + 1);
}

#[test]
fn namespace_views_are_per_domain() {
    let world = World::boot();
    let n = &world.nucleus;
    // Kernel registers a default allocator; app A overrides it; app B
    // registers its own private object.
    n.register(
        KERNEL_DOMAIN,
        "/lib/alloc",
        ObjectBuilder::new("default-alloc").build(),
    )
    .unwrap();
    let fake = ObjectBuilder::new("debug-alloc").build();
    let a = n
        .create_domain(
            "a",
            KERNEL_DOMAIN,
            [(
                "/lib/alloc".to_owned(),
                NsEntry {
                    obj: fake,
                    home: KERNEL_DOMAIN,
                },
            )],
        )
        .unwrap();
    let b = n.create_domain("b", KERNEL_DOMAIN, []).unwrap();
    n.register(b.id, "/b/private", ObjectBuilder::new("private").build())
        .unwrap();

    // A sees its override; B sees the default.
    assert_eq!(
        n.bind(a.id, "/lib/alloc").unwrap().class(),
        "proxy<debug-alloc>"
    );
    assert_eq!(
        n.bind(b.id, "/lib/alloc").unwrap().class(),
        "proxy<default-alloc>"
    );
    // B's private object is invisible to A and to the kernel.
    assert!(n.bind(a.id, "/b/private").is_err());
    assert!(n.bind(KERNEL_DOMAIN, "/b/private").is_err());
    assert_eq!(n.bind(b.id, "/b/private").unwrap().class(), "private");
}

#[test]
fn domain_destruction_reclaims_everything() {
    let world = World::boot();
    let n = &world.nucleus;
    let app = n.create_domain("doomed", KERNEL_DOMAIN, []).unwrap();
    let base = n
        .mem
        .alloc(app.id, 8, paramecium::machine::Perms::RW)
        .unwrap();
    n.mem.write(app.id, base, b"data").unwrap();
    let frames = n.machine().lock().phys.allocated_frames();
    assert_eq!(frames, 8);
    n.destroy_domain(app.id).unwrap();
    assert_eq!(n.machine().lock().phys.allocated_frames(), 0);
    // Shared frames survive if another domain still maps them.
    let survivor = n.create_domain("survivor", KERNEL_DOMAIN, []).unwrap();
    let kbase = n
        .mem
        .alloc(KERNEL_DOMAIN, 2, paramecium::machine::Perms::RW)
        .unwrap();
    n.mem
        .share(
            KERNEL_DOMAIN,
            kbase,
            2,
            survivor.id,
            paramecium::machine::Perms::R,
        )
        .unwrap();
    n.destroy_domain(survivor.id).unwrap();
    assert_eq!(n.machine().lock().phys.allocated_frames(), 2);
}

#[test]
fn cross_domain_memory_isolation_holds() {
    let world = World::boot();
    let n = &world.nucleus;
    let a = n.create_domain("a", KERNEL_DOMAIN, []).unwrap();
    let b = n.create_domain("b", KERNEL_DOMAIN, []).unwrap();
    let base_a = n
        .mem
        .alloc(a.id, 1, paramecium::machine::Perms::RW)
        .unwrap();
    n.mem.write(a.id, base_a, b"secret").unwrap();
    // B cannot read A's page, even at the same virtual address.
    let mut buf = [0u8; 6];
    assert!(n.mem.read(b.id, base_a, &mut buf).is_err());
}

#[test]
fn simulated_time_is_deterministic_across_runs() {
    let run = || {
        let world = World::boot();
        let n = &world.nucleus;
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        let svc = ObjectBuilder::new("svc")
            .interface("svc", |i| {
                i.method("nop", &[], TypeTag::Unit, |_, _| Ok(Value::Unit))
            })
            .build();
        n.register(KERNEL_DOMAIN, "/svc/x", svc).unwrap();
        let proxy = n.bind(app.id, "/svc/x").unwrap();
        for _ in 0..10 {
            proxy.invoke("svc", "nop", &[]).unwrap();
        }
        n.now()
    };
    assert_eq!(run(), run());
}
