//! Store scaling suite (PR 5): the sharded, vectorized block cache.
//!
//! - Differential property test: any operation sequence through the
//!   cache, followed by a final flush, leaves the backing disk
//!   byte-identical to running the same sequence against the raw driver —
//!   across shard counts {1, 4, 8} and several capacities.
//! - Durability: a failed backing write must never lose dirty data
//!   (lines are marked clean only after the write succeeds).
//! - Strict capacity: eviction happens before insertion.
//! - Batching: coalesced writeback issues fewer backing invocations and
//!   costs fewer simulated cycles than per-sector writes.
//! - Stress: several non-cooperating domains hammer one shared cache
//!   installed by interposition.

use proptest::prelude::*;
use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc,
};

use paramecium::core::memsvc::MemService;
use paramecium::machine::dev::disk::{batch_transfer_cost, SECTOR_SIZE, SECTOR_TRANSFER_COST};
use paramecium::machine::Machine;
use paramecium::obj::interpose::interposer_target;
use paramecium::prelude::*;
use paramecium::store::vectored::{pairs_arg, sectors_arg};
use paramecium::store::StackBuilder;
use parking_lot::Mutex;

/// Sector range the tests operate on: small enough that random sequences
/// collide and evict constantly.
const RANGE: i64 = 24;

fn fresh_driver() -> (Arc<MemService>, ObjRef) {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine));
    let driver = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top;
    (mem, driver)
}

fn sector_of(byte: u8) -> Value {
    Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
}

fn resident_of(cache: &ObjRef) -> i64 {
    cache
        .invoke("cache", "stats", &[])
        .unwrap()
        .as_list()
        .unwrap()[3]
        .as_int()
        .unwrap()
}

/// One abstract storage operation.
#[derive(Clone, Debug)]
enum StoreOp {
    Read(i64),
    Write(i64, u8),
    ReadMany(Vec<i64>),
    WriteMany(Vec<(i64, u8)>),
    Flush,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0..RANGE).prop_map(StoreOp::Read),
        (0..RANGE, 0u8..=255).prop_map(|(s, b)| StoreOp::Write(s, b)),
        proptest::collection::vec(0..RANGE, 1..6).prop_map(StoreOp::ReadMany),
        proptest::collection::vec((0..RANGE, 0u8..=255), 1..6).prop_map(StoreOp::WriteMany),
        (0u8..1).prop_map(|_| StoreOp::Flush),
    ]
}

/// Applies `op` to any blockdev-speaking object, returning the read
/// payloads (first byte of each sector) so cache and raw driver can be
/// compared call by call, not just at the end.
fn apply(dev: &ObjRef, op: &StoreOp, is_cache: bool) -> Vec<u8> {
    match op {
        StoreOp::Read(sec) => {
            let v = dev.invoke("blockdev", "read", &[Value::Int(*sec)]).unwrap();
            vec![v.as_bytes().unwrap()[0]]
        }
        StoreOp::Write(sec, byte) => {
            dev.invoke("blockdev", "write", &[Value::Int(*sec), sector_of(*byte)])
                .unwrap();
            Vec::new()
        }
        StoreOp::ReadMany(secs) => {
            let v = dev
                .invoke(
                    "blockdev",
                    "read_many",
                    &[sectors_arg(secs.iter().copied())],
                )
                .unwrap();
            v.as_list()
                .unwrap()
                .iter()
                .map(|b| b.as_bytes().unwrap()[0])
                .collect()
        }
        StoreOp::WriteMany(pairs) => {
            let arg = pairs_arg(
                pairs
                    .iter()
                    .map(|(sec, byte)| (*sec, bytes::Bytes::from(vec![*byte; SECTOR_SIZE]))),
            );
            dev.invoke("blockdev", "write_many", &[arg]).unwrap();
            Vec::new()
        }
        StoreOp::Flush => {
            if is_cache {
                dev.invoke("cache", "flush", &[]).unwrap();
            }
            Vec::new()
        }
    }
}

fn disk_contents(driver: &ObjRef) -> Vec<u8> {
    let v = driver
        .invoke("blockdev", "read_many", &[sectors_arg(0..RANGE)])
        .unwrap();
    v.as_list()
        .unwrap()
        .iter()
        .flat_map(|b| b.as_bytes().unwrap().to_vec())
        .collect()
}

proptest! {
    /// The cache is transparent: every read returns what the raw driver
    /// would have returned, and after a final flush the backing disk is
    /// byte-identical to the driver-only run — for shard counts 1, 4 and
    /// 8 and capacities from thrashing-small to ample.
    #[test]
    fn cache_is_differentially_transparent(
        ops in proptest::collection::vec(store_op(), 0..60),
        capacity in 2usize..40,
    ) {
        for shards in [1usize, 4, 8] {
            let (_mem_c, backing) = fresh_driver();
            let cache = StackBuilder::on(backing.clone())
                .sharded_cache(capacity, shards)
                .build()
                .unwrap()
                .top;
            let (_mem_r, raw) = fresh_driver();
            for op in &ops {
                let through_cache = apply(&cache, op, true);
                let through_raw = apply(&raw, op, false);
                prop_assert_eq!(
                    &through_cache, &through_raw,
                    "read divergence (shards={}, capacity={}, op={:?})", shards, capacity, op
                );
                // Strict capacity invariant after every operation.
                let resident = resident_of(&cache);
                let cap_total = (capacity.div_ceil(shards) * shards) as i64;
                prop_assert!(
                    resident <= cap_total,
                    "resident {} over capacity {} (shards={})", resident, cap_total, shards
                );
            }
            cache.invoke("cache", "flush", &[]).unwrap();
            prop_assert_eq!(
                disk_contents(&backing),
                disk_contents(&raw),
                "disk divergence after final flush (shards={}, capacity={})", shards, capacity
            );
        }
    }
}

/// Wraps `driver` in an interposer whose writes fail while `armed`.
fn failing_backing(driver: ObjRef, armed: Arc<AtomicBool>) -> ObjRef {
    let a1 = armed.clone();
    let a2 = armed;
    InterposerBuilder::new(driver)
        .override_method("blockdev", "write", move |this, args| {
            if a1.load(Ordering::Relaxed) {
                return Err(paramecium::obj::ObjError::failed("injected write failure"));
            }
            interposer_target(this)?.invoke("blockdev", "write", args)
        })
        .override_method("blockdev", "write_many", move |this, args| {
            if a2.load(Ordering::Relaxed) {
                return Err(paramecium::obj::ObjError::failed("injected write failure"));
            }
            interposer_target(this)?.invoke("blockdev", "write_many", args)
        })
        .build()
}

#[test]
fn failed_flush_loses_no_dirty_data() {
    for shards in [1usize, 4, 8] {
        let (_mem, driver) = fresh_driver();
        let armed = Arc::new(AtomicBool::new(false));
        let flaky = failing_backing(driver.clone(), armed.clone());
        let cache = StackBuilder::on(flaky)
            .sharded_cache(64, shards)
            .build()
            .unwrap()
            .top;
        for sec in 0..10i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(0xD0 + sec as u8)],
                )
                .unwrap();
        }
        // Flush against a failing backing store: the error surfaces and
        // NO line may be marked clean.
        armed.store(true, Ordering::Relaxed);
        assert!(
            cache.invoke("cache", "flush", &[]).is_err(),
            "flush must propagate the backing failure (shards={shards})"
        );
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(
            dstats.as_list().unwrap()[1],
            Value::Int(0),
            "nothing reached the disk"
        );
        // Recovery: disarm and flush again — every dirty line must still
        // be dirty and reach the disk now.
        armed.store(false, Ordering::Relaxed);
        assert_eq!(
            cache.invoke("cache", "flush", &[]).unwrap(),
            Value::Int(10),
            "a failed flush must leave all lines dirty (shards={shards})"
        );
        for sec in 0..10i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0xD0 + sec as u8);
        }
        // And the durable flush is idempotent.
        assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(0));
    }
}

#[test]
fn failed_eviction_writeback_keeps_victim_and_surfaces_error() {
    let (_mem, driver) = fresh_driver();
    let armed = Arc::new(AtomicBool::new(false));
    let flaky = failing_backing(driver.clone(), armed.clone());
    let cache = StackBuilder::on(flaky).cache(2).build().unwrap().top;
    cache
        .invoke("blockdev", "write", &[Value::Int(0), sector_of(0xAA)])
        .unwrap();
    cache
        .invoke("blockdev", "write", &[Value::Int(1), sector_of(0xBB)])
        .unwrap();
    // A third write needs to evict a dirty victim; the backing write
    // fails, so the client write fails and the victim's data survives.
    armed.store(true, Ordering::Relaxed);
    assert!(cache
        .invoke("blockdev", "write", &[Value::Int(2), sector_of(0xCC)])
        .is_err());
    armed.store(false, Ordering::Relaxed);
    // The original dirty data is intact (flushable), nothing was lost.
    assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(2));
    for (sec, byte) in [(0i64, 0xAAu8), (1, 0xBB)] {
        let v = driver
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], byte);
    }
}

#[test]
fn failed_write_many_applies_nothing() {
    // The cache's write_many matches the driver's no-partial-effects
    // contract: if the eviction writeback that makes room for the batch
    // fails, no pair of the batch may be cached.
    let (_mem, driver) = fresh_driver();
    let armed = Arc::new(AtomicBool::new(false));
    let flaky = failing_backing(driver.clone(), armed.clone());
    let cache = StackBuilder::on(flaky).cache(2).build().unwrap().top;
    cache
        .invoke("blockdev", "write", &[Value::Int(0), sector_of(0xAA)])
        .unwrap();
    cache
        .invoke("blockdev", "write", &[Value::Int(1), sector_of(0xBB)])
        .unwrap();
    armed.store(true, Ordering::Relaxed);
    let pairs = pairs_arg([
        (0i64, bytes::Bytes::from(vec![0x11u8; SECTOR_SIZE])),
        (2, bytes::Bytes::from(vec![0x22u8; SECTOR_SIZE])),
    ]);
    assert!(
        cache.invoke("blockdev", "write_many", &[pairs]).is_err(),
        "eviction writeback failure must fail the batch"
    );
    armed.store(false, Ordering::Relaxed);
    // Neither pair applied: sector 0 still holds its old data and sector
    // 2 is absent, so flushing persists exactly the pre-batch state.
    let v = cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
    assert_eq!(v.as_bytes().unwrap()[0], 0xAA, "batch must not half-apply");
    assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(2));
    let v = driver.invoke("blockdev", "read", &[Value::Int(2)]).unwrap();
    assert_eq!(v.as_bytes().unwrap()[0], 0, "sector 2 never written");
}

#[test]
fn oversized_write_many_streams_through_in_one_backing_call() {
    // A batch larger than the cache bypasses it as one vectorized
    // write-through instead of thrashing every line.
    let (_mem, driver) = fresh_driver();
    let cache = StackBuilder::on(driver.clone())
        .cache(8)
        .build()
        .unwrap()
        .top;
    cache
        .invoke("blockdev", "write", &[Value::Int(0), sector_of(0x01)])
        .unwrap();
    let before = driver.invocation_count();
    let pairs: Vec<(i64, bytes::Bytes)> = (0..64i64)
        .map(|sec| (sec, bytes::Bytes::from(vec![0x40 + sec as u8; SECTOR_SIZE])))
        .collect();
    let n = cache
        .invoke("blockdev", "write_many", &[pairs_arg(pairs)])
        .unwrap();
    assert_eq!(n, Value::Int(64));
    assert_eq!(
        driver.invocation_count() - before,
        1,
        "streaming write-through issues one backing call"
    );
    // Everything is on disk already; the resident line was refreshed in
    // place (clean), so flush has nothing to do.
    for sec in [0i64, 7, 63] {
        let v = driver
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x40 + sec as u8);
    }
    assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(0));
    // And the refreshed line still serves reads with the new data.
    let v = cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
    assert_eq!(v.as_bytes().unwrap()[0], 0x40);
}

#[test]
fn batched_flush_beats_per_sector_writes_on_invocations_and_cost() {
    const N: i64 = 256;
    // Per-sector: 256 individual driver writes.
    let (mem_a, driver_a) = fresh_driver();
    let t0 = mem_a.machine().lock().now();
    let inv0 = driver_a.invocation_count();
    for sec in 0..N {
        driver_a
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    let per_sector_cost = mem_a.machine().lock().now() - t0;
    let per_sector_invocations = driver_a.invocation_count() - inv0;

    // Batched: 256 dirty lines, one coalesced flush.
    let (mem_b, driver_b) = fresh_driver();
    let cache = StackBuilder::on(driver_b.clone())
        .sharded_cache(512, 8)
        .build()
        .unwrap()
        .top;
    for sec in 0..N {
        cache
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    let t0 = mem_b.machine().lock().now();
    let inv0 = driver_b.invocation_count();
    assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(N));
    let batched_cost = mem_b.machine().lock().now() - t0;
    let batched_invocations = driver_b.invocation_count() - inv0;

    assert_eq!(per_sector_invocations, N as u64);
    assert_eq!(batched_invocations, 1, "one vectorized backing call");
    assert_eq!(per_sector_cost, N as u64 * SECTOR_TRANSFER_COST);
    assert_eq!(batched_cost, batch_transfer_cost(N as usize));
    assert!(
        batched_cost * 2 < per_sector_cost,
        "batched flush must cost well under half: {batched_cost} vs {per_sector_cost}"
    );
    // Both strategies leave identical bytes behind.
    assert_eq!(disk_contents(&driver_a)[..], disk_contents(&driver_b)[..]);
}

#[test]
fn multi_client_stress_through_interposition() {
    // The paper's scenario at load: one shared cache interposed over
    // /dev/disk, several non-cooperating user domains hammering it
    // through their proxies.
    let world = World::boot();
    let n = &world.nucleus;
    n.repository.add_native("disk-driver", "1.0", {
        let mem = n.mem.clone();
        Arc::new(move || {
            StackBuilder::disk(&mem, KERNEL_DOMAIN)
                .build()
                .map(|stack| stack.top)
                .map_err(|e| paramecium::obj::ObjError::failed(e.to_string()))
        })
    });
    world
        .certify_by_root("disk-driver", &[Right::RunKernel, Right::DeviceAccess])
        .unwrap();
    n.load("disk-driver", &LoadOptions::kernel("/dev/disk"))
        .unwrap();
    let raw = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    let cache = StackBuilder::on(raw)
        .sharded_cache(32, 4)
        .build()
        .unwrap()
        .top;
    n.interpose(KERNEL_DOMAIN, "/dev/disk", cache).unwrap();

    let clients: Vec<ObjRef> = (0..4)
        .map(|i| {
            let d = n
                .create_domain(format!("client-{i}"), KERNEL_DOMAIN, [])
                .unwrap();
            n.bind(d.id, "/dev/disk").unwrap()
        })
        .collect();

    // Interleaved traffic over overlapping ranges: client i stripes its
    // id into sectors [i, i+4, ...), then everyone reads everyone's.
    let writes = Arc::new(AtomicU64::new(0));
    for round in 0..8u8 {
        for (i, c) in clients.iter().enumerate() {
            for k in 0..16i64 {
                let sec = (i as i64 + 4 * k) % 64;
                c.invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(round.wrapping_mul(sec as u8))],
                )
                .unwrap();
                writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        for c in &clients {
            let v = c
                .invoke("blockdev", "read_many", &[sectors_arg(0..16)])
                .unwrap();
            assert_eq!(v.as_list().unwrap().len(), 16);
        }
    }

    // The shared cache saw every client: aggregated accesses match the
    // traffic, the capacity invariant held, and a final flush persists a
    // consistent image.
    let shared = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    let stats = shared.invoke("cache", "stats", &[]).unwrap();
    let s: Vec<i64> = stats
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let total_ops = writes.load(Ordering::Relaxed) as i64 + 8 * 4 * 16;
    assert_eq!(s[0] + s[1], total_ops, "hits+misses == every client op");
    assert!(s[3] <= 32, "resident {} within capacity", s[3]);
    let shard_stats = shared.invoke("cache", "shard_stats", &[]).unwrap();
    let shard_stats = shard_stats.as_list().unwrap();
    assert_eq!(shard_stats.len(), 4);
    assert!(
        shard_stats
            .iter()
            .all(|sh| sh.as_list().unwrap()[0].as_int().unwrap() > 0),
        "traffic reaches every shard"
    );
    shared.invoke("cache", "flush", &[]).unwrap();
    // After the flush the last round's stripes are on disk.
    let disk = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    for sec in 0..16i64 {
        let v = disk.invoke("blockdev", "read", &[Value::Int(sec)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 7u8.wrapping_mul(sec as u8));
    }
}
