//! Integration: the shared block cache as a certified kernel component
//! (paper §4 — "certified kernel components can include … shared caches"),
//! installed by interposition and shared across non-cooperating domains.

use paramecium::machine::dev::disk::{SECTOR_SIZE, SECTOR_TRANSFER_COST};
use paramecium::prelude::*;
use paramecium::store::StackBuilder;

fn sector_of(byte: u8) -> Value {
    Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
}

#[test]
fn cache_is_installed_by_interposition_and_shared_across_domains() {
    let world = World::boot();
    let n = &world.nucleus;

    // The disk driver is a certified native toolbox component.
    n.repository.add_native("disk-driver", "1.0", {
        let mem = n.mem.clone();
        std::sync::Arc::new(move || {
            StackBuilder::disk(&mem, KERNEL_DOMAIN)
                .build()
                .map(|stack| stack.top)
                .map_err(|e| paramecium::obj::ObjError::failed(e.to_string()))
        })
    });
    world
        .certify_by_root("disk-driver", &[Right::RunKernel, Right::DeviceAccess])
        .unwrap();
    n.load("disk-driver", &LoadOptions::kernel("/dev/disk"))
        .unwrap();

    // Two non-cooperating user domains bind the raw disk.
    let alice = n.create_domain("alice", KERNEL_DOMAIN, []).unwrap();
    let bob = n.create_domain("bob", KERNEL_DOMAIN, []).unwrap();

    // The administrator interposes the shared cache over /dev/disk.
    let raw = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    let cache = StackBuilder::on(raw).cache(64).build().unwrap().top;
    n.interpose(KERNEL_DOMAIN, "/dev/disk", cache).unwrap();

    // Alice writes through her proxy; Bob reads the same sector through
    // his — served by the shared cache without a disk access.
    let alice_disk = n.bind(alice.id, "/dev/disk").unwrap();
    let bob_disk = n.bind(bob.id, "/dev/disk").unwrap();
    alice_disk
        .invoke("blockdev", "write", &[Value::Int(12), sector_of(0xAA)])
        .unwrap();
    let v = bob_disk
        .invoke("blockdev", "read", &[Value::Int(12)])
        .unwrap();
    assert_eq!(v.as_bytes().unwrap()[0], 0xAA);

    // The cache interface confirms the sharing (1 write miss + 1 read hit)
    // and that the disk itself was never touched.
    let shared = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    let cstats = shared.invoke("cache", "stats", &[]).unwrap();
    let s = cstats.as_list().unwrap().to_vec();
    assert_eq!(s[0], Value::Int(1), "Bob's read hit Alice's line");
    let dstats = shared.invoke("blockdev", "stats", &[]).unwrap();
    assert_eq!(
        dstats.as_list().unwrap()[1],
        Value::Int(0),
        "no disk write yet"
    );

    // Flush persists; the raw driver (still reachable via the cache's
    // backing) confirms.
    shared.invoke("cache", "flush", &[]).unwrap();
    let dstats = shared.invoke("blockdev", "stats", &[]).unwrap();
    assert_eq!(dstats.as_list().unwrap()[1], Value::Int(1));
}

#[test]
fn cache_hides_disk_latency_for_hot_working_sets() {
    let world = World::boot();
    let n = &world.nucleus;
    let raw = StackBuilder::disk(&n.mem, KERNEL_DOMAIN)
        .build()
        .unwrap()
        .top;

    // Cold: 20 reads straight from disk.
    let t0 = n.now();
    for sec in 0..20i64 {
        raw.invoke("blockdev", "read", &[Value::Int(sec)]).unwrap();
    }
    let uncached = n.now() - t0;

    // Warm: the same 20 sectors through a cache, read 5 times over.
    let cache = StackBuilder::on(raw).cache(32).build().unwrap().top;
    let t0 = n.now();
    for _ in 0..5 {
        for sec in 0..20i64 {
            cache
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
        }
    }
    let cached = n.now() - t0;
    // 100 cached reads (20 misses + 80 hits) vs 20 cold reads: the cache
    // must win despite doing 5x the accesses.
    assert!(
        cached < uncached + 20 * SECTOR_TRANSFER_COST,
        "cached {cached} vs uncached {uncached}"
    );
    let stats = cache.invoke("cache", "stats", &[]).unwrap();
    let s = stats.as_list().unwrap().to_vec();
    assert_eq!(s[0], Value::Int(80));
    assert_eq!(s[1], Value::Int(20));
}

#[test]
fn uncertified_cache_cannot_be_loaded_into_the_kernel() {
    // The point of §4: a component that will hold other users' data needs
    // *trust*, not just memory safety. An uncertified native cache is
    // refused outright.
    let world = World::boot();
    let n = &world.nucleus;
    n.repository.add_native("rogue-cache", "0.1", {
        let mem = n.mem.clone();
        std::sync::Arc::new(move || {
            let raw = StackBuilder::disk(&mem, KERNEL_DOMAIN)
                .build()
                .map_err(|e| paramecium::obj::ObjError::failed(e.to_string()))?;
            Ok(StackBuilder::on(raw.top)
                .cache(8)
                .build()
                .expect("cache-only stack")
                .top)
        })
    });
    let err = n
        .load("rogue-cache", &LoadOptions::kernel("/dev/disk"))
        .unwrap_err();
    assert!(matches!(err, paramecium::core::CoreError::Cert(_)));
}
