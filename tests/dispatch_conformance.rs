//! Dispatch conformance suite: fast path ≡ slow path, differentially.
//!
//! The invocation stack serves repeated calls from caches — a per-object
//! inline cache behind `Object::invoke`, per-hop `CallCache`s inside
//! interposers/compositions/delegation, and pinned method handles inside
//! cross-domain proxies — all invalidated by export-generation counters.
//! Because those caches silently touch every call path, this suite pins
//! their semantics against the cache-free reference
//! (`Object::invoke_uncached`) for every dispatch flavour: twin objects
//! are built from one factory and driven through the same call script,
//! one twin through the cached fast path (repeating each call so the warm
//! path is actually exercised), the other through the uncached slow path;
//! the transcripts must be identical, including errors and per-object
//! invocation accounting.

use paramecium::obj::{
    compose::COMPOSITION_IFACE, delegate_interface, interpose::INTERPOSER_IFACE, InterfaceBuilder,
    ObjError,
};
use paramecium::prelude::*;
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

/// One scripted call: `(interface, method, args)`.
type Call = (&'static str, &'static str, Vec<Value>);

/// A transcript entry: the canonicalised outcome of one call.
///
/// `Value::Handle` compares by identity, which can never match across
/// twins, so outcomes are canonicalised structurally (handles render as
/// their class name).
fn canon(r: &Result<Value, ObjError>) -> String {
    fn v(val: &Value) -> String {
        match val {
            Value::Handle(h) => format!("handle<{}>", h.class()),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(v).collect();
                format!("[{}]", inner.join(","))
            }
            other => format!("{other:?}"),
        }
    }
    match r {
        Ok(val) => format!("ok:{}", v(val)),
        Err(e) => format!("err:{e:?}"),
    }
}

/// Drives `obj` through `script`. With `fast` each call runs three times
/// through the cached path (cold populate, then two warm hits) and the
/// transcript records the *last* (fully warm) outcome; without it, every
/// call takes the uncached reference path exactly three times too, so
/// state mutations and invocation counts stay comparable.
fn drive(obj: &ObjRef, script: &[Call], fast: bool) -> Vec<String> {
    script
        .iter()
        .map(|(iface, method, args)| {
            let mut last = None;
            for _ in 0..3 {
                let r = if fast {
                    obj.invoke(iface, method, args)
                } else {
                    obj.invoke_uncached(iface, method, args)
                };
                last = Some(r);
            }
            canon(&last.expect("script ran"))
        })
        .collect()
}

/// Builds twins from `factory`, runs `script` fast and slow, and asserts
/// transcript + invocation-count equivalence.
fn assert_conformance(factory: impl Fn() -> ObjRef, script: &[Call]) {
    let fast_obj = factory();
    let slow_obj = factory();
    let fast = drive(&fast_obj, script, true);
    let slow = drive(&slow_obj, script, false);
    assert_eq!(fast, slow, "fast-path transcript diverged from slow path");
    assert_eq!(
        fast_obj.invocation_count(),
        slow_obj.invocation_count(),
        "invocation accounting diverged"
    );
}

fn counter() -> ObjRef {
    ObjectBuilder::new("counter")
        .state(0i64)
        .interface("ctr", |i| {
            i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let by = args[0].as_int()?;
                this.with_state(|n: &mut i64| {
                    *n += by;
                    Ok(Value::Int(*n))
                })
            })
            .method("get", &[], TypeTag::Int, |this, _| {
                this.with_state(|n: &mut i64| Ok(Value::Int(*n)))
            })
            .method("name", &[], TypeTag::Str, |_, _| {
                Ok(Value::Str("counter".into()))
            })
        })
        .build()
}

/// The standard probe script: state mutation, reads, arity error, type
/// error, missing method, missing interface.
fn counter_script() -> Vec<Call> {
    vec![
        ("ctr", "incr", vec![Value::Int(2)]),
        ("ctr", "get", vec![]),
        ("ctr", "name", vec![]),
        ("ctr", "incr", vec![]),                       // arity error
        ("ctr", "incr", vec![Value::Str("x".into())]), // type error
        ("ctr", "nope", vec![]),                       // missing method
        ("nope", "get", vec![]),                       // missing interface
        ("ctr", "incr", vec![Value::Int(5)]),
        ("ctr", "get", vec![]),
    ]
}

// ------------------------------------------------------------- flavour 1

#[test]
fn direct_dispatch_fast_equals_slow() {
    assert_conformance(counter, &counter_script());
}

#[test]
fn direct_dispatch_many_methods_exceeding_cache_slots() {
    // More hot methods than the dispatch cache holds: the overflow must be
    // served correctly (from the slow path), not wrongly or not at all.
    let factory = || {
        let mut b = ObjectBuilder::new("wide").state(0i64);
        b = b.interface("wide", |mut i| {
            for k in 0..12i64 {
                let name = format!("m{k}");
                i = i.method(&name, &[], TypeTag::Int, move |_, _| Ok(Value::Int(k)));
            }
            i
        });
        b.build()
    };
    let script: Vec<Call> = (0..12usize)
        .cycle()
        .take(36)
        .map(|k| {
            let names = [
                "m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9", "m10", "m11",
            ];
            ("wide", names[k], vec![])
        })
        .collect();
    assert_conformance(factory, &script);
}

// ------------------------------------------------------------- flavour 2

#[test]
fn bound_method_equals_interface_call_and_invoke() {
    let via_bound = counter();
    let via_iface = counter();
    let via_invoke = counter();
    let bound = via_bound
        .interface("ctr")
        .unwrap()
        .bind_method(&via_bound, "incr")
        .unwrap();
    let iface = via_iface.interface("ctr").unwrap();
    for step in [3i64, -1, 40] {
        let args = [Value::Int(step)];
        let a = canon(&bound.call(&args));
        let b = canon(&iface.call(&via_iface, "incr", &args));
        let c = canon(&via_invoke.invoke("ctr", "incr", &args));
        assert_eq!(a, b, "bound vs interface.call");
        assert_eq!(b, c, "interface.call vs invoke");
    }
    // Type errors agree too.
    let bad = [Value::Str("x".into())];
    assert_eq!(
        canon(&bound.call(&bad)),
        canon(&via_invoke.invoke("ctr", "incr", &bad))
    );
    assert_eq!(bound.signature().name, "incr");
}

// ------------------------------------------------------------- flavour 3

#[test]
fn delegated_and_fallback_dispatch_fast_equals_slow() {
    let factory = || {
        let base = counter();
        let iface = InterfaceBuilder::new("ctr")
            .method("name", &[], TypeTag::Str, |_, _| {
                Ok(Value::Str("child".into()))
            })
            .finish();
        ObjectBuilder::new("child")
            .raw_interface(delegate_interface(iface, base))
            .build()
    };
    let script = vec![
        ("ctr", "name", vec![]),                       // own method wins
        ("ctr", "incr", vec![Value::Int(4)]),          // delegated, target state
        ("ctr", "get", vec![]),                        // delegated read
        ("ctr", "incr", vec![Value::Str("x".into())]), // type error at target
        ("ctr", "ghost", vec![]),                      // missing everywhere
        ("ctr", "incr", vec![Value::Int(1)]),
    ];
    assert_conformance(factory, &script);
}

#[test]
fn cached_fallback_resolution_fast_equals_slow_and_invalidates() {
    // PR 5 satellite: delegated (fallback-served) methods are now pinned
    // in the object-level dispatch cache, so a warmed delegated call skips
    // the interface-table walk. The cached handler must (a) behave exactly
    // like the slow path while warm, and (b) miss cleanly when the
    // interface is re-exported out from under it.
    let make = || {
        let base = counter();
        let child = ObjectBuilder::new("child")
            .raw_interface(delegate_interface(
                InterfaceBuilder::new("ctr").finish(),
                base.clone(),
            ))
            .build();
        (child, base)
    };
    let (fast_obj, _fast_base) = make();
    let (slow_obj, _slow_base) = make();
    // Warm thoroughly: every call below is fallback-served.
    let script = vec![
        ("ctr", "incr", vec![Value::Int(2)]),
        ("ctr", "get", vec![]),
        ("ctr", "incr", vec![Value::Int(3)]),
        ("ctr", "get", vec![]),
    ];
    assert_eq!(
        drive(&fast_obj, &script, true),
        drive(&slow_obj, &script, false)
    );
    // Re-export the delegating interface with a DIRECT `get`: the pinned
    // fallback for `get` is now stale and must never run again.
    for obj in [&fast_obj, &slow_obj] {
        let base2 = counter();
        let replacement = InterfaceBuilder::new("ctr")
            .method("get", &[], TypeTag::Int, |_, _| Ok(Value::Int(-77)))
            .finish();
        obj.export_interface(delegate_interface(replacement, base2));
    }
    let post = vec![
        ("ctr", "get", vec![]),               // direct now
        ("ctr", "incr", vec![Value::Int(1)]), // delegated to the NEW base
        ("ctr", "ghost", vec![]),             // still missing everywhere
    ];
    let fast = drive(&fast_obj, &post, true);
    let slow = drive(&slow_obj, &post, false);
    assert_eq!(fast, slow);
    assert_eq!(
        fast[0], "ok:Int(-77)",
        "stale cached fallback must not shadow the re-exported direct method"
    );
    assert_eq!(
        fast[1], "ok:Int(3)",
        "delegation must reach the new target after re-export (3 warm calls x incr 1)"
    );
    // Revoking the interface surfaces as a clean error on the warm path.
    assert!(fast_obj.revoke_interface("ctr"));
    assert!(matches!(
        fast_obj.invoke("ctr", "get", &[]),
        Err(ObjError::NoSuchInterface { .. })
    ));
}

#[test]
fn cached_fallback_skips_interface_walk_but_keeps_delegation_live() {
    // The pinned fallback still consults the delegation target per call:
    // a re-export on the *target* (not the delegator) must be observed
    // even though the delegator's own cache entry stays fresh.
    let base = counter();
    let child = ObjectBuilder::new("child")
        .raw_interface(delegate_interface(
            InterfaceBuilder::new("ctr").finish(),
            base.clone(),
        ))
        .build();
    for _ in 0..3 {
        child.invoke("ctr", "name", &[]).unwrap();
    }
    let replacement = InterfaceBuilder::new("ctr")
        .method("name", &[], TypeTag::Str, |_, _| {
            Ok(Value::Str("renamed".into()))
        })
        .finish();
    base.export_interface(replacement);
    assert_eq!(
        child.invoke("ctr", "name", &[]).unwrap(),
        Value::Str("renamed".into()),
        "warm delegated call must re-resolve against the re-exported target"
    );
}

#[test]
fn delegation_chain_fast_equals_slow() {
    let factory = || {
        let base = counter();
        let mid = ObjectBuilder::new("mid")
            .raw_interface(delegate_interface(
                InterfaceBuilder::new("ctr").finish(),
                base,
            ))
            .build();
        ObjectBuilder::new("top")
            .raw_interface(delegate_interface(
                InterfaceBuilder::new("ctr").finish(),
                mid,
            ))
            .build()
    };
    assert_conformance(factory, &counter_script());
}

// ------------------------------------------------------------- flavour 4

#[test]
fn interposed_chain_fast_equals_slow_with_hooks_and_overrides() {
    let fast_hooks = Arc::new(AtomicU64::new(0));
    let slow_hooks = Arc::new(AtomicU64::new(0));
    let factory = |hooks: Arc<AtomicU64>| {
        move || {
            let mut obj = counter();
            for layer in 0..3 {
                let mut b = InterposerBuilder::new(obj);
                if layer == 1 {
                    // One layer doubles every increment.
                    b = b.override_method("ctr", "incr", |this, args| {
                        let v = args[0].as_int()?;
                        paramecium::obj::interpose::interposer_target(this)?.invoke(
                            "ctr",
                            "incr",
                            &[Value::Int(v * 2)],
                        )
                    });
                }
                let h = hooks.clone();
                b = b.before(move |_, _, _| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
                obj = b.build();
            }
            obj
        }
    };
    let script = counter_script();
    let fast_obj = factory(fast_hooks.clone())();
    let slow_obj = factory(slow_hooks.clone())();
    let fast = drive(&fast_obj, &script, true);
    let slow = drive(&slow_obj, &script, false);
    assert_eq!(fast, slow);
    assert_eq!(
        fast_hooks.load(Ordering::Relaxed),
        slow_hooks.load(Ordering::Relaxed),
        "hooks must observe the same calls on both paths"
    );
}

#[test]
fn interposer_retarget_invalidates_cached_forward() {
    // Warm the chain, retarget mid-stream, and require the very next call
    // to reach the new target — a stale cached hop must re-resolve, never
    // call the old instance.
    let factory = || {
        let a = counter();
        let agent = InterposerBuilder::new(a.clone()).build();
        (agent, a)
    };
    let (fast_agent, fast_a) = factory();
    let (slow_agent, slow_a) = factory();
    let b_fast = counter();
    let b_slow = counter();
    for _ in 0..3 {
        fast_agent.invoke("ctr", "incr", &[Value::Int(1)]).unwrap();
        slow_agent
            .invoke_uncached("ctr", "incr", &[Value::Int(1)])
            .unwrap();
    }
    fast_agent
        .invoke(
            INTERPOSER_IFACE,
            "retarget",
            &[Value::Handle(b_fast.clone())],
        )
        .unwrap();
    slow_agent
        .invoke_uncached(
            INTERPOSER_IFACE,
            "retarget",
            &[Value::Handle(b_slow.clone())],
        )
        .unwrap();
    let rf = fast_agent.invoke("ctr", "incr", &[Value::Int(10)]).unwrap();
    let rs = slow_agent
        .invoke_uncached("ctr", "incr", &[Value::Int(10)])
        .unwrap();
    assert_eq!(rf, Value::Int(10), "fast path must hit the NEW target");
    assert_eq!(canon(&Ok(rf)), canon(&Ok(rs)));
    // The old targets saw exactly the pre-retarget traffic.
    assert_eq!(fast_a.invoke("ctr", "get", &[]).unwrap(), Value::Int(3));
    assert_eq!(slow_a.invoke("ctr", "get", &[]).unwrap(), Value::Int(3));
    assert_eq!(b_fast.invoke("ctr", "get", &[]).unwrap(), Value::Int(10));
}

// ------------------------------------------------------------- flavour 5

#[test]
fn composed_dispatch_fast_equals_slow() {
    let factory = || {
        CompositionBuilder::new("comp")
            .child("c", counter())
            .export("ctr", "c")
            .build()
            .unwrap()
    };
    assert_conformance(factory, &counter_script());
}

#[test]
fn composition_replace_invalidates_cached_forward() {
    let factory = || {
        CompositionBuilder::new("comp")
            .child("c", counter())
            .export("ctr", "c")
            .build()
            .unwrap()
    };
    let fast_obj = factory();
    let slow_obj = factory();
    let script_pre = vec![("ctr", "incr", vec![Value::Int(7)])];
    let fast_pre = drive(&fast_obj, &script_pre, true);
    let slow_pre = drive(&slow_obj, &script_pre, false);
    assert_eq!(fast_pre, slow_pre);
    // Replace the child on both twins; calls must hit the fresh instance.
    for (obj, fast) in [(&fast_obj, true), (&slow_obj, false)] {
        let args = [Value::Str("c".into()), Value::Handle(counter())];
        if fast {
            obj.invoke(COMPOSITION_IFACE, "replace", &args).unwrap();
        } else {
            obj.invoke_uncached(COMPOSITION_IFACE, "replace", &args)
                .unwrap();
        }
    }
    let script_post = vec![("ctr", "get", vec![]), ("ctr", "incr", vec![Value::Int(1)])];
    let fast_post = drive(&fast_obj, &script_post, true);
    let slow_post = drive(&slow_obj, &script_post, false);
    assert_eq!(fast_post, slow_post);
    assert_eq!(
        fast_post[0], "ok:Int(0)",
        "cached forward must miss to the replacement"
    );
}

// ------------------------------------------------------------- flavour 6

#[test]
fn cross_domain_proxy_fast_equals_slow() {
    let world = World::boot();
    let n = &world.nucleus;
    n.register(KERNEL_DOMAIN, "/svc/fast", counter()).unwrap();
    n.register(KERNEL_DOMAIN, "/svc/slow", counter()).unwrap();
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let fast_proxy = n.bind(app.id, "/svc/fast").unwrap();
    let slow_target = n.bind(KERNEL_DOMAIN, "/svc/slow").unwrap();

    // The proxy is driven warm (cached method handle); the reference twin
    // is the *direct* uncached object — marshalling of flat values must be
    // transparent, so the transcripts agree exactly. (The missing-interface
    // probe is asserted by kind separately: that error legitimately names
    // the proxy's own class, `proxy<counter>`.)
    let script: Vec<Call> = counter_script()
        .into_iter()
        .filter(|(iface, _, _)| *iface != "nope")
        .collect();
    let fast = drive(&fast_proxy, &script, true);
    let slow = drive(&slow_target, &script, false);
    assert_eq!(fast, slow, "proxy dispatch must be transparent");
    assert!(matches!(
        fast_proxy.invoke("nope", "get", &[]),
        Err(ObjError::NoSuchInterface { .. })
    ));
    assert!(matches!(
        slow_target.invoke_uncached("nope", "get", &[]),
        Err(ObjError::NoSuchInterface { .. })
    ));
    assert!(world.nucleus.proxy_stats().crossings() > 0);
}

#[test]
fn cross_domain_proxy_marshalling_bytes_cold_equals_warm() {
    // The cached-method fast path must not change what gets marshalled:
    // byte counts for identical calls agree between the first (cold,
    // resolving) crossing and later (warm, pinned-handle) crossings.
    let world = World::boot();
    let n = &world.nucleus;
    n.register(KERNEL_DOMAIN, "/svc/echo2", paramecium_bench_echo())
        .unwrap();
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let proxy = n.bind(app.id, "/svc/echo2").unwrap();
    let stats = n.proxy_stats();
    let args = [
        Value::Bytes(bytes::Bytes::from(vec![7u8; 300])),
        Value::Str("tag".into()),
        Value::List(vec![Value::Int(1), Value::Unit]),
    ];
    let mut per_call = Vec::new();
    for _ in 0..4 {
        let before = stats.bytes();
        proxy.invoke("echo", "echo", &args).unwrap();
        per_call.push(stats.bytes() - before);
    }
    assert!(per_call[0] > 0);
    assert!(
        per_call.windows(2).all(|w| w[0] == w[1]),
        "cold vs warm crossings must marshal identical byte counts: {per_call:?}"
    );
}

fn paramecium_bench_echo() -> ObjRef {
    ObjectBuilder::new("echo")
        .interface("echo", |i| {
            i.variadic_method("echo", |_, args| Ok(Value::List(args.to_vec())))
        })
        .build()
}

// ------------------------------------------------------------- flavour 7

#[test]
fn nested_handle_marshalling_fast_equals_slow() {
    let world = World::boot();
    let n = &world.nucleus;
    // A kernel service invoking whatever handle it is given.
    let invoker = ObjectBuilder::new("invoker")
        .interface("run", |i| {
            i.method("call", &[TypeTag::Handle], TypeTag::Int, |_, args| {
                let h = args[0].as_handle()?;
                h.invoke("ctr", "incr", &[Value::Int(21)])
            })
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/invoker", invoker.clone())
        .unwrap();
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let proxy = n.bind(app.id, "/svc/invoker").unwrap();

    // Fast: repeated warm crossings with a handle argument (each crossing
    // builds a fresh nested proxy). Slow: the same calls against the
    // invoker directly, uncached.
    let user_fast = counter();
    let user_slow = counter();
    let nested_before = n.proxy_stats().nested_proxies.load(Ordering::Relaxed);
    for round in 1..=3i64 {
        let f = proxy
            .invoke("run", "call", &[Value::Handle(user_fast.clone())])
            .unwrap();
        let s = invoker
            .invoke_uncached("run", "call", &[Value::Handle(user_slow.clone())])
            .unwrap();
        assert_eq!(canon(&Ok(f)), canon(&Ok(s)));
        assert_eq!(
            user_fast.invoke("ctr", "get", &[]).unwrap(),
            Value::Int(21 * round),
            "nested proxy must reach the caller's object"
        );
    }
    assert_eq!(
        n.proxy_stats().nested_proxies.load(Ordering::Relaxed) - nested_before,
        3,
        "each handle crossing synthesises one nested proxy"
    );
}

// ------------------------------------------------------------- flavour 8

#[test]
fn re_export_invalidates_object_dispatch_cache() {
    let factory = counter;
    let fast_obj = factory();
    let slow_obj = factory();
    // Warm the fast twin's cache thoroughly.
    let warm = vec![("ctr", "name", vec![])];
    assert_eq!(
        drive(&fast_obj, &warm, true),
        drive(&slow_obj, &warm, false)
    );
    // Replace the interface with one whose `name` answers differently.
    for obj in [&fast_obj, &slow_obj] {
        let replacement = InterfaceBuilder::new("ctr")
            .method("name", &[], TypeTag::Str, |_, _| {
                Ok(Value::Str("reborn".into()))
            })
            .finish();
        obj.export_interface(replacement);
    }
    let post = vec![
        ("ctr", "name", vec![]),
        ("ctr", "incr", vec![Value::Int(1)]), // dropped by the re-export
    ];
    let fast = drive(&fast_obj, &post, true);
    let slow = drive(&slow_obj, &post, false);
    assert_eq!(fast, slow);
    assert_eq!(
        fast[0], "ok:Str(\"reborn\")",
        "stale cached method must never run"
    );
}

#[test]
fn re_export_invalidates_cached_proxy_method_handle() {
    // The satellite case: interface re-export racing a warmed proxy. The
    // pinned handle must miss cleanly and re-resolve — never call the old
    // implementation — and revocation must surface as a clean error.
    let world = World::boot();
    let n = &world.nucleus;
    let target = ObjectBuilder::new("svc")
        .interface("svc", |i| {
            i.method("ver", &[], TypeTag::Int, |_, _| Ok(Value::Int(1)))
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/ver", target.clone())
        .unwrap();
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let proxy = n.bind(app.id, "/svc/ver").unwrap();

    for _ in 0..3 {
        assert_eq!(proxy.invoke("svc", "ver", &[]).unwrap(), Value::Int(1));
    }
    // Re-export with a new implementation behind the same interface name.
    let v2 = InterfaceBuilder::new("svc")
        .method("ver", &[], TypeTag::Int, |_, _| Ok(Value::Int(2)))
        .finish();
    target.export_interface(v2);
    assert_eq!(
        proxy.invoke("svc", "ver", &[]).unwrap(),
        Value::Int(2),
        "stale pinned handle called the superseded implementation"
    );
    // Revocation: the warmed handle must miss and report the missing
    // interface, then recover after re-export.
    assert!(target.revoke_interface("svc"));
    assert!(matches!(
        proxy.invoke("svc", "ver", &[]),
        Err(ObjError::NoSuchInterface { .. })
    ));
    let v3 = InterfaceBuilder::new("svc")
        .method("ver", &[], TypeTag::Int, |_, _| Ok(Value::Int(3)))
        .finish();
    target.export_interface(v3);
    assert_eq!(proxy.invoke("svc", "ver", &[]).unwrap(), Value::Int(3));
}

#[test]
fn re_export_invalidates_interposer_forward_cache() {
    let target = counter();
    let agent = InterposerBuilder::new(target.clone()).build();
    for _ in 0..3 {
        agent.invoke("ctr", "name", &[]).unwrap();
    }
    // Swap the *target's* interface out from under the warmed agent.
    let replacement = InterfaceBuilder::new("ctr")
        .method("name", &[], TypeTag::Str, |_, _| {
            Ok(Value::Str("swapped".into()))
        })
        .finish();
    target.export_interface(replacement);
    assert_eq!(
        agent.invoke("ctr", "name", &[]).unwrap(),
        Value::Str("swapped".into()),
        "cached hop must re-resolve against the re-exported target"
    );
    // Revoking the target interface surfaces cleanly through the agent.
    assert!(target.revoke_interface("ctr"));
    assert!(agent.invoke("ctr", "name", &[]).is_err());
}
