//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs and operation sequences.

use proptest::prelude::*;

use paramecium::core::directory::{NameSpace, NsEntry};
use paramecium::obj::value::{ArgFrame, ARG_FRAME_INLINE};
use paramecium::prelude::*;
use paramecium::sfi::{interp::Interp, sandbox::sandbox_rewrite, verifier};

/// Strategy producing arbitrary [`Value`] trees (all variants, including
/// handles and nested lists) up to a bounded depth.
struct ValueTree {
    depth: u32,
}

fn value_tree(depth: u32) -> ValueTree {
    ValueTree { depth }
}

impl Strategy for ValueTree {
    type Value = Value;
    fn sample(&self, rng: &mut proptest::TestRng) -> Value {
        sample_value(rng, self.depth)
    }
}

fn sample_value(rng: &mut proptest::TestRng, depth: u32) -> Value {
    // Lists only below the depth budget so generation terminates.
    let variants = if depth == 0 { 6 } else { 7 };
    match rng.below(variants) {
        0 => Value::Unit,
        1 => Value::Bool(rng.below(2) == 1),
        2 => Value::Int(rng.next_u64() as i64),
        3 => {
            let len = rng.below(12) as usize;
            Value::Str(
                (0..len)
                    .map(|_| char::from(b'a' + rng.below(26) as u8))
                    .collect(),
            )
        }
        4 => {
            let len = rng.below(32) as usize;
            Value::Bytes(bytes::Bytes::from(
                (0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>(),
            ))
        }
        5 => Value::Handle(ObjectBuilder::new("leaf").build()),
        _ => {
            let len = rng.below(4) as usize;
            Value::List((0..len).map(|_| sample_value(rng, depth - 1)).collect())
        }
    }
}

/// An abstract name-space operation for the model-based test.
#[derive(Clone, Debug)]
enum NsOp {
    Register(u8),
    Unregister(u8),
    Replace(u8),
    Lookup(u8),
}

fn ns_op() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        (0u8..20).prop_map(NsOp::Register),
        (0u8..20).prop_map(NsOp::Unregister),
        (0u8..20).prop_map(NsOp::Replace),
        (0u8..20).prop_map(NsOp::Lookup),
    ]
}

proptest! {
    /// The name space behaves like a map: any operation sequence agrees
    /// with a HashMap model.
    #[test]
    fn namespace_agrees_with_map_model(ops in proptest::collection::vec(ns_op(), 0..120)) {
        let ns = NameSpace::root();
        let mut model: std::collections::HashMap<u8, String> = Default::default();
        for op in ops {
            match op {
                NsOp::Register(k) => {
                    let class = format!("c{k}");
                    let r = ns.register(
                        &format!("/p/{k}"),
                        NsEntry { obj: ObjectBuilder::new(class.clone()).build(), home: KERNEL_DOMAIN },
                    );
                    prop_assert_eq!(r.is_ok(), !model.contains_key(&k));
                    model.entry(k).or_insert(class);
                }
                NsOp::Unregister(k) => {
                    let r = ns.unregister(&format!("/p/{k}"));
                    prop_assert_eq!(r.is_ok(), model.remove(&k).is_some());
                }
                NsOp::Replace(k) => {
                    let class = format!("r{k}");
                    let r = ns.replace(
                        &format!("/p/{k}"),
                        NsEntry { obj: ObjectBuilder::new(class.clone()).build(), home: KERNEL_DOMAIN },
                    );
                    prop_assert_eq!(r.is_ok(), model.contains_key(&k));
                    if let Some(slot) = model.get_mut(&k) {
                        *slot = class;
                    }
                }
                NsOp::Lookup(k) => {
                    match ns.lookup(&format!("/p/{k}")) {
                        Ok(e) => prop_assert_eq!(Some(e.obj.class().to_owned()), model.get(&k).cloned()),
                        Err(_) => prop_assert!(!model.contains_key(&k)),
                    }
                }
            }
        }
        prop_assert_eq!(ns.local_len(), model.len());
    }

    /// An [`ArgFrame`] behaves exactly like a `Vec<Value>` for arbitrary
    /// value trees pushed through it — push / len / iter / `as_slice` /
    /// indexing / `into_vec` all agree with the model, on both sides of
    /// the inline-to-heap spill boundary.
    #[test]
    fn arg_frame_matches_vec_model(
        values in proptest::collection::vec(value_tree(2), 0..10),
        reserve in 0usize..12,
    ) {
        let mut frame = ArgFrame::with_capacity(reserve);
        let mut model: Vec<Value> = Vec::new();
        for v in &values {
            frame.push(v.clone());
            model.push(v.clone());
            prop_assert_eq!(frame.len(), model.len());
            prop_assert_eq!(frame.as_slice(), model.as_slice());
        }
        prop_assert_eq!(frame.is_empty(), model.is_empty());
        // Inline exactly while it fits (unless pre-reserved onto the heap).
        if reserve <= ARG_FRAME_INLINE {
            prop_assert_eq!(frame.is_inline(), model.len() <= ARG_FRAME_INLINE);
        } else {
            prop_assert!(!frame.is_inline());
        }
        // Iteration and indexing agree with the model.
        prop_assert!(frame.iter().zip(model.iter()).all(|(a, b)| a == b));
        prop_assert_eq!(frame.iter().count(), model.len());
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(&frame[i], v);
        }
        // Conversions round-trip.
        let from_slice = ArgFrame::from(model.as_slice());
        prop_assert_eq!(from_slice.as_slice(), model.as_slice());
        prop_assert_eq!(frame.into_vec(), model);
    }

    /// The cross-domain proxy's cached-method fast path must not change
    /// what gets marshalled: for arbitrary flat argument frames, a cold
    /// (resolving) crossing and warm (pinned-handle) crossings record
    /// identical byte counts, and a freshly bound proxy agrees with a
    /// warmed one.
    #[test]
    fn proxy_marshalling_byte_count_parity(
        ints in proptest::collection::vec(any::<i64>(), 0..4),
        blob in proptest::collection::vec(any::<u8>(), 0..256),
        s in "[a-z0-9]{0,24}",
    ) {
        let (nucleus, app) = shared_proxy_world();
        let stats = nucleus.proxy_stats();
        let args = vec![
            Value::List(ints.iter().map(|&i| Value::Int(i)).collect()),
            Value::Bytes(bytes::Bytes::from(blob.clone())),
            Value::Str(s.clone()),
        ];
        // A fresh proxy: its first crossing resolves the method handle.
        let proxy = nucleus.bind(*app, "/svc/echo").unwrap();
        let mut per_call = Vec::new();
        for _ in 0..3 {
            let before = stats.bytes();
            proxy.invoke("echo", "echo", &args).unwrap();
            per_call.push(stats.bytes() - before);
        }
        prop_assert!(
            per_call.windows(2).all(|w| w[0] == w[1]),
            "cold vs warm byte counts diverged: {:?}", per_call
        );
    }

    /// Values survive a cross-domain proxy round trip unchanged
    /// (marshalling is lossless for flat values and lists).
    #[test]
    fn proxy_marshalling_is_lossless(
        ints in proptest::collection::vec(any::<i64>(), 0..8),
        blob in proptest::collection::vec(any::<u8>(), 0..512),
        s in "[a-zA-Z0-9/ ]{0,40}",
        flag in any::<bool>(),
    ) {
        // One shared world for all cases (booting runs RSA keygen).
        let proxy = shared_echo_proxy();

        let args = vec![
            Value::List(ints.iter().map(|&i| Value::Int(i)).collect()),
            Value::Bytes(bytes::Bytes::from(blob.clone())),
            Value::Str(s.clone()),
            Value::Bool(flag),
            Value::Unit,
        ];
        let out = proxy.invoke("echo", "echo", &args).unwrap();
        prop_assert_eq!(out, Value::List(args));
    }

    /// SFI containment: for arbitrary (decodable) programs, the sandboxed
    /// rewrite never produces a memory fault or jump escape — only clean
    /// halts, contained arithmetic traps, or step exhaustion.
    #[test]
    fn sandboxed_programs_never_escape(
        seed_insns in proptest::collection::vec(any::<u8>(), 0..200),
        data_len in 1u32..4096,
    ) {
        // Build a syntactically valid random program from the byte soup by
        // decoding what we can and padding with Halt.
        let mut code = Vec::new();
        let mut pos = 0;
        // Re-encode arbitrary bytes through the decoder by brute force:
        // interpret consecutive bytes as (op-ish) values.
        while pos + 4 <= seed_insns.len() && code.len() < 64 {
            let b = &seed_insns[pos..];
            let reg = |x: u8| paramecium::sfi::Reg::new(x % 16);
            let insn = match b[0] % 12 {
                0 => paramecium::sfi::Insn::Li { rd: reg(b[1]), imm: i64::from(b[2]) * 37 - 1000 },
                1 => paramecium::sfi::Insn::Add { rd: reg(b[1]), rs1: reg(b[2]), rs2: reg(b[3]) },
                2 => paramecium::sfi::Insn::LdB { rd: reg(b[1]), base: reg(b[2]), off: i32::from(b[3] as i8) },
                3 => paramecium::sfi::Insn::StB { rs: reg(b[1]), base: reg(b[2]), off: i32::from(b[3] as i8) },
                4 => paramecium::sfi::Insn::Ld { rd: reg(b[1]), base: reg(b[2]), off: i32::from(b[3] as i8) },
                5 => paramecium::sfi::Insn::St { rs: reg(b[1]), base: reg(b[2]), off: i32::from(b[3] as i8) },
                6 => paramecium::sfi::Insn::Bltu { rs1: reg(b[1]), rs2: reg(b[2]), target: u32::from(b[3]) % 64 },
                7 => paramecium::sfi::Insn::Jmp { target: u32::from(b[1]) % 64 },
                8 => paramecium::sfi::Insn::Jr { rs: reg(b[1]) },
                9 => paramecium::sfi::Insn::Mul { rd: reg(b[1]), rs1: reg(b[2]), rs2: reg(b[3]) },
                10 => paramecium::sfi::Insn::Shr { rd: reg(b[1]), rs1: reg(b[2]), rs2: reg(b[3]) },
                _ => paramecium::sfi::Insn::Divu { rd: reg(b[1]), rs1: reg(b[2]), rs2: reg(b[3]) },
            };
            code.push(insn);
            pos += 4;
        }
        code.push(paramecium::sfi::Insn::Halt);
        // Clamp branch targets into range now that length is known.
        let len = code.len() as u32;
        for insn in &mut code {
            match insn {
                paramecium::sfi::Insn::Bltu { target, .. }
                | paramecium::sfi::Insn::Jmp { target } => *target %= len,
                _ => {}
            }
        }
        let program = paramecium::sfi::Program::new(code, data_len);
        let (sandboxed, _) = sandbox_rewrite(&program);
        let mut interp = Interp::new(&sandboxed);
        match interp.run(10_000) {
            Ok(_) => {}
            // Contained traps are fine; escapes are not. Guard-zone
            // faults (masked base + immediate offset) stay inside the
            // simulation's bounds check — also contained.
            Err(paramecium::sfi::InterpError::OutOfSteps)
            | Err(paramecium::sfi::InterpError::DivideByZero { .. }) => {}
            Err(paramecium::sfi::InterpError::Fault { addr, .. }) => {
                // Must be a guard-zone hit: within one max offset (±128)
                // of the segment, never far away.
                let lo = 0i64.saturating_sub(128);
                let hi = i64::from(data_len) + 128 + 8;
                let a = addr as i64;
                prop_assert!(a >= lo && a <= hi, "wild fault at {addr:#x}");
            }
            Err(paramecium::sfi::InterpError::BadJump { .. }) => {
                prop_assert!(false, "sandboxed program escaped the code segment");
            }
        }
    }

    /// Verified programs never fault: whatever the verifier accepts runs
    /// to completion (or step exhaustion) on arbitrary input.
    #[test]
    fn verifier_acceptance_implies_memory_safety(
        data in proptest::collection::vec(any::<u8>(), 64..=64),
        r1 in any::<u64>(),
    ) {
        let program = paramecium::sfi::workloads::checksum_loop_verified(64, 2);
        verifier::verify(&program).unwrap();
        let mut i = Interp::new(&program);
        i.load_data(0, &data);
        i.set_reg(paramecium::sfi::Reg::new(1), r1);
        match i.run(1 << 20) {
            Ok(_) | Err(paramecium::sfi::InterpError::OutOfSteps) => {}
            Err(e) => prop_assert!(false, "verified program faulted: {e}"),
        }
    }

    /// Certificates bind to exact bytes: any mutation of a certified image
    /// is detected at validation.
    #[test]
    fn certificate_detects_any_image_mutation(
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let (image, cert) = shared_certificate();
        prop_assert!(cert.matches_image(image));
        let mut mutated = image.clone();
        mutated[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!cert.matches_image(&mutated));
    }
}

/// Shared booted world with an echo service at `/svc/echo` and one app
/// domain, for properties that need to mint fresh proxies per case.
fn shared_proxy_world() -> &'static (std::sync::Arc<Nucleus>, DomainId) {
    static CELL: std::sync::OnceLock<(std::sync::Arc<Nucleus>, DomainId)> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::boot();
        let n = world.nucleus.clone();
        let echo = ObjectBuilder::new("echo")
            .interface("echo", |i| {
                i.variadic_method("echo", |_, args| Ok(Value::List(args.to_vec())))
            })
            .build();
        n.register(KERNEL_DOMAIN, "/svc/echo", echo).unwrap();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        let id = app.id;
        std::mem::forget(world);
        (n, id)
    })
}

/// Shared proxy to an echo service in another domain (built once; boots
/// run RSA key generation, far too slow to repeat per proptest case).
fn shared_echo_proxy() -> &'static ObjRef {
    static CELL: std::sync::OnceLock<ObjRef> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::boot();
        let n = &world.nucleus;
        let echo = ObjectBuilder::new("echo")
            .interface("echo", |i| {
                i.variadic_method("echo", |_, args| Ok(Value::List(args.to_vec())))
            })
            .build();
        n.register(KERNEL_DOMAIN, "/svc/echo", echo).unwrap();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        let proxy = n.bind(app.id, "/svc/echo").unwrap();
        // Keep the world alive for the proxy's lifetime.
        std::mem::forget(world);
        proxy
    })
}

/// Shared (image, certificate) pair, built once.
fn shared_certificate() -> &'static (Vec<u8>, paramecium::cert::Certificate) {
    static CELL: std::sync::OnceLock<(Vec<u8>, paramecium::cert::Certificate)> =
        std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::boot();
        let image: Vec<u8> = (0..64).collect();
        let cert = world
            .root
            .certify(
                "c",
                &image,
                vec![Right::RunKernel],
                paramecium::cert::CertifyMethod::Administrator,
            )
            .unwrap();
        (image, cert)
    })
}
