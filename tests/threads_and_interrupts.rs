//! Integration: device interrupts → event service → pop-up threads →
//! protocol processing. The full "interrupts become threads" pipeline of
//! the paper's event-management section.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use paramecium::machine::dev::nic::{Nic, NIC_IRQ};
use paramecium::machine::trap::IRQ_VECTOR_BASE;
use paramecium::netstack::{install_driver, make_udp_stack, wire};
use paramecium::prelude::*;
use paramecium::threads::popup::PopupFactory;
use paramecium::threads::Channel;

const MY_IP: u32 = 0x0A00_0001;
const MY_MAC: wire::Mac = [2, 0, 0, 0, 0, 1];

#[test]
fn nic_interrupts_drive_popup_pump_threads() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let stack = make_udp_stack(dev, MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();

    let scheduler = Scheduler::new(n.machine().clone());
    let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);

    // Each NIC interrupt pops up a handler that pumps the stack. It never
    // blocks, so every interrupt rides the proto fast path.
    let pumped = Arc::new(AtomicU64::new(0));
    let factory: PopupFactory = {
        let (stack, pumped) = (stack.clone(), pumped.clone());
        Arc::new(move |_trap| {
            let (stack, pumped) = (stack.clone(), pumped.clone());
            Box::new(move |_ctx| {
                let v = stack.invoke("udp", "pump", &[]).expect("pump");
                pumped.fetch_add(v.as_int().unwrap() as u64, Ordering::Relaxed);
                Step::Done
            })
        })
    };
    engine
        .attach(&n.events, IRQ_VECTOR_BASE + NIC_IRQ, KERNEL_DOMAIN, factory)
        .unwrap();

    // Frames arrive in bursts; poll() delivers interrupts.
    for burst in 0..5 {
        {
            let machine = n.machine().clone();
            let mut m = machine.lock();
            let nic = m.device_mut::<Nic>("nic").unwrap();
            for i in 0..4 {
                let frame = wire::build_udp_frame(
                    [9; 6],
                    MY_MAC,
                    0x0A00_0002,
                    MY_IP,
                    1000 + burst,
                    53,
                    &[burst as u8, i as u8],
                );
                nic.inject_rx(frame);
            }
        }
        n.poll(10);
        scheduler.run_until_idle(32);
    }

    assert_eq!(pumped.load(Ordering::Relaxed), 20, "all frames pumped");
    let stats = engine.stats();
    assert!(
        stats.fast_path >= 5,
        "interrupts coalesce but at least one per burst"
    );
    assert_eq!(stats.promotions, 0, "pump never blocks");
    // All datagrams are queued on port 53.
    let mut received = 0;
    loop {
        let d = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        if d.as_list().unwrap().is_empty() {
            break;
        }
        received += 1;
    }
    assert_eq!(received, 20);
}

#[test]
fn blocking_consumer_thread_wakes_on_channel_data_from_interrupts() {
    // Producer: interrupt handlers (proto-threads) push into a channel.
    // Consumer: a regular thread that blocks on the channel.
    let world = World::boot();
    let n = &world.nucleus;
    let machine = n.machine().clone();
    let scheduler = Scheduler::new(machine.clone());
    let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
    let chan: Arc<Channel<u32>> = Channel::new(scheduler.core().clone(), 64);

    let consumed = Arc::new(AtomicU64::new(0));
    {
        let (chan, consumed) = (chan.clone(), consumed.clone());
        scheduler.spawn(
            "consumer",
            Box::new(move |_ctx| match chan.try_recv() {
                Some(v) => {
                    consumed.fetch_add(u64::from(v), Ordering::Relaxed);
                    Step::Yield
                }
                None => Step::Block(chan.waitable()),
            }),
        );
    }

    let factory: PopupFactory = {
        let chan = chan.clone();
        let seq = Arc::new(AtomicU64::new(1));
        Arc::new(move |_trap| {
            let chan = chan.clone();
            let v = seq.fetch_add(1, Ordering::Relaxed) as u32;
            Box::new(move |_ctx| {
                chan.try_send(v);
                Step::Done
            })
        })
    };
    engine
        .attach(
            &n.events,
            paramecium::machine::trap::TrapKind::Breakpoint.vector(),
            KERNEL_DOMAIN,
            factory,
        )
        .unwrap();

    for _ in 0..10 {
        n.events.deliver(
            &machine,
            &paramecium::machine::trap::Trap::exception(
                paramecium::machine::trap::TrapKind::Breakpoint,
            ),
        );
        scheduler.run_until_idle(16);
    }
    // 1+2+…+10 = 55.
    assert_eq!(consumed.load(Ordering::Relaxed), 55);
    assert_eq!(engine.stats().fast_path, 10);
}

#[test]
fn timer_interrupts_preempt_nothing_but_account_time() {
    let world = World::boot();
    let n = &world.nucleus;
    let ticks = Arc::new(AtomicU64::new(0));
    let t = ticks.clone();
    n.events
        .register(
            IRQ_VECTOR_BASE + paramecium::machine::dev::timer::TIMER_IRQ,
            KERNEL_DOMAIN,
            Arc::new(move |_| {
                t.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
    {
        let machine = n.machine().clone();
        let mut m = machine.lock();
        m.io_write("timer", paramecium::machine::dev::timer::regs::PERIOD, 1000)
            .unwrap();
        m.io_write("timer", paramecium::machine::dev::timer::regs::CTRL, 1)
            .unwrap();
    }
    n.poll(10); // Arm.
    for _ in 0..10 {
        n.poll(1000);
    }
    let got = ticks.load(Ordering::Relaxed);
    assert!(
        (8..=12).contains(&got),
        "~10 timer ticks expected, got {got}"
    );
}

#[test]
fn cross_domain_active_messages_pay_the_crossing() {
    // An active message whose handler object lives in another protection
    // domain: the pop-up invocation goes through a proxy, so each message
    // pays the trap + context-switch bill — the placement trade-off again.
    use paramecium::threads::{ActiveMsg, AmEndpoint};

    let world = World::boot();
    let n = &world.nucleus;
    let machine = n.machine().clone();
    let scheduler = Scheduler::new(machine.clone());
    let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
    let endpoint = AmEndpoint::install(&n.events, &engine, machine, 5, KERNEL_DOMAIN, 32).unwrap();

    // The handler lives in a user domain; the kernel-side AM dispatcher
    // imports it through a proxy.
    let app = n
        .create_domain("handler-domain", KERNEL_DOMAIN, [])
        .unwrap();
    let handler = ObjectBuilder::new("handler")
        .state(0i64)
        .interface("h", |i| {
            i.method("on_msg", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let v = args[0].as_int()?;
                this.with_state(|s: &mut i64| {
                    *s += v;
                    Ok(Value::Int(*s))
                })
            })
        })
        .build();
    n.register_shared(app.id, "/app/handler", handler).unwrap();
    let proxy = n.bind(KERNEL_DOMAIN, "/app/handler").unwrap();
    assert!(proxy.class().starts_with("proxy<"));

    let crossings_before = n.proxy_stats().crossings();
    for v in [10i64, 20, 30] {
        endpoint
            .post(ActiveMsg {
                target: proxy.clone(),
                interface: "h".into(),
                method: "on_msg".into(),
                args: vec![Value::Int(v)],
            })
            .unwrap();
    }
    n.events.drain_interrupts(n.machine());
    scheduler.run_until_idle(64);

    let done = endpoint.take_completions();
    assert_eq!(done.len(), 3);
    assert_eq!(done[2].1.as_ref().unwrap(), &Value::Int(60));
    assert_eq!(n.proxy_stats().crossings(), crossings_before + 3);
}

#[test]
fn popup_modes_behave_identically_just_at_different_cost() {
    // Functional equivalence of Proto and Eager under a blocking mix.
    let run = |mode: PopupMode| -> u64 {
        let world = World::boot();
        let n = &world.nucleus;
        let machine = n.machine().clone();
        let scheduler = Scheduler::new(machine.clone());
        let engine = PopupEngine::new(scheduler.clone(), mode);
        let sum = Arc::new(AtomicU64::new(0));
        let factory: PopupFactory = {
            let sum = sum.clone();
            let k = Arc::new(AtomicU64::new(0));
            Arc::new(move |_| {
                let sum = sum.clone();
                let v = k.fetch_add(1, Ordering::Relaxed);
                Box::new(move |ctx| {
                    if ctx.entries == 1 && v.is_multiple_of(3) {
                        return Step::Yield; // Forces promotion in Proto mode.
                    }
                    sum.fetch_add(v, Ordering::Relaxed);
                    Step::Done
                })
            })
        };
        engine
            .attach(
                &n.events,
                paramecium::machine::trap::TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                factory,
            )
            .unwrap();
        for _ in 0..30 {
            n.events.deliver(
                &machine,
                &paramecium::machine::trap::Trap::exception(
                    paramecium::machine::trap::TrapKind::Breakpoint,
                ),
            );
            scheduler.run_until_idle(16);
        }
        sum.load(Ordering::Relaxed)
    };
    let proto = run(PopupMode::Proto);
    let eager = run(PopupMode::Eager);
    assert_eq!(proto, eager, "same work completed under both modes");
    assert_eq!(proto, (0u64..30).sum::<u64>());
}
