//! PR 10 headline drill: a deterministic chaos storm across the whole
//! stack — TCP clients echoing through a two-interface router while a
//! journaled store commits what the server hears — with a seeded
//! [`ChaosPlan`] partitioning a link mid-stream, degrading the other,
//! flapping a route, injecting disk fault windows and finally cutting
//! power, and the paired recovery machinery (retransmission, user
//! timeouts, keepalive, `store::retry`, [`Supervisor`] reboot + journal
//! remount) healing all of it.
//!
//! Invariants, checked inside every run:
//!
//! - **No acked byte is lost or reordered**: every connection that
//!   completes delivers exactly its payload back; an aborted connection
//!   delivers a strict prefix.
//! - **Connections complete or fail cleanly**: every endpoint ends in
//!   `closed` with either no error or a typed abort reason — never a
//!   wedged state, never a panic.
//! - **The recovered store equals the oracle's committed prefix**:
//!   every `write` that returned Ok before the power cut (and after the
//!   reboot) reads back intact from the remounted stack.
//! - **Replay is bit-identical**: the same seed reproduces the same
//!   audit log, digests, stats and outcomes; a different seed diverges.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

use paramecium::chaos::{ChaosController, ChaosPlan, Fault, Supervisor};
use paramecium::core::domain::KERNEL_DOMAIN;
use paramecium::core::memsvc::MemService;
use paramecium::machine::Machine;
use paramecium::netstack::route::{make_router, RouteIf};
use paramecium::netstack::simlink::{make_simlink, LinkConfig};
use paramecium::netstack::tcp::make_tcp;
use paramecium::obj::{ObjRef, Value};
use paramecium::store::{JournalConfig, RetryConfig, StackBuilder, StoreStack};

const SERVER_IP: u32 = 0x0A00_0001; // 10.0.0.1 (router if0, server TCP)
const IF1_IP: u32 = 0x0A01_0001; // 10.1.0.1 (router if1)
const CLIENT_A_IP: u32 = 0x0A00_0002; // 10.0.0.2, behind link0
const CLIENT_B_IP: u32 = 0x0A01_0002; // 10.1.0.2, behind link1
const PORT: i64 = 7;

/// Per-connection payload; 8 store sectors exactly.
const PAYLOAD: usize = 4096;
/// Bytes each client feeds its connection per round — slow enough that
/// every connection still has unacknowledged data when the storm hits.
const DRIBBLE: usize = 128;
/// One pump round advances the clock this much.
const TICK: u64 = 25_000;
const SECTOR: usize = 512;
/// Sector allocation stride per server connection.
const STRIDE: usize = 16;
/// Server-side RFC 5482 user timeout: longer than the partition, so
/// live-but-stalled connections survive to be healed.
const SERVER_UTO: i64 = 3_000_000;
/// Server-side keepalive interval; three unanswered probes abort the
/// orphaned peer of a client that died mid-partition.
const SERVER_KEEPALIVE: i64 = 500_000;
/// The doomed client connection's user timeout — fires mid-partition.
const SHORT_UTO: i64 = 700_000;
const MAX_ROUNDS: usize = 1_000;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    if h == 0 {
        h = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tcp_int(obj: &ObjRef, method: &str, args: &[Value]) -> i64 {
    obj.invoke("tcp", method, args).unwrap().as_int().unwrap()
}

fn conn_state(obj: &ObjRef, id: i64) -> String {
    let v = obj.invoke("tcp", "state", &[Value::Int(id)]).unwrap();
    v.as_str().unwrap().to_string()
}

fn conn_error(obj: &ObjRef, id: i64) -> String {
    let v = obj.invoke("tcp", "error", &[Value::Int(id)]).unwrap();
    v.as_str().unwrap().to_string()
}

fn stats_of(obj: &ObjRef, iface: &str) -> Vec<i64> {
    obj.invoke(iface, "stats", &[])
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

/// Everything a drill run produces; `PartialEq` so two runs of the same
/// seed can be compared wholesale.
#[derive(Debug, PartialEq)]
struct Report {
    rounds: usize,
    audit: Vec<String>,
    audit_digest: u64,
    reboots: u64,
    /// Per client connection: (state, error, echoed byte count).
    outcomes: Vec<(String, String, usize)>,
    stats_a: Vec<i64>,
    stats_b: Vec<i64>,
    stats_server: Vec<i64>,
    route_stats: Vec<i64>,
    oracle_sectors: usize,
    store_digest: u64,
}

/// One client-side connection under drill.
struct Client {
    tcp: ObjRef,
    id: i64,
    payload: Vec<u8>,
    sent: usize,
    echo: Vec<u8>,
    closed: bool,
}

/// One server-side (accepted) connection: received bytes and how many
/// complete sectors of them have been committed to the store.
struct Served {
    id: i64,
    rx: Vec<u8>,
    written: usize,
}

fn run_drill(seed: u64) -> Report {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mem = Arc::new(MemService::new(machine.clone()));

    // Wires: perfect links whose knobs the chaos plan will mangle.
    let (near0, far0) = make_simlink(machine.clone(), LinkConfig::perfect(seed));
    let (near1, far1) = make_simlink(machine.clone(), LinkConfig::perfect(seed ^ 0x9e37));
    let router = make_router(vec![
        RouteIf {
            dev: near0.clone(),
            ip: SERVER_IP,
            mac: [2, 0, 0, 0, 0, 0x01],
        },
        RouteIf {
            dev: near1.clone(),
            ip: IF1_IP,
            mac: [2, 0, 0, 0, 0, 0x02],
        },
    ]);
    for (prefix, ifindex) in [(0x0A00_0000u32, 0i64), (0x0A01_0000, 1)] {
        router
            .invoke(
                "route",
                "add_route",
                &[
                    Value::Int(i64::from(prefix)),
                    Value::Int(24),
                    Value::Int(ifindex),
                ],
            )
            .unwrap();
    }

    let server = make_tcp(
        machine.clone(),
        router.clone(),
        SERVER_IP,
        [2, 0, 0, 0, 0, 0x51],
    );
    let tcp_a = make_tcp(
        machine.clone(),
        far0.clone(),
        CLIENT_A_IP,
        [2, 0, 0, 0, 0, 0xA1],
    );
    let tcp_b = make_tcp(
        machine.clone(),
        far1.clone(),
        CLIENT_B_IP,
        [2, 0, 0, 0, 0, 0xB1],
    );
    server.invoke("tcp", "listen", &[Value::Int(PORT)]).unwrap();

    // Store half: driver → retry → journal, plus the supervisor that
    // rebuilds it after the power cut.
    let retry = RetryConfig::default();
    let journal = JournalConfig::default();
    let mut stack: StoreStack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .retry(retry)
        .journal(journal)
        .build()
        .unwrap();
    let mut sup = Supervisor::new(&mem, KERNEL_DOMAIN, retry, journal);

    // Chaos targets.
    let mut ctl = ChaosController::new(machine.clone());
    let link0 = ctl.register_link(near0, far0);
    let link1 = ctl.register_link(near1, far1);
    let rt = ctl.register_router(router.clone());

    // Seeded inputs: event jitter first, then payload bytes, so the RNG
    // stream is consumed in a fixed order.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jit = [0u64; 9];
    for j in jit.iter_mut() {
        *j = rng.gen_range(0..50_000);
    }
    let mut clients: Vec<Client> = Vec::new();
    for (tcp, n) in [(&tcp_a, 2usize), (&tcp_b, 2)] {
        for _ in 0..n {
            let mut payload = vec![0u8; PAYLOAD];
            rng.fill(payload.as_mut_slice());
            let id = tcp_int(
                tcp,
                "connect",
                &[Value::Int(i64::from(SERVER_IP)), Value::Int(PORT)],
            );
            clients.push(Client {
                tcp: tcp.clone(),
                id,
                payload,
                sent: 0,
                echo: Vec::new(),
                closed: false,
            });
        }
    }
    // Client 3 (second connection from B) is doomed: its user timeout is
    // shorter than the partition it is about to sit through.
    clients[3]
        .tcp
        .invoke(
            "tcp",
            "set_user_timeout",
            &[Value::Int(clients[3].id), Value::Int(SHORT_UTO)],
        )
        .unwrap();

    // Let the handshakes complete on pristine wires.
    for _ in 0..16 {
        for t in [&tcp_a, &tcp_b, &server] {
            t.invoke("tcp", "pump", &[]).unwrap();
        }
        machine.lock().tick(TICK);
    }

    // The storm, anchored at "now": degrade A's uplink, partition B,
    // flap B's route, pepper the disk, cut power, then heal everything.
    let t0 = machine.lock().now();
    ctl.arm(
        ChaosPlan::new()
            .at(
                t0 + 100_000 + jit[0],
                Fault::Impair {
                    link: link0,
                    dir: 1, // client A → router
                    drop_permille: 120,
                    dup_permille: 50,
                    reorder_permille: 80,
                    corrupt_permille: 30,
                },
            )
            .at(t0 + 400_000 + jit[1], Fault::Partition { link: link1 })
            .at(
                t0 + 550_000 + jit[2],
                Fault::RouteDel {
                    router: rt,
                    prefix: 0x0A01_0000,
                    len: 24,
                },
            )
            .at(
                t0 + 700_000 + jit[3],
                Fault::DiskTransientErrors {
                    disk: "disk".into(),
                    count: 3,
                },
            )
            .at(
                t0 + 850_000 + jit[4],
                Fault::DiskLatency {
                    disk: "disk".into(),
                    extra: 20_000,
                    ops: 4,
                },
            )
            .at(
                t0 + 1_000_000 + jit[5],
                Fault::PowerCrash { after_charges: 1 },
            )
            .at(
                t0 + 1_250_000 + jit[6],
                Fault::RouteAdd {
                    router: rt,
                    prefix: 0x0A01_0000,
                    len: 24,
                    ifindex: 1,
                },
            )
            .at(t0 + 1_600_000 + jit[7], Fault::Heal { link: link1 })
            .at(t0 + 1_800_000 + jit[8], Fault::Heal { link: link0 }),
    );

    // The drill loop. Every round: apply due faults, recover a crashed
    // machine, pump everyone, echo + journal, advance the clock.
    let mut served: Vec<Served> = Vec::new();
    let mut oracle: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
    let mut rounds = 0;
    for round in 0..MAX_ROUNDS {
        rounds = round + 1;
        ctl.poll().unwrap();
        if let Some(fresh) = sup.ensure_up().unwrap() {
            stack = fresh;
        }

        for c in clients.iter_mut() {
            if c.sent < c.payload.len() && conn_state(&c.tcp, c.id) != "closed" {
                let take = DRIBBLE.min(c.payload.len() - c.sent);
                let chunk = Bytes::copy_from_slice(&c.payload[c.sent..c.sent + take]);
                if let Ok(v) = c
                    .tcp
                    .invoke("tcp", "send", &[Value::Int(c.id), Value::Bytes(chunk)])
                {
                    c.sent += v.as_int().unwrap() as usize;
                }
            }
            c.tcp.invoke("tcp", "pump", &[]).unwrap();
            let got = c
                .tcp
                .invoke("tcp", "recv", &[Value::Int(c.id), Value::Int(65_536)])
                .unwrap();
            c.echo.extend_from_slice(got.as_bytes().unwrap());
            if c.echo.len() == PAYLOAD && !c.closed {
                c.tcp.invoke("tcp", "close", &[Value::Int(c.id)]).unwrap();
                c.closed = true;
            }
        }

        server.invoke("tcp", "pump", &[]).unwrap();
        loop {
            let id = tcp_int(&server, "accept", &[Value::Int(PORT)]);
            if id < 0 {
                break;
            }
            server
                .invoke(
                    "tcp",
                    "set_user_timeout",
                    &[Value::Int(id), Value::Int(SERVER_UTO)],
                )
                .unwrap();
            server
                .invoke(
                    "tcp",
                    "set_keepalive",
                    &[Value::Int(id), Value::Int(SERVER_KEEPALIVE)],
                )
                .unwrap();
            served.push(Served {
                id,
                rx: Vec::new(),
                written: 0,
            });
        }
        for (i, s) in served.iter_mut().enumerate() {
            let got = server
                .invoke("tcp", "recv", &[Value::Int(s.id), Value::Int(65_536)])
                .unwrap();
            let got = got.as_bytes().unwrap();
            if !got.is_empty() {
                // Echo; refusals (the peer died) are the peer's problem.
                let _ = server.invoke(
                    "tcp",
                    "send",
                    &[Value::Int(s.id), Value::Bytes(got.clone())],
                );
                s.rx.extend_from_slice(got);
            }
            // Commit every complete sector. A write that returns Ok is
            // durable (journaled) and enters the oracle; a failed write
            // is retried next round — possibly on the rebuilt stack.
            while s.rx.len() >= (s.written + 1) * SECTOR && !machine.lock().crashed() {
                let sec = (i * STRIDE + s.written) as i64;
                let chunk = &s.rx[s.written * SECTOR..(s.written + 1) * SECTOR];
                match stack.top.invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), Value::Bytes(Bytes::copy_from_slice(chunk))],
                ) {
                    Ok(_) => {
                        oracle.insert(sec, chunk.to_vec());
                        s.written += 1;
                    }
                    Err(_) => break,
                }
            }
            if conn_state(&server, s.id) == "close-wait" {
                server.invoke("tcp", "close", &[Value::Int(s.id)]).unwrap();
            }
        }
        // Background scrub: one charged store read per healthy round,
        // so an armed power crash always fires promptly.
        let _ = stack.top.invoke("blockdev", "read", &[Value::Int(4_000)]);
        server.invoke("tcp", "pump", &[]).unwrap();
        machine.lock().tick(TICK);

        let quiet = clients.iter().all(|c| conn_state(&c.tcp, c.id) == "closed")
            && served.len() == clients.len()
            && served.iter().all(|s| conn_state(&server, s.id) == "closed");
        if quiet {
            break;
        }
    }

    // ---- In-run invariants ----------------------------------------
    assert!(rounds < MAX_ROUNDS, "drill failed to quiesce");
    assert_eq!(ctl.pending(), 0, "every planned fault applied");
    assert_eq!(ctl.audit().len(), 9);
    assert_eq!(sup.reboots(), 1, "the power cut forced exactly one reboot");

    // Connections completed or failed cleanly.
    let outcomes: Vec<(String, String, usize)> = clients
        .iter()
        .map(|c| {
            (
                conn_state(&c.tcp, c.id),
                conn_error(&c.tcp, c.id),
                c.echo.len(),
            )
        })
        .collect();
    for (i, c) in clients.iter().enumerate() {
        let err = &outcomes[i].1;
        if err.is_empty() {
            assert_eq!(c.echo, c.payload, "conn {i}: acked bytes echoed intact");
        } else {
            assert_eq!(err, "user-timeout", "conn {i}: typed abort reason");
            assert!(
                c.payload.starts_with(&c.echo),
                "conn {i}: aborted mid-stream but never corrupted"
            );
        }
    }
    assert_eq!(
        outcomes.iter().filter(|o| o.1.is_empty()).count(),
        3,
        "three connections ride out the storm"
    );
    assert_eq!(outcomes[3].1, "user-timeout", "the doomed one dies cleanly");
    for s in &served {
        let err = conn_error(&server, s.id);
        assert!(
            err.is_empty() || err == "keepalive-timeout" || err == "user-timeout",
            "server conn ended dirty: {err:?}"
        );
        assert_eq!(s.written, s.rx.len() / SECTOR, "all heard data committed");
    }

    // The recovered store equals the oracle's committed prefix.
    stack.top.invoke("blockdev", "flush", &[]).unwrap();
    let mut store_digest = 0u64;
    for (&sec, expect) in &oracle {
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(sec)])
            .unwrap();
        assert_eq!(
            v.as_bytes().unwrap().as_ref(),
            expect.as_slice(),
            "sector {sec} lost or corrupted across the power cut"
        );
        store_digest = fnv(store_digest, &sec.to_le_bytes());
        store_digest = fnv(store_digest, expect);
    }
    assert!(
        oracle.len() >= 3 * (PAYLOAD / SECTOR),
        "completed connections were fully committed"
    );

    let route_stats = stats_of(&router, "route");
    assert!(
        route_stats[2] > 0,
        "route flap blackholed traffic (no_route)"
    );
    let stats_server = stats_of(&server, "tcp");
    assert!(stats_server[4] > 0, "the storm forced retransmissions");

    Report {
        rounds,
        audit: ctl.audit().to_vec(),
        audit_digest: ctl.audit_digest(),
        reboots: sup.reboots(),
        outcomes,
        stats_a: stats_of(&tcp_a, "tcp"),
        stats_b: stats_of(&tcp_b, "tcp"),
        stats_server,
        route_stats,
        oracle_sectors: oracle.len(),
        store_digest,
    }
}

#[test]
fn chaos_storm_heals_and_loses_nothing() {
    let r = run_drill(7);
    // The structural assertions live inside run_drill; spot-check the
    // shape of the report here.
    assert_eq!(r.reboots, 1);
    assert_eq!(r.audit.len(), 9);
    assert!(r.oracle_sectors >= 24 && r.oracle_sectors <= 32);
}

#[test]
fn chaos_drill_replays_bit_identically() {
    let first = run_drill(11);
    let second = run_drill(11);
    assert_eq!(first, second, "same seed, same drill, bit for bit");
}

#[test]
fn different_seeds_produce_different_storms() {
    let a = run_drill(11);
    let b = run_drill(12);
    assert_ne!(a.audit_digest, b.audit_digest, "jitter differs");
    assert_ne!(a.store_digest, b.store_digest, "payloads differ");
}
