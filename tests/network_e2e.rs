//! Integration: the full network scenario — driver, stack, filters,
//! interposition, placement.

use paramecium::netstack::{
    filter::{adapt_bytecode_filter, udp_port_filter_program},
    install_driver, make_network_monitor, make_udp_stack,
    testkit::{self, MY_IP, MY_MAC, PEER_IP, PEER_PORT},
    wire,
};
use paramecium::prelude::*;

fn inject_udp(n: &paramecium::core::Nucleus, dst_port: u16, payload: &[u8]) {
    testkit::inject_udp(n.machine(), dst_port, payload);
}

#[test]
fn udp_echo_end_to_end() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let stack = make_udp_stack(dev, MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(7)]).unwrap();

    inject_udp(n, 7, b"ping");
    stack.invoke("udp", "pump", &[]).unwrap();
    let d = stack.invoke("udp", "recv_from", &[Value::Int(7)]).unwrap();
    let items = d.as_list().unwrap().to_vec();
    assert_eq!(items[2].as_bytes().unwrap().as_ref(), b"ping");

    // Echo it back; the reply appears on the wire, parseable.
    stack
        .invoke(
            "udp",
            "send_to",
            &[
                items[0].clone(),
                items[1].clone(),
                Value::Int(7),
                items[2].clone(),
            ],
        )
        .unwrap();
    let reply = testkit::tx_take(n.machine()).expect("echo reply transmitted");
    let (ip, udp, payload) = wire::parse_udp_frame(&reply).unwrap();
    assert_eq!(ip.dst, PEER_IP);
    assert_eq!(udp.dst_port, PEER_PORT);
    assert_eq!(payload, b"ping");
}

#[test]
fn certified_bytecode_filter_in_kernel_filters_packets() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let stack = make_udp_stack(dev, MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
    stack.invoke("udp", "bind", &[Value::Int(80)]).unwrap();

    // Download, certify (compiler: it is verifiable) and load the filter.
    n.repository
        .add_bytecode("dns-only", &udp_port_filter_program(53));
    assert_eq!(world.certify("dns-only", &[Right::RunKernel]).unwrap(), 0);
    let report = n
        .load(
            "dns-only",
            &LoadOptions::kernel("/kernel/dns-only").strict(),
        )
        .unwrap();
    assert_eq!(report.protection, Protection::CertifiedNative);
    let filter = adapt_bytecode_filter(n.bind(KERNEL_DOMAIN, "/kernel/dns-only").unwrap());
    stack
        .invoke("udp", "set_filter", &[Value::Handle(filter)])
        .unwrap();

    inject_udp(n, 53, b"dns");
    inject_udp(n, 80, b"http");
    inject_udp(n, 53, b"dns2");
    stack.invoke("udp", "pump", &[]).unwrap();
    let stats = stack.invoke("udp", "stats", &[]).unwrap();
    let s = stats.as_list().unwrap().to_vec();
    assert_eq!(s[0], Value::Int(2), "two DNS packets delivered");
    assert_eq!(s[2], Value::Int(1), "one HTTP packet filtered");
}

#[test]
fn user_domain_filter_works_through_proxy_and_costs_more() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();

    let run = |user_placed: bool| -> (u64, u64) {
        let world = World::boot();
        let n = &world.nucleus;
        install_driver(n, KERNEL_DOMAIN).unwrap();
        let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
        let stack = make_udp_stack(dev, MY_IP, MY_MAC);
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
        let filter = if user_placed {
            let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
            let f = paramecium::netstack::make_native_port_filter(53);
            n.register_shared(app.id, "/app/filter", f).unwrap();
            n.bind(KERNEL_DOMAIN, "/app/filter").unwrap()
        } else {
            let f = paramecium::netstack::make_native_port_filter(53);
            n.register(KERNEL_DOMAIN, "/kernel/filter", f).unwrap();
            n.bind(KERNEL_DOMAIN, "/kernel/filter").unwrap()
        };
        stack
            .invoke("udp", "set_filter", &[Value::Handle(filter)])
            .unwrap();
        for _ in 0..20 {
            inject_udp(n, 53, b"x");
        }
        let t0 = n.now();
        stack.invoke("udp", "pump", &[]).unwrap();
        let cost = n.now() - t0;
        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        let delivered = stats.as_list().unwrap()[0].as_int().unwrap() as u64;
        (cost, delivered)
    };

    let (kernel_cost, kd) = run(false);
    let (user_cost, ud) = run(true);
    assert_eq!(kd, 20);
    assert_eq!(ud, 20, "user-placed filter must still work");
    assert!(
        user_cost > kernel_cost * 2,
        "cross-domain filtering ({user_cost}) should dwarf in-kernel ({kernel_cost})"
    );
}

#[test]
fn interposed_monitor_sees_traffic_of_existing_and_new_clients() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();

    // Interpose.
    let target = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let (agent, stats) = make_network_monitor(target);
    let old = n
        .interpose(KERNEL_DOMAIN, "/shared/network", agent)
        .unwrap();
    assert_eq!(old.class(), "nic-driver");

    // A stack built after interposition.
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    assert_eq!(dev.class(), "netmon-agent");
    let stack = make_udp_stack(dev, MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(9)]).unwrap();
    inject_udp(n, 9, b"observed");
    stack.invoke("udp", "pump", &[]).unwrap();

    use std::sync::atomic::Ordering;
    assert_eq!(stats.rx_frames.load(Ordering::Relaxed), 1);
    assert!(stats.rx_bytes.load(Ordering::Relaxed) > 42);

    // De-interpose: put the original driver back; traffic is no longer
    // counted.
    n.interpose(KERNEL_DOMAIN, "/shared/network", old).unwrap();
    let dev2 = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    assert_eq!(dev2.class(), "nic-driver");
    let stack2 = make_udp_stack(dev2, MY_IP, MY_MAC);
    stack2.invoke("udp", "bind", &[Value::Int(9)]).unwrap();
    inject_udp(n, 9, b"unobserved");
    stack2.invoke("udp", "pump", &[]).unwrap();
    assert_eq!(stats.rx_frames.load(Ordering::Relaxed), 1);
}

#[test]
fn driver_stats_remain_consistent_under_mixed_traffic() {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let stack = make_udp_stack(dev.clone(), MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(1)]).unwrap();

    let total = 50usize;
    for i in 0..total {
        inject_udp(n, if i % 2 == 0 { 1 } else { 2 }, &vec![i as u8; 10 + i]);
    }
    stack.invoke("udp", "pump", &[]).unwrap();
    let dstats = dev.invoke("netdev", "stats", &[]).unwrap();
    let d = dstats.as_list().unwrap().to_vec();
    assert_eq!(d[0], Value::Int(total as i64), "all frames received");
    let sstats = stack.invoke("udp", "stats", &[]).unwrap();
    let s = sstats.as_list().unwrap().to_vec();
    // Half delivered (port 1), half with no listener (port 2).
    assert_eq!(s[0], Value::Int(25));
    assert_eq!(s[1], Value::Int(25));
}
