//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()`,
//! `read()` and `write()` return guards directly (no `Result`), and a
//! panicked holder does not poison the lock for everyone else.

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
