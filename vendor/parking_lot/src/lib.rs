//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()`,
//! `read()` and `write()` return guards directly (no `Result`), and a
//! panicked holder does not poison the lock for everyone else.

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// Result of a timed [`Condvar::wait_for`]: whether the wait gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's in-place-guard API: `wait`
/// takes `&mut MutexGuard` instead of consuming and returning it, and a
/// poisoned mutex never surfaces as an error.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and blocks until notified,
    /// reacquiring the lock before returning. As with any condition
    /// variable, spurious wakeups are possible — callers re-check their
    /// predicate in a loop (or use [`Condvar::wait_while`]).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.requeue(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until `condition` returns false (re-checked on every
    /// wakeup), reacquiring the lock before returning.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Blocks until notified or `timeout` elapses. Returns whether the
    /// wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.requeue(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Runs a consuming std wait through a `&mut` guard slot. std's wait
    /// takes the guard by value; parking_lot's mutates it in place. The
    /// move-out/move-in is sound because `f` (a std condvar wait) returns
    /// a live guard for the same mutex and only panics on a poisoned
    /// lock, which `PoisonError::into_inner` already absorbs.
    fn requeue<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        // Safety: `guard` is forgotten (not dropped) by the `ptr::read`
        // move; `f` returns the reacquired guard which is written back to
        // the same slot, so exactly one guard is live throughout.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = f(owned);
            std::ptr::write(guard, reacquired);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_blocked_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p;
            let mut ready = lock.lock();
            cv.wait_while(&mut ready, |r| !*r);
            assert!(*ready, "woke with the predicate satisfied");
        });
        // Let the waiter park, then flip the flag and notify.
        std::thread::sleep(Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_reacquires_the_same_mutex() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p;
            let mut n = lock.lock();
            while *n < 3 {
                cv.wait(&mut n);
            }
            // The guard still protects the same data after re-parking.
            *n += 100;
        });
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(5));
            let (lock, cv) = &*pair;
            *lock.lock() += 1;
            cv.notify_all();
        }
        h.join().unwrap();
        assert_eq!(*pair.0.lock(), 103);
    }

    #[test]
    fn condvar_wait_for_times_out_without_notification() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        // The guard is still usable (lock reacquired).
        drop(g);
        assert!(lock.try_lock().is_some());
    }
}
