//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the real `bytes` API the workspace uses: an
//! immutable, cheaply clonable byte buffer. Like the real crate, a
//! `Bytes` is a *view* — `clone` bumps a refcount and [`Bytes::slice`]
//! narrows the view without copying — so protocol stacks can carve
//! payloads out of received frames allocation-free.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory: a refcounted
/// buffer plus the window of it this value exposes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (this implementation copies into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a narrowed view of self for the provided range — shares
    /// the backing buffer, no copy.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_arc(Arc::from(s.as_bytes()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(b))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.as_slice() == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.slice(1..).to_vec(), vec![2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }

    #[test]
    fn slice_shares_the_backing_buffer() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let view = b.slice(2..6);
        assert_eq!(&view[..], &[2, 3, 4, 5]);
        // Same allocation: the view's first byte lives inside b's range.
        let base = b.as_slice().as_ptr() as usize;
        let vp = view.as_slice().as_ptr() as usize;
        assert_eq!(vp, base + 2);
        // Nested slices compose offsets.
        let inner = view.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_slice().as_ptr() as usize, base + 3);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_out_of_range_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(2..5);
    }
}
