//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the real `bytes` API the workspace uses: an
//! immutable, cheaply clonable byte buffer backed by an `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (this implementation copies into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a slice of self for the provided range.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Arc::from(b))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.0[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.0[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0[..] == **other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.slice(1..).to_vec(), vec![2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
