//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!` —
//! with a simple calibrated wall-clock measurement loop instead of
//! Criterion's statistical machinery. Reported numbers are mean ns/iter.
//!
//! Besides the human-readable console lines, each bench run writes its
//! results as `BENCH_<target>.json` (per-benchmark mean ns) into the
//! directory named by the `BENCH_JSON_DIR` environment variable, or the
//! working directory when unset — the machine-readable record CI archives
//! to track the perf trajectory.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards extra CLI args (e.g. `--bench`, a name
        // filter). The first non-flag argument is treated as a substring
        // filter, everything else is ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 60,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Configures and runs a single benchmark (top-level convenience).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifies a benchmark within a group by function name and parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

/// Throughput annotation for a benchmark (bytes or elements per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Ties the group to its parent Criterion like the real API does.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time hint (accepted, loosely honoured).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time hint (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            mean_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&full, b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (formatting no-op in this implementation).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs long
        // enough for the clock to resolve.
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        // Measurement: a handful of samples at the calibrated count, scaled
        // down so total time stays bounded for slow routines. The reported
        // figure is the *median* of the per-sample means: timer noise and
        // scheduling interference are strictly additive, so the median is
        // a far more stable estimate than the overall mean a single
        // preempted sample can poison.
        let samples = self.sample_size.clamp(1, 10) as u64;
        let mut per_sample = Vec::with_capacity(samples as usize);
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            per_sample.push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
            total += elapsed;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        per_sample.sort_by(|a, b| a.total_cmp(b));
        self.mean_ns = per_sample[per_sample.len() / 2];
    }

    /// `iter_with_large_drop` — same as [`Bencher::iter`] here.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine)
    }
}

/// Process-wide record of `(benchmark id, mean ns)` results, flushed to a
/// JSON file when the driving [`Criterion`] is dropped.
fn results() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // Flushing during unit tests of this crate itself would litter the
        // tree with junk JSON; bench binaries are never built `cfg(test)`.
        #[cfg(not(test))]
        write_json_results();
    }
}

/// Writes `BENCH_<target>.json` with every recorded result. The target
/// name is recovered from the bench executable (Cargo names those
/// `<target>-<metadata hash>`).
#[cfg_attr(test, allow(dead_code))]
fn write_json_results() {
    let results = results().lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let exe = std::env::current_exe().unwrap_or_default();
    let stem = exe.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    // Strip Cargo's trailing `-<16 hex>` disambiguation hash, if present.
    let target = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    };
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"target\": \"{target}\",\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, (id, mean_ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {mean_ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("{dir}/BENCH_{target}.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion: could not write {path}: {e}");
    }
}

fn report(id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    results()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id.to_owned(), mean_ns));
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let mibs = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("{id:<50} {time:>12}/iter  {mibs:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let eps = n as f64 / (mean_ns / 1e9);
            println!("{id:<50} {time:>12}/iter  {eps:>10.0} elem/s");
        }
        _ => println!("{id:<50} {time:>12}/iter"),
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
        // Results are recorded for the JSON flush (mean time of a no-op
        // iteration can legitimately calibrate to ~0, so only presence and
        // non-negativity are asserted).
        let recorded = results().lock().unwrap();
        assert!(recorded.iter().any(|(id, _)| id == "g/noop"));
        assert!(recorded.iter().any(|(id, _)| id == "g/param/3"));
        assert!(recorded.iter().all(|(_, ns)| *ns >= 0.0));
    }
}
