//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!` —
//! with a simple calibrated wall-clock measurement loop instead of
//! Criterion's statistical machinery. Reported numbers are mean ns/iter.
//!
//! Besides the human-readable console lines, each bench run writes its
//! results as `BENCH_<target>.json` (per-benchmark mean ns, plus
//! throughput in ops/sec or bytes/sec when annotated) into the directory
//! named by the `BENCH_JSON_DIR` environment variable, or the working
//! directory when unset — the machine-readable record CI archives to
//! track the perf trajectory.
//!
//! Passing `--baseline <file>` (after `cargo bench ... --`) loads a
//! previously recorded `BENCH_*.json` and prints per-benchmark deltas at
//! the end of the run, so perf regressions are visible directly in CI
//! logs instead of requiring artifact archaeology.
//!
//! Passing `--gate <pct>` alongside `--baseline` turns the comparison
//! into a hard regression gate: if a benchmark regresses more than `pct`
//! percent over the baseline, the process exits nonzero after printing
//! the offenders. A benchmark violates the gate only when **both** of
//! its estimators regress beyond the bound: the *minimum-noise estimate*
//! (the fastest sample, `min_ns`, compared against the baseline's
//! `min_ns` — or its recorded median for records predating the field)
//! *and* the median. The two flake in opposite directions — scheduling
//! interference is strictly additive, so transient contention that
//! poisons the median leaves the minimum intact; conversely, a workload
//! whose fastest mode is intermittent (allocator reuse, cache luck) can
//! miss it for a whole run and report an inflated min while its median
//! sits rock-steady. A genuine regression inflates both, so requiring
//! both keeps the gate flake-resistant from either side without letting
//! real slowdowns through. The printed deltas still use the median. The
//! threshold should match the measured noise envelope of the runner
//! (this repo documents ±15 % for single-vCPU CI runners in
//! `bench-records/README.md`).

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards extra CLI args (e.g. `--bench`, a name
        // filter). `--baseline <file>` selects a recorded JSON to diff
        // against; the first other non-flag argument is treated as a
        // substring filter; everything else is ignored.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--baseline" {
                if let Some(path) = args.next() {
                    let _ = baseline_path().set(path);
                }
            } else if let Some(path) = a.strip_prefix("--baseline=") {
                let _ = baseline_path().set(path.to_owned());
            } else if a == "--gate" {
                if let Some(pct) = args.next().and_then(|p| p.parse::<f64>().ok()) {
                    let _ = gate_pct().set(pct);
                }
            } else if let Some(pct) = a
                .strip_prefix("--gate=")
                .and_then(|p| p.parse::<f64>().ok())
            {
                let _ = gate_pct().set(pct);
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 60,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Configures and runs a single benchmark (top-level convenience).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Identifies a benchmark within a group by function name and parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

/// Throughput annotation for a benchmark (bytes or elements per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Ties the group to its parent Criterion like the real API does.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time hint (accepted, loosely honoured).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time hint (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&full, b.mean_ns, b.min_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (formatting no-op in this implementation).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    mean_ns: f64,
    min_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs long
        // enough for the clock to resolve AND for the sample set to span
        // tens of milliseconds of wall time — samples crammed into a
        // single ~10 ms window all land inside the same scheduler burst,
        // which defeats the min/median noise rejection below.
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 22 {
                break;
            }
            iters *= 4;
        }
        // Measurement: a handful of samples at the calibrated count, scaled
        // down so total time stays bounded for slow routines. The reported
        // figure is the *median* of the per-sample means: timer noise and
        // scheduling interference are strictly additive, so the median is
        // a far more stable estimate than the overall mean a single
        // preempted sample can poison.
        let samples = self.sample_size.clamp(1, 10) as u64;
        let mut per_sample = Vec::with_capacity(samples as usize);
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            per_sample.push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
            total += elapsed;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        per_sample.sort_by(|a, b| a.total_cmp(b));
        self.mean_ns = per_sample[per_sample.len() / 2];
        self.min_ns = per_sample[0];
    }

    /// Like [`Bencher::iter`], but the routine's outputs are collected
    /// and dropped *outside* the timed region — matching the real
    /// criterion's semantics, where disposal of a large return value is
    /// the caller's cost, not the benchmark's.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration (outputs dropped eagerly — only the count matters).
        // Unlike `iter`, the per-sample floor stays at 1 ms: every
        // output of a sample is held live until the sample ends, so the
        // batch size is part of the measured quantity — a 10 ms batch
        // holds ~10× the outputs and measures allocator/cache pressure
        // the real workload never sees.
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let samples = self.sample_size.clamp(1, 10) as u64;
        let mut per_sample = Vec::with_capacity(samples as usize);
        let mut total = Duration::ZERO;
        let mut held: Vec<O> = Vec::with_capacity(iters as usize);
        for _ in 0..samples {
            held.clear();
            let start = Instant::now();
            for _ in 0..iters {
                held.push(routine());
            }
            let elapsed = start.elapsed();
            black_box(&held);
            per_sample.push(elapsed.as_nanos() as f64 / iters.max(1) as f64);
            total += elapsed;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        per_sample.sort_by(|a, b| a.total_cmp(b));
        self.mean_ns = per_sample[per_sample.len() / 2];
        self.min_ns = per_sample[0];
    }
}

/// One recorded result: `(benchmark id, median ns, min ns, throughput)`.
type BenchResult = (String, f64, f64, Option<Throughput>);

/// Process-wide record of results, flushed to a JSON file when the
/// driving [`Criterion`] is dropped.
fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The `--baseline <file>` argument, if given.
fn baseline_path() -> &'static OnceLock<String> {
    static BASELINE: OnceLock<String> = OnceLock::new();
    &BASELINE
}

/// The `--gate <pct>` argument, if given.
fn gate_pct() -> &'static OnceLock<f64> {
    static GATE: OnceLock<f64> = OnceLock::new();
    &GATE
}

/// Benchmarks whose result regressed more than `pct` percent over the
/// baseline: `(id, delta_pct)` pairs. Benchmarks missing from either side
/// never violate the gate (new benchmarks must not fail CI, and a stale
/// baseline entry has nothing to compare against).
fn gate_violations(
    results: &[(String, f64)],
    baseline: &[(String, f64)],
    pct: f64,
) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (id, mean_ns) in results {
        if let Some((_, base_ns)) = baseline.iter().find(|(bid, _)| bid == id) {
            if *base_ns > 0.0 {
                let delta = (mean_ns - base_ns) / base_ns * 100.0;
                if delta > pct {
                    out.push((id.clone(), delta));
                }
            }
        }
    }
    out
}

/// The full gate: benchmarks that regressed beyond `pct` on **both** the
/// minimum-noise estimate and the median. `results` carries
/// `(id, median_ns, min_ns)` from the current run; `baseline` carries
/// `(id, median_ns, Option<min_ns>)` as parsed from the record (the min
/// side falls back to the recorded median for pre-`min_ns` baselines —
/// the conservative direction: min-vs-median only passes more easily).
/// The reported delta is the smaller of the two — the estimator closest
/// to passing, i.e. the binding one.
fn gated_regressions(
    results: &[(String, f64, f64)],
    baseline: &[(String, f64, Option<f64>)],
    pct: f64,
) -> Vec<(String, f64)> {
    let med: Vec<(String, f64)> = results.iter().map(|(id, m, _)| (id.clone(), *m)).collect();
    let min: Vec<(String, f64)> = results.iter().map(|(id, _, n)| (id.clone(), *n)).collect();
    let base_med: Vec<(String, f64)> = baseline.iter().map(|(id, m, _)| (id.clone(), *m)).collect();
    let base_min: Vec<(String, f64)> = baseline
        .iter()
        .map(|(id, m, n)| (id.clone(), n.unwrap_or(*m)))
        .collect();
    let med_violations = gate_violations(&med, &base_med, pct);
    let min_violations = gate_violations(&min, &base_min, pct);
    min_violations
        .into_iter()
        .filter_map(|(id, min_delta)| {
            let (_, med_delta) = med_violations.iter().find(|(mid, _)| *mid == id)?;
            Some((id, min_delta.min(*med_delta)))
        })
        .collect()
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // Flushing during unit tests of this crate itself would litter the
        // tree with junk JSON; bench binaries are never built `cfg(test)`.
        #[cfg(not(test))]
        {
            write_json_results();
            compare_with_baseline();
        }
    }
}

/// Parses the subset of JSON this crate itself emits: an object with a
/// `benchmarks` array of `{"id": ..., "mean_ns": ..., "min_ns": ...}`
/// entries. Returns `(id, mean_ns, Option<min_ns>)` triples (`min_ns` is
/// absent in records predating the field); unknown fields are ignored.
fn parse_baseline_json(text: &str) -> Vec<(String, f64, Option<f64>)> {
    fn leading_number(s: &str) -> Option<f64> {
        s.trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect::<String>()
            .parse::<f64>()
            .ok()
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("\"id\":") {
        rest = &rest[start + 5..];
        let Some(q0) = rest.find('"') else { break };
        let Some(q1) = rest[q0 + 1..].find('"') else {
            break;
        };
        let id = rest[q0 + 1..q0 + 1 + q1].to_owned();
        rest = &rest[q0 + 1 + q1..];
        let Some(m) = rest.find("\"mean_ns\":") else {
            break;
        };
        let Some(mean_ns) = leading_number(&rest[m + 10..]) else {
            continue;
        };
        // `min_ns` belongs to this entry only if it appears before the
        // next entry's `"id"` key.
        let next_id = rest.find("\"id\":").unwrap_or(rest.len());
        let min_ns = match rest.find("\"min_ns\":") {
            Some(p) if p < next_id => leading_number(&rest[p + 9..]),
            _ => None,
        };
        out.push((id, mean_ns, min_ns));
    }
    out
}

/// Prints per-benchmark deltas against the `--baseline` file, if one was
/// given. Regressions and improvements are both listed; benchmarks absent
/// from the baseline are marked new.
#[cfg_attr(test, allow(dead_code))]
fn compare_with_baseline() {
    let Some(path) = baseline_path().get() else {
        return;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("criterion: could not read baseline {path}: {e}");
            return;
        }
    };
    let baseline = parse_baseline_json(&text);
    let results = results().lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    println!("\nbaseline compare (vs {path}):");
    for (id, mean_ns, _, _) in results.iter() {
        match baseline.iter().find(|(bid, _, _)| bid == id) {
            Some((_, base_ns, _)) if *base_ns > 0.0 => {
                let delta = (mean_ns - base_ns) / base_ns * 100.0;
                println!("{id:<50} {base_ns:>12.1} ns -> {mean_ns:>12.1} ns  ({delta:>+7.1}%)");
            }
            _ => println!("{id:<50} {:>12} ns -> {mean_ns:>12.1} ns  (new)", "-"),
        }
    }
    if let Some(pct) = gate_pct().get() {
        // A benchmark fails the gate only when both its median and its
        // minimum-noise estimate regress beyond the bound — see the
        // module docs and `gated_regressions` for why either estimator
        // alone can flake (in opposite directions) while a genuine
        // regression always moves both.
        let flat: Vec<(String, f64, f64)> = results
            .iter()
            .map(|(id, mean_ns, min_ns, _)| (id.clone(), *mean_ns, *min_ns))
            .collect();
        let violations = gated_regressions(&flat, &baseline, *pct);
        if violations.is_empty() {
            println!("gate: all benchmarks within +{pct}% of baseline");
        } else {
            eprintln!("\ngate: regression beyond +{pct}% of baseline:");
            for (id, delta) in &violations {
                eprintln!("  {id:<50} {delta:>+7.1}%");
            }
            // The JSON record was already flushed (write_json_results
            // runs first), so the failing run's numbers stay archived.
            drop(results);
            std::process::exit(1);
        }
    }
}

/// Writes `BENCH_<target>.json` with every recorded result. The target
/// name is recovered from the bench executable (Cargo names those
/// `<target>-<metadata hash>`).
#[cfg_attr(test, allow(dead_code))]
fn write_json_results() {
    let results = results().lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let exe = std::env::current_exe().unwrap_or_default();
    let stem = exe.file_stem().and_then(|s| s.to_str()).unwrap_or("bench");
    // Strip Cargo's trailing `-<16 hex>` disambiguation hash, if present.
    let target = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    };
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"target\": \"{target}\",\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, (id, mean_ns, min_ns, throughput)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Throughput annotations are recorded as a rate so CI logs and
        // committed records read in ops/sec without recomputation.
        let rate = match throughput {
            Some(Throughput::Elements(n)) if *mean_ns > 0.0 => {
                format!(", \"ops_per_sec\": {:.0}", *n as f64 / (mean_ns / 1e9))
            }
            Some(Throughput::Bytes(n)) if *mean_ns > 0.0 => {
                format!(", \"bytes_per_sec\": {:.0}", *n as f64 / (mean_ns / 1e9))
            }
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {mean_ns:.1}, \"min_ns\": {min_ns:.1}{rate}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("{dir}/BENCH_{target}.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion: could not write {path}: {e}");
    }
}

fn report(id: &str, mean_ns: f64, min_ns: f64, throughput: Option<Throughput>) {
    results().lock().unwrap_or_else(|e| e.into_inner()).push((
        id.to_owned(),
        mean_ns,
        min_ns,
        throughput,
    ));
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let mibs = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("{id:<50} {time:>12}/iter  {mibs:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let eps = n as f64 / (mean_ns / 1e9);
            println!("{id:<50} {time:>12}/iter  {eps:>10.0} elem/s");
        }
        _ => println!("{id:<50} {time:>12}/iter"),
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
        // Results are recorded for the JSON flush (mean time of a no-op
        // iteration can legitimately calibrate to ~0, so only presence and
        // non-negativity are asserted).
        let recorded = results().lock().unwrap();
        assert!(recorded.iter().any(|(id, _, _, _)| id == "g/noop"));
        assert!(recorded.iter().any(|(id, _, _, _)| id == "g/param/3"));
        // The minimum-noise estimate can never exceed the median.
        assert!(recorded
            .iter()
            .all(|(_, ns, min, _)| *ns >= 0.0 && *min >= 0.0 && min <= ns));
    }

    #[test]
    fn throughput_annotation_is_recorded() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("tp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(128));
        g.bench_function("elems", |b| b.iter(|| std::hint::black_box(3 * 7)));
        g.finish();
        let recorded = results().lock().unwrap();
        let (_, _, _, tp) = recorded
            .iter()
            .find(|(id, _, _, _)| id == "tp/elems")
            .expect("recorded");
        assert!(matches!(tp, Some(Throughput::Elements(128))));
    }

    #[test]
    fn baseline_json_parses_own_output_format() {
        let text = r#"{
  "target": "b10_store",
  "benchmarks": [
    {"id": "e10_store/hit_read", "mean_ns": 122.6},
    {"id": "e10_store/warm", "mean_ns": 130.0, "min_ns": 118.2},
    {"id": "e10_store/flush_256_dirty", "mean_ns": 88206.0, "ops_per_sec": 2902309}
  ]
}"#;
        let parsed = parse_baseline_json(text);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "e10_store/hit_read");
        assert!((parsed[0].1 - 122.6).abs() < 1e-9);
        // A pre-`min_ns` entry parses with no minimum; it must not steal
        // the min of a later entry.
        assert_eq!(parsed[0].2, None);
        assert_eq!(parsed[1].0, "e10_store/warm");
        assert_eq!(parsed[1].2, Some(118.2));
        assert_eq!(parsed[2].0, "e10_store/flush_256_dirty");
        assert!((parsed[2].1 - 88206.0).abs() < 1e-9);
        assert_eq!(parsed[2].2, None);
        // Garbage degrades gracefully.
        assert!(parse_baseline_json("not json at all").is_empty());
        assert!(parse_baseline_json("{\"id\": \"x\"}").is_empty());
    }

    #[test]
    fn gate_flags_only_regressions_beyond_threshold() {
        let baseline = vec![
            ("a".to_owned(), 100.0),
            ("b".to_owned(), 100.0),
            ("c".to_owned(), 100.0),
            ("stale".to_owned(), 50.0),
        ];
        let results = vec![
            ("a".to_owned(), 114.9), // +14.9% — inside a 15% gate
            ("b".to_owned(), 116.0), // +16.0% — violation
            ("c".to_owned(), 80.0),  // improvement — never a violation
            ("new".to_owned(), 1e6), // not in baseline — never a violation
        ];
        let v = gate_violations(&results, &baseline, 15.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, "b");
        assert!((v[0].1 - 16.0).abs() < 1e-9);
        // Tighter gate catches both.
        let v = gate_violations(&results, &baseline, 10.0);
        assert_eq!(v.len(), 2);
        // Zero-valued baseline entries are skipped, not divided by.
        let z = vec![("z".to_owned(), 0.0)];
        let r = vec![("z".to_owned(), 100.0)];
        assert!(gate_violations(&r, &z, 15.0).is_empty());
    }

    #[test]
    fn gate_requires_both_estimators_to_regress() {
        let baseline = vec![
            // (id, median, min)
            ("steady".to_owned(), 100.0, Some(90.0)),
            ("modal".to_owned(), 100.0, Some(50.0)),
            ("noisy".to_owned(), 100.0, Some(90.0)),
            ("old".to_owned(), 100.0, None),
        ];
        let results = vec![
            // Real regression: both estimators blew the bound → flagged,
            // with the smaller (binding) delta reported.
            ("steady".to_owned(), 150.0, 130.0),
            // Intermittent fast mode missed this run: min looks +120%
            // but the median is steady → not a violation.
            ("modal".to_owned(), 102.0, 110.0),
            // Preempted run: median poisoned, min intact → not a
            // violation (the pre-existing min-gate behaviour).
            ("noisy".to_owned(), 160.0, 95.0),
            // Record predates min_ns: its median stands in on the min
            // side; both sides regress → flagged.
            ("old".to_owned(), 140.0, 125.0),
        ];
        let v = gated_regressions(&results, &baseline, 15.0);
        assert_eq!(
            v.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(),
            ["steady", "old"]
        );
        // steady: min +44.4%, median +50% → binding delta is the min's.
        assert!((v[0].1 - (130.0 - 90.0) / 90.0 * 100.0).abs() < 1e-9);
    }
}
