//! Numeric strategies: `any::<int>()` and range strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::strategy::Strategy;
use crate::{Arbitrary, TestRng};

/// Strategy for "any value of `T`" (see [`crate::any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any(PhantomData)
    }
}

/// Draws uniformly from `[0, span)` where `span` may be up to 2^64
/// (`span == 0` encodes the full 2^64 span).
fn below_span(rng: &mut TestRng, span: u128) -> u128 {
    if span == 0 || span > u128::from(u64::MAX) {
        // Full-width draw.
        u128::from(rng.next_u64())
    } else {
        u128::from(rng.next_u64()) % span
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Unsigned types shrink toward 0; signed toward 0 from
                // either side (0 is the natural origin of both).
                shrink_candidates(*value as i128, 0)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any::default()
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below_span(rng, span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_candidates(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as i128 - lo as i128 + 1) as u128;
                (lo as i128 + below_span(rng, span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_candidates(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo:?}..={hi:?}");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + below_span(rng, span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_candidates(*value as i128, *self.start() as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

/// Shrink candidates for an integer `v` toward `origin` (the simplest
/// value the producing strategy can emit), most aggressive first: the
/// origin itself, the midpoint, then one step. Every candidate lies
/// between `origin` and `v`, so it stays inside the strategy's domain
/// (all 64-bit-and-smaller values fit i128 losslessly).
fn shrink_candidates(v: i128, origin: i128) -> Vec<i128> {
    if v == origin {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(3);
    out.push(origin);
    let mid = origin + (v - origin) / 2;
    if mid != origin && mid != v {
        out.push(mid);
    }
    let step = if v > origin { v - 1 } else { v + 1 };
    if step != origin && !out.contains(&step) {
        out.push(step);
    }
    out
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any::default()
    }
}

fn draw_u128(rng: &mut TestRng) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// `shrink_candidates` for the one type that does not fit `i128`.
fn shrink_candidates_u128(v: u128, origin: u128) -> Vec<u128> {
    if v <= origin {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(3);
    out.push(origin);
    let mid = origin + (v - origin) / 2;
    if mid != origin && mid != v {
        out.push(mid);
    }
    if v - 1 != origin && !out.contains(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

impl Strategy for Any<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        draw_u128(rng)
    }
    fn shrink(&self, value: &u128) -> Vec<u128> {
        shrink_candidates_u128(*value, 0)
    }
}

impl Arbitrary for u128 {
    type Strategy = Any<u128>;
    fn arbitrary() -> Any<u128> {
        Any::default()
    }
}

impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + draw_u128(rng) % (self.end - self.start)
    }
    fn shrink(&self, value: &u128) -> Vec<u128> {
        shrink_candidates_u128(*value, self.start)
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        if self.start == 0 {
            draw_u128(rng)
        } else {
            self.start + draw_u128(rng) % (u128::MAX - self.start + 1)
        }
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u128::MAX {
            draw_u128(rng)
        } else {
            lo + draw_u128(rng) % (hi - lo + 1)
        }
    }
}

/// Strategy for fixed-size arrays of arbitrary elements.
pub struct ArrayStrategy<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.sample(rng))
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = ArrayStrategy<T::Strategy, N>;
    fn arbitrary() -> Self::Strategy {
        ArrayStrategy(T::arbitrary())
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated data readable.
        char::from(0x20 + (rng.below(0x5f) as u8))
    }
}

impl Arbitrary for char {
    type Strategy = Any<char>;
    fn arbitrary() -> Any<char> {
        Any::default()
    }
}
