//! String strategies from (a small subset of) regex patterns.
//!
//! A `&str` used as a strategy is parsed as a sequence of atoms, where an
//! atom is a literal character, an escaped character, or a `[...]`
//! character class (with `a-z` ranges), optionally followed by a repetition
//! `{n}`, `{m,n}`, `*`, `+` or `?`. This covers patterns like
//! `"[a-zA-Z0-9/ ]{0,40}"`. Anything fancier panics loudly rather than
//! silently generating wrong data.

use crate::strategy::Strategy;
use crate::TestRng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in regex strategy {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing '\\' in {pattern:?}");
                let escaped = chars[i + 1];
                i += 2;
                match escaped {
                    'n' => vec!['\n'],
                    't' => vec!['\t'],
                    'r' => vec!['\r'],
                    'd' => ('0'..='9').collect(),
                    other => vec![other],
                }
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            lit => {
                assert!(
                    !"(){}|^$*+?".contains(lit),
                    "unsupported regex feature {lit:?} in strategy {pattern:?}"
                );
                i += 1;
                vec![lit]
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if *i >= chars.len() {
        return (1, 1);
    }
    match chars[*i] {
        '{' => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in regex strategy {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo = lo.trim().parse().expect("bad repeat lower bound");
                let hi = if hi.trim().is_empty() {
                    lo + 8
                } else {
                    hi.trim().parse().expect("bad repeat upper bound")
                };
                (lo, hi)
            } else {
                let n = body.trim().parse().expect("bad repeat count");
                (n, n)
            }
        }
        '*' => {
            *i += 1;
            (0, 8)
        }
        '+' => {
            *i += 1;
            (1, 8)
        }
        '?' => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min + 1) as u64;
            let count = atom.min + rng.below(span) as usize;
            for _ in 0..count {
                let idx = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[idx]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        <str as Strategy>::sample(self.as_str(), rng)
    }
}
