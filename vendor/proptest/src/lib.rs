//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map`, `any::<T>()`, integer-range and
//! simple regex string strategies, `collection::vec`, `prop_oneof!`, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (per test name), shrinking is greedy and minimal
//! (integers step toward the strategy's origin, vectors shed elements and
//! shrink the leading positions; combinators like `prop_map` do not
//! shrink), and the regex string strategy supports only character classes
//! with an optional `{m,n}` / `*` / `+` repetition.

use std::fmt;

pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;

pub use strategy::{Strategy, Union};

/// Error raised inside a property body: a failed assertion or a rejected
/// (assumed-away) input.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; carries the failure message.
    Fail(String),
    /// The input was rejected via `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection (input filtered out).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result type of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, set with `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// The deterministic RNG driving generation (xorshift-multiply).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; each `proptest!` test derives its seed from the
    /// test's name so runs are reproducible.
    pub fn seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives a seed from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Runs one property to completion: `cases` successful samples, tolerating
/// `prop_assume!` rejections, panicking on the first failure (with the
/// generating case index, since this entry point does no shrinking).
///
/// Kept for callers that drive the RNG themselves; the `proptest!` macro
/// uses [`run_property_shrinking`], which reports minimal counterexamples.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many input rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case #{index}: {msg}");
            }
        }
    }
}

/// Cap on how many shrink candidates are *tried* while minimising one
/// failure. Greedy binary-search-style candidates converge in well under
/// this; the cap only guards against pathological shrink cycles.
const SHRINK_BUDGET: u32 = 1024;

/// Runs one property with failure shrinking: the strategy's candidates
/// are retried greedily until no simpler input still fails, and the panic
/// reports that minimal counterexample.
///
/// Panics from inside the property body propagate immediately without
/// shrinking (only `prop_assert*` failures are shrinkable — re-running a
/// panicking body mid-shrink would abort the shrink loop anyway).
pub fn run_property_shrinking<S>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut case: impl FnMut(S::Value) -> TestCaseResult,
) where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        index += 1;
        let value = strategy.sample(&mut rng);
        match case(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many input rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (min_value, min_msg, steps) = shrink_failure(strategy, value, msg, &mut case);
                panic!(
                    "proptest '{name}' failed at case #{index}: {min_msg}\n\
                     minimal counterexample (after {steps} shrink steps): {min_value:?}"
                );
            }
        }
    }
}

/// Greedily minimises a failing input: take the first shrink candidate
/// that still fails, repeat from there, stop when no candidate fails (or
/// the budget runs out). Rejected candidates count as passing.
fn shrink_failure<S>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    case: &mut impl FnMut(S::Value) -> TestCaseResult,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
{
    let mut steps = 0u32;
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(TestCaseError::Fail(m)) = case(candidate.clone()) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy producing arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
    /// Namespace alias so `prop::collection::vec(..)` style paths work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
    pub use crate::strategy::Just;
}

// ---------------------------------------------------------------- macros

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generating case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Rejects the current input (does not count against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Chooses among several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( $crate::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: all argument strategies are
/// bundled into one tuple strategy so the runner can shrink each argument
/// independently while holding the others fixed.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ( $( $strategy, )+ );
                $crate::run_property_shrinking(
                    stringify!($name),
                    &config,
                    &strategy,
                    |__proptest_values| {
                        let ( $($arg,)+ ) = __proptest_values;
                        let outcome: $crate::TestCaseResult = (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        outcome
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn integer_shrink_steps_toward_origin() {
        let range = 10u64..1000;
        let candidates = Strategy::shrink(&range, &100);
        assert_eq!(candidates, vec![10, 55, 99]);
        assert!(
            Strategy::shrink(&range, &10).is_empty(),
            "origin is minimal"
        );
        // Signed values shrink toward zero from both sides.
        let signed = crate::any::<i64>();
        assert_eq!(Strategy::shrink(&signed, &-8), vec![0, -4, -7]);
        assert_eq!(Strategy::shrink(&signed, &1), vec![0]);
        assert!(Strategy::shrink(&signed, &0).is_empty());
    }

    #[test]
    fn vec_shrink_sheds_elements_but_respects_min_len() {
        let strat = crate::collection::vec(0u8..10, 2..6);
        let candidates = strat.shrink(&vec![9, 9, 9, 9]);
        // Structural candidates first: halved, tail-dropped, head-dropped.
        assert!(candidates.contains(&vec![9, 9]));
        assert!(candidates.contains(&vec![9, 9, 9]));
        // Element-wise: a leading element replaced by its first candidate.
        assert!(candidates.contains(&vec![0, 9, 9, 9]));
        // Never below the minimum length.
        assert!(strat.shrink(&vec![3, 3]).iter().all(|v| v.len() >= 2));
        for c in &candidates {
            assert!(c.len() >= 2 && c.len() < 4 || c.len() == 4);
        }
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0u32..100, 0u32..100);
        let candidates = Strategy::shrink(&strat, &(50, 7));
        assert!(candidates.contains(&(0, 7)));
        assert!(candidates.contains(&(50, 0)));
        assert!(
            candidates.iter().all(|&(a, b)| a == 50 || b == 7),
            "both components moved in one candidate: {candidates:?}"
        );
    }

    #[test]
    fn failing_property_reports_minimal_counterexample() {
        // The property fails for x ≥ 37; greedy shrinking must walk the
        // reported counterexample all the way down to exactly 37.
        let result = std::panic::catch_unwind(|| {
            crate::run_property_shrinking(
                "shrink_to_37",
                &ProptestConfig::with_cases(64),
                &(0u64..10_000,),
                |(x,)| {
                    crate::prop_assert!(x < 37, "x too big: {}", x);
                    Ok(())
                },
            );
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(
            msg.contains("minimal counterexample") && msg.contains("(37,)"),
            "expected minimal counterexample 37 in: {msg}"
        );
    }

    #[test]
    fn shrinking_preserves_passing_properties() {
        // A passing property must never enter the shrink loop.
        crate::run_property_shrinking(
            "all_pass",
            &ProptestConfig::with_cases(32),
            &(crate::any::<u8>(),),
            |(x,)| {
                crate::prop_assert!(u16::from(x) < 256);
                Ok(())
            },
        );
    }

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }

        #[test]
        fn vec_len_in_range(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn string_matches_class(s in "[ab]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
