//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
