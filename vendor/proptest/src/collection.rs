//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    /// Structural candidates first (shorter vectors, respecting the
    /// minimum length), then element-wise shrinks: each of the first few
    /// positions replaced by its own first shrink candidate.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.size.min;
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        if value.len() > min {
            // Halve toward the minimum, drop the tail element, drop the
            // head element.
            let half_len = min.max(value.len() / 2);
            if half_len < value.len() {
                out.push(value[..half_len].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            if value.len() > 1 {
                out.push(value[1..].to_vec());
            }
        }
        for (i, v) in value.iter().enumerate().take(8) {
            if let Some(simpler) = self.element.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}
