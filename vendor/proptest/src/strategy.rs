//! The [`Strategy`] trait and core combinators.

use crate::TestRng;

/// A source of random values of some type.
///
/// Unlike the real proptest there is no full value tree; a strategy
/// samples values from the deterministic test RNG, and optionally offers
/// *shrink candidates* for a failing value via [`Strategy::shrink`] so the
/// runner can report a minimal counterexample.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for `value`, most aggressive first.
    ///
    /// Every candidate must itself be a value this strategy could have
    /// produced. The default offers none — combinators that cannot invert
    /// their construction (e.g. [`Map`]) simply do not shrink.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
    // No `shrink`: the arm that produced a value is unknown, and asking a
    // different arm to shrink it can yield candidates outside the union's
    // domain (e.g. the midpoint between two disjoint ranges) — a "minimal
    // counterexample" the strategy could never generate. Unions therefore
    // do not shrink; their failing values are reported as sampled.
}

/// Every `proptest!` test draws its arguments as one tuple, so tuples of
/// strategies are strategies: they sample component-wise and shrink one
/// component at a time (holding the others fixed), which is what lets the
/// runner minimise multi-argument counterexamples.
macro_rules! tuple_strategies {
    ($( ( $($S:ident $idx:tt),+ ) )+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}
