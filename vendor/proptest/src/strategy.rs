//! The [`Strategy`] trait and core combinators.

use crate::TestRng;

/// A source of random values of some type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply samples a value from the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}
