//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! `RngCore`, `Rng::gen`/`gen_range`/`gen_bool`/`fill_bytes`, `SeedableRng`
//! and a deterministic `rngs::StdRng`. There is no OS entropy source —
//! every generator must be seeded, which suits the reproduction's
//! deterministic-by-construction design.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate, folded into one trait).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from the given `low..high` range.
    fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::uniform(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.
    use super::{RngCore, SeedableRng};

    /// The "standard" RNG: here, xoshiro256** seeded via splitmix64.
    /// Deterministic and fast; not cryptographically secure (neither is the
    /// real `StdRng` contractually, for reproducible simulations).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_spread() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        // All 64 bit positions should be exercised over a few draws.
        let mut acc = 0u64;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            acc |= rng.gen::<u64>();
        }
        assert_eq!(acc, u64::MAX);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }
}
