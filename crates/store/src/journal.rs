//! The write-ahead journal — crash-safe durability by interposition.
//!
//! The paper's extensibility story is that trusted components interpose
//! on each other through ordinary named interfaces. The journal is that
//! idiom applied to durability: an object exporting the same `blockdev`
//! interface as the disk driver, slotted *between* the shared cache and
//! the driver by [`crate::StackBuilder`]. Clients (and the cache) cannot
//! tell it is there — except that after a power failure, every write
//! they were told succeeded is still on the disk.
//!
//! # On-disk layout
//!
//! The journal reserves the tail of the device: two alternating
//! superblock sectors followed by a sequential log. Clients see a device
//! shrunk by the reserved region (`sectors()` reports only the data
//! area) and cannot address into it.
//!
//! ```text
//! | data sectors ... | SB0 | SB1 | log[0] | log[1] | ... | log[L-1] |
//! ```
//!
//! Every log record is tagged with the current *epoch* and checksummed
//! (FNV-1a 64). A transaction is journalled as one or more *descriptor*
//! sectors (home sector ids), each followed by its raw payload sectors,
//! and ends with a *commit marker* carrying a checksum over all of the
//! transaction's payload bytes. The marker is the last sector of the
//! transaction in log order, so a torn or missing sector anywhere in the
//! record leaves the transaction uncommitted — the recovery scan stops
//! at the first sector that fails validation (wrong magic, wrong epoch,
//! bad checksum) and everything before it is the committed prefix.
//!
//! Truncation never rewrites the log: a checkpoint first writes every
//! committed payload to its home location, then bumps the epoch in the
//! inactive superblock copy. Old records instantly stop validating. The
//! home-writes-then-epoch-bump order is load-bearing — a crash between
//! the two replays the (idempotent) home writes at the next mount
//! instead of losing them.
//!
//! # Group commit
//!
//! Commits are coalesced leader/rider style: a committing thread queues
//! its transaction and, if no append is in flight, becomes the leader —
//! it drains *every* queued transaction into a single vectorized
//! `write_many` append (paying the driver's amortised batch cost), then
//! wakes the riders. Threads that arrive while the leader is writing
//! simply queue; the next leader takes them all in one more append. N
//! concurrent small commits thus reach the platter in far fewer than N
//! device invocations — the `journal` interface's `stats` reports both
//! counters so tests and benches can measure the batching factor. A
//! group whose *combined* records outgrow the log (each member fits
//! alone — that is the commit-time admission check) is split at
//! transaction boundaries into sequential appends, checkpointing
//! between them when the log fills.
//!
//! Committed-but-unhomed payloads are served from an in-memory overlay
//! until a checkpoint homes them, so reads through the journal always
//! observe committed data.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use paramecium_machine::dev::disk::SECTOR_SIZE;
use paramecium_obj::{ObjError, ObjRef, ObjResult, ObjectBuilder, TypeTag, Value};

use crate::vectored::{
    pairs_arg, parse_pairs, parse_sectors, parse_txn, parse_txn_write, sectors_arg,
    TXN_WRITE_PARAMS,
};

/// Magic tag of a superblock sector.
const SB_MAGIC: u64 = 0x504A_5342_4C4B_0001; // "PJSBLK" v1
/// Magic tag of a transaction descriptor sector.
const DESC_MAGIC: u64 = 0x504A_4445_5343_0001; // "PJDESC" v1
/// Magic tag of a commit marker sector.
const COMMIT_MAGIC: u64 = 0x504A_434D_5431_0001; // "PJCMT" v1

/// Home sector ids one descriptor sector can carry:
/// (payload area 504 − 32 bytes of header) / 8 bytes per id.
const DESC_CAPACITY: usize = (SECTOR_SIZE - 8 - 32) / 8;

/// Configuration for the journal layer.
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// Log length in sectors (the reserved region is `log_sectors + 2`,
    /// for the two superblock copies). Bounds the largest transaction
    /// and how much work can accumulate between checkpoints.
    pub log_sectors: i64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        // 126 log sectors + 2 superblocks = a 128-sector (64 KiB) region.
        JournalConfig { log_sectors: 126 }
    }
}

/// Resolved on-disk geometry.
#[derive(Clone, Copy)]
struct Geometry {
    /// Client-visible device size; also the absolute sector of SB0.
    data_sectors: i64,
    /// Absolute sector of `log[0]` (= `data_sectors + 2`).
    log_start: i64,
    log_len: i64,
}

impl Geometry {
    fn sb(&self, copy: u64) -> i64 {
        self.data_sectors + (copy % 2) as i64
    }
}

/// FNV-1a 64 over `data`, seeded so an all-zero sector never validates.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8-byte slice"))
}

/// Seals a record sector: checksum over the first 504 bytes goes into
/// the last 8.
fn seal(mut buf: [u8; SECTOR_SIZE]) -> [u8; SECTOR_SIZE] {
    let sum = fnv1a(&[&buf[..SECTOR_SIZE - 8]]);
    put_u64(&mut buf, SECTOR_SIZE - 8, sum);
    buf
}

/// Validates a sealed record sector's trailing checksum.
fn sealed_ok(buf: &[u8]) -> bool {
    buf.len() == SECTOR_SIZE && get_u64(buf, SECTOR_SIZE - 8) == fnv1a(&[&buf[..SECTOR_SIZE - 8]])
}

fn sb_sector(epoch: u64) -> [u8; SECTOR_SIZE] {
    let mut buf = [0u8; SECTOR_SIZE];
    put_u64(&mut buf, 0, SB_MAGIC);
    put_u64(&mut buf, 8, epoch);
    seal(buf)
}

/// Parses a superblock copy, returning its epoch if valid.
fn parse_sb(buf: &[u8]) -> Option<u64> {
    (sealed_ok(buf) && get_u64(buf, 0) == SB_MAGIC).then(|| get_u64(buf, 8))
}

fn desc_sector(epoch: u64, txn: u64, sectors: &[i64]) -> [u8; SECTOR_SIZE] {
    debug_assert!(sectors.len() <= DESC_CAPACITY);
    let mut buf = [0u8; SECTOR_SIZE];
    put_u64(&mut buf, 0, DESC_MAGIC);
    put_u64(&mut buf, 8, epoch);
    put_u64(&mut buf, 16, txn);
    put_u64(&mut buf, 24, sectors.len() as u64);
    for (k, &sec) in sectors.iter().enumerate() {
        put_u64(&mut buf, 32 + 8 * k, sec as u64);
    }
    seal(buf)
}

fn commit_sector(epoch: u64, txn: u64, payload_sum: u64) -> [u8; SECTOR_SIZE] {
    let mut buf = [0u8; SECTOR_SIZE];
    put_u64(&mut buf, 0, COMMIT_MAGIC);
    put_u64(&mut buf, 8, epoch);
    put_u64(&mut buf, 16, txn);
    put_u64(&mut buf, 24, payload_sum);
    seal(buf)
}

/// Committed transactions in commit order, as recovered by a log scan.
type CommittedTxns = Vec<(u64, Vec<(i64, Bytes)>)>;

/// One transaction queued for the next group append.
struct PendingTxn {
    seq: u64,
    txn: u64,
    writes: Vec<(i64, Bytes)>,
}

/// Mutable journal state behind the single mutex. The `flushing` flag is
/// the append/checkpoint ownership token: whoever sets it may touch the
/// log and superblocks (with the lock *released* around backing-store
/// invocations) until they clear it and notify the condvar.
struct Inner {
    epoch: u64,
    /// Next free log slot, relative to `log_start`.
    head: i64,
    /// Committed, not-yet-homed payloads (read overlay).
    overlay: HashMap<i64, Bytes>,
    /// Open client transactions (buffered in memory until commit).
    open: HashMap<i64, Vec<(i64, Bytes)>>,
    next_txn: i64,
    /// Group-commit queue and leader token.
    pending: Vec<PendingTxn>,
    flushing: bool,
    next_seq: u64,
    durable_seq: u64,
    /// Commit outcomes for riders whose group append failed.
    failed: HashMap<u64, String>,
    // Stats.
    commits: u64,
    group_appends: u64,
    appended_records: u64,
    checkpoints: u64,
    replayed: u64,
}

struct JournalShared {
    backing: ObjRef,
    geo: Geometry,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl JournalShared {
    fn read_backing(&self, sector: i64) -> ObjResult<Bytes> {
        let v = self
            .backing
            .invoke("blockdev", "read", &[Value::Int(sector)])?;
        Ok(v.as_bytes()?.clone())
    }

    fn write_backing(&self, batch: Vec<(i64, Bytes)>) -> ObjResult<()> {
        self.backing
            .invoke("blockdev", "write_many", &[pairs_arg(batch)])?;
        Ok(())
    }

    /// Log slots a transaction of `n` writes occupies: one descriptor
    /// per [`DESC_CAPACITY`] chunk, the payloads, and the commit marker.
    fn slots_needed(n: usize) -> i64 {
        (n.div_ceil(DESC_CAPACITY) + n + 1) as i64
    }

    /// Most payload sectors one transaction can carry — the mirror of
    /// [`Self::slots_needed`]: the largest `n` whose record sectors fit
    /// an empty log. Exported as the `write_limit` blockdev method so
    /// upper layers (the cache) can bound their writeback batches.
    fn txn_capacity(&self) -> i64 {
        let mut n = (self.geo.log_len - 2).max(0);
        while n > 0 && Self::slots_needed(n as usize) > self.geo.log_len {
            n -= 1;
        }
        n
    }

    /// Serialises `txns` into log sectors starting at `head`, returning
    /// the absolute `(sector, data)` batch. Each transaction ends with
    /// its own commit marker, so a crash part-way through the batch
    /// leaves every fully-appended transaction committed and the one at
    /// the crash point invisible.
    fn encode_group(&self, epoch: u64, head: i64, txns: &[PendingTxn]) -> Vec<(i64, Bytes)> {
        let mut batch = Vec::new();
        let mut pos = self.geo.log_start + head;
        for t in txns {
            let payload_sum = fnv1a(
                &t.writes
                    .iter()
                    .map(|(_, data)| data.as_ref())
                    .collect::<Vec<_>>(),
            );
            for chunk in t.writes.chunks(DESC_CAPACITY) {
                let ids: Vec<i64> = chunk.iter().map(|(sec, _)| *sec).collect();
                batch.push((
                    pos,
                    Bytes::copy_from_slice(&desc_sector(epoch, t.txn, &ids)),
                ));
                pos += 1;
                for (_, data) in chunk {
                    batch.push((pos, data.clone()));
                    pos += 1;
                }
            }
            batch.push((
                pos,
                Bytes::copy_from_slice(&commit_sector(epoch, t.txn, payload_sum)),
            ));
            pos += 1;
        }
        batch
    }

    /// Scans the log and returns the committed transactions in commit
    /// order, plus the log head (first free slot). Read-only — safe to
    /// run at mount and for the idempotence tests. The scan stops at the
    /// first sector that fails validation: wrong magic or epoch, a torn
    /// record (trailing checksum), or a commit whose payload checksum
    /// does not match.
    fn scan_committed(&self, epoch: u64) -> ObjResult<(CommittedTxns, i64)> {
        let mut committed: CommittedTxns = Vec::new();
        // Fragments of transactions whose commit marker hasn't appeared
        // yet (multi-descriptor transactions).
        let mut open: HashMap<u64, Vec<(i64, Bytes)>> = HashMap::new();
        let mut pos: i64 = 0;
        while pos < self.geo.log_len {
            let head = self.read_backing(self.geo.log_start + pos)?;
            if !sealed_ok(&head) || get_u64(&head, 8) != epoch {
                break;
            }
            match get_u64(&head, 0) {
                DESC_MAGIC => {
                    let txn = get_u64(&head, 16);
                    let n = get_u64(&head, 24) as usize;
                    if n > DESC_CAPACITY || pos + 1 + n as i64 > self.geo.log_len {
                        break;
                    }
                    let payloads = self.backing.invoke(
                        "blockdev",
                        "read_many",
                        &[sectors_arg(
                            (0..n as i64).map(|k| self.geo.log_start + pos + 1 + k),
                        )],
                    )?;
                    let payloads = payloads.as_list()?;
                    let entry = open.entry(txn).or_default();
                    for (k, v) in payloads.iter().enumerate() {
                        let sec = get_u64(&head, 32 + 8 * k) as i64;
                        entry.push((sec, v.as_bytes()?.clone()));
                    }
                    pos += 1 + n as i64;
                }
                COMMIT_MAGIC => {
                    let txn = get_u64(&head, 16);
                    let writes = open.remove(&txn).unwrap_or_default();
                    let sum = fnv1a(
                        &writes
                            .iter()
                            .map(|(_, data)| data.as_ref())
                            .collect::<Vec<_>>(),
                    );
                    if sum != get_u64(&head, 24) {
                        break;
                    }
                    committed.push((txn, writes));
                    pos += 1;
                }
                _ => break,
            }
        }
        Ok((committed, pos))
    }

    /// Homes `writes` (last-writer-wins per sector, elevator order) and
    /// then truncates the log by bumping the epoch in the inactive
    /// superblock copy. The order is the checkpoint's whole correctness
    /// argument: until the new superblock is durable, the old epoch's
    /// records still validate and a remount replays them.
    fn home_and_truncate(&self, epoch: u64, writes: &[(i64, Bytes)]) -> ObjResult<u64> {
        let mut last: HashMap<i64, &Bytes> = HashMap::new();
        for (sec, data) in writes {
            last.insert(*sec, data);
        }
        let mut batch: Vec<(i64, Bytes)> =
            last.into_iter().map(|(sec, d)| (sec, d.clone())).collect();
        batch.sort_unstable_by_key(|(sec, _)| *sec);
        let homed = batch.len() as u64;
        if !batch.is_empty() {
            self.write_backing(batch)?;
        }
        // Home writes are durable; only now may the records stop
        // validating.
        let next = epoch + 1;
        self.write_backing(vec![(
            self.geo.sb(next),
            Bytes::copy_from_slice(&sb_sector(next)),
        )])?;
        Ok(homed)
    }

    /// Becomes the append/checkpoint owner, waiting out any current one.
    fn acquire_flush_token(&self) {
        let mut inner = self.inner.lock();
        self.cv.wait_while(&mut inner, |i| i.flushing);
        inner.flushing = true;
    }

    fn release_flush_token(&self) {
        self.inner.lock().flushing = false;
        self.cv.notify_all();
    }

    /// Full checkpoint: homes the overlay, truncates the log. The caller
    /// holds the flush token (no appends in flight), so the overlay
    /// snapshot is the complete committed state.
    fn checkpoint_locked_out(&self) -> ObjResult<i64> {
        let (epoch, writes) = {
            let inner = self.inner.lock();
            let writes: Vec<(i64, Bytes)> = inner
                .overlay
                .iter()
                .map(|(sec, d)| (*sec, d.clone()))
                .collect();
            (inner.epoch, writes)
        };
        if writes.is_empty() {
            // Nothing committed since the last checkpoint, so there is
            // nothing to home and no epoch to retire. The overlay is
            // only ever empty right after a reset (mount, checkpoint),
            // when the head is already 0 — assert that invariant, and
            // re-pin it in release builds so [`Self::append_group`]'s
            // checkpoint-then-retry loop always regains log space.
            let mut inner = self.inner.lock();
            debug_assert_eq!(inner.head, 0, "empty overlay implies an empty log");
            inner.head = 0;
            return Ok(0);
        }
        let homed = self.home_and_truncate(epoch, &writes)?;
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.head = 0;
        inner.overlay.clear();
        inner.checkpoints += 1;
        Ok(homed as i64)
    }

    /// Commits `writes` as one atomic transaction, group-coalescing with
    /// every other transaction queued while an append was in flight.
    /// Returns once the commit marker is durable (or delivery of the
    /// group's failure).
    fn commit_writes(&self, txn: u64, writes: Vec<(i64, Bytes)>) -> ObjResult<()> {
        let limit = self.txn_capacity();
        if writes.len() as i64 > limit {
            return Err(ObjError::failed(format!(
                "transaction of {} sectors exceeds the {}-sector log's \
                 {limit}-sector transaction limit",
                writes.len(),
                self.geo.log_len
            )));
        }
        let my_seq = {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.pending.push(PendingTxn { seq, txn, writes });
            seq
        };
        loop {
            let mut inner = self.inner.lock();
            if inner.durable_seq >= my_seq && inner.pending.iter().all(|p| p.seq != my_seq) {
                return match inner.failed.remove(&my_seq) {
                    None => Ok(()),
                    Some(msg) => Err(ObjError::failed(msg)),
                };
            }
            if inner.flushing {
                self.cv.wait(&mut inner);
                continue;
            }
            // Become the leader: drain the whole queue into one append.
            inner.flushing = true;
            let group: Vec<PendingTxn> = std::mem::take(&mut inner.pending);
            drop(inner);
            let result = self.append_group(&group);
            let mut inner = self.inner.lock();
            let top_seq = group.iter().map(|p| p.seq).max().expect("non-empty group");
            match &result {
                Ok((records, appends)) => {
                    // Head and overlay were updated per sub-batch inside
                    // append_group; only the counters are left.
                    inner.commits += group.len() as u64;
                    inner.group_appends += appends;
                    inner.appended_records += records;
                }
                Err(e) => {
                    // The group append failed (e.g. power loss). Nothing
                    // in this group is acknowledged; a prefix may still
                    // have committed on disk, which recovery surfaces as
                    // whole transactions — never partial ones.
                    for p in &group {
                        inner.failed.insert(p.seq, e.to_string());
                    }
                }
            }
            inner.durable_seq = inner.durable_seq.max(top_seq);
            inner.flushing = false;
            drop(inner);
            self.cv.notify_all();
            // Loop back to pick up our own outcome.
        }
    }

    /// Appends `group` to the log, returning the record-sector and
    /// device-append counts. The caller holds the flush token.
    ///
    /// The group is split at transaction boundaries into sequential
    /// sub-batches that each fit the remaining log, checkpointing inline
    /// whenever the next transaction does not — so a coalesced group
    /// whose *combined* size exceeds the log (every member fits alone,
    /// per [`Self::commit_writes`]'s admission check) still commits,
    /// just in more than one device invocation. Head and overlay are
    /// advanced after every sub-batch lands: the inline checkpoint homes
    /// the overlay, so the earlier sub-batches' transactions must
    /// already be in it or the epoch bump would silently discard them.
    fn append_group(&self, group: &[PendingTxn]) -> ObjResult<(u64, u64)> {
        let (mut epoch, mut head) = {
            let inner = self.inner.lock();
            (inner.epoch, inner.head)
        };
        let mut records = 0u64;
        let mut appends = 0u64;
        let mut i = 0;
        while i < group.len() {
            // Longest prefix of the remaining transactions that fits.
            let mut j = i;
            let mut need = 0i64;
            while j < group.len() {
                let n = Self::slots_needed(group[j].writes.len());
                if head + need + n > self.geo.log_len {
                    break;
                }
                need += n;
                j += 1;
            }
            if j == i {
                // Not even one transaction fits the remaining log:
                // checkpoint inline (the token is already ours) and
                // retry. The admission check guarantees progress — every
                // transaction fits an empty log.
                debug_assert!(head > 0, "admitted transaction cannot fit an empty log");
                self.checkpoint_locked_out()?;
                let inner = self.inner.lock();
                epoch = inner.epoch;
                head = inner.head;
                continue;
            }
            let batch = self.encode_group(epoch, head, &group[i..j]);
            records += batch.len() as u64;
            appends += 1;
            self.write_backing(batch)?;
            head += need;
            let mut inner = self.inner.lock();
            inner.head = head;
            for p in &group[i..j] {
                for (sec, data) in &p.writes {
                    inner.overlay.insert(*sec, data.clone());
                }
            }
            i = j;
        }
        Ok((records, appends))
    }
}

/// Builds a journal over `backing` and mounts it: reads the superblocks
/// (formatting a fresh device), replays committed transactions to their
/// home locations, and truncates the log. Mount is idempotent — a crash
/// anywhere during recovery replays the same committed prefix next time.
///
/// Returns an object exporting `blockdev` (see the [crate docs](crate)
/// for the full method list) plus a `journal` interface:
/// - `stats() -> [commits, group_appends, appended_records, checkpoints,
///   replayed, head, overlay]`,
/// - `geometry() -> [data_sectors, log_start, log_len]`,
/// - `scan() -> int` (read-only committed-transaction count, for tests
///   and benches).
pub fn mount_journal(backing: ObjRef, cfg: JournalConfig) -> ObjResult<ObjRef> {
    let s = mount_shared(backing, cfg)?;
    Ok(build_journal_object(s))
}

/// The mount itself — geometry resolution, superblock election, replay,
/// truncation — without the object wrapper, so unit tests can reach the
/// internal state machine ([`JournalShared::append_group`] and friends).
fn mount_shared(backing: ObjRef, cfg: JournalConfig) -> ObjResult<Arc<JournalShared>> {
    let total = backing.invoke("blockdev", "sectors", &[])?.as_int()?;
    let log_len = cfg.log_sectors;
    if log_len < 4 || log_len + 2 >= total {
        return Err(ObjError::failed(format!(
            "journal of {log_len} log sectors does not fit a {total}-sector device"
        )));
    }
    let geo = Geometry {
        data_sectors: total - log_len - 2,
        log_start: total - log_len,
        log_len,
    };
    let shared = Arc::new(JournalShared {
        backing,
        geo,
        inner: Mutex::new(Inner {
            epoch: 0,
            head: 0,
            overlay: HashMap::new(),
            open: HashMap::new(),
            next_txn: 1,
            pending: Vec::new(),
            flushing: false,
            next_seq: 1,
            durable_seq: 0,
            failed: HashMap::new(),
            commits: 0,
            group_appends: 0,
            appended_records: 0,
            checkpoints: 0,
            replayed: 0,
        }),
        cv: Condvar::new(),
    });

    // Mount: pick the valid superblock with the highest epoch, or format
    // a fresh device at epoch 1.
    let sb0 = parse_sb(&shared.read_backing(geo.sb(0))?);
    let sb1 = parse_sb(&shared.read_backing(geo.sb(1))?);
    let epoch = match sb0.into_iter().chain(sb1).max() {
        Some(e) => e,
        None => {
            shared.write_backing(vec![(geo.sb(1), Bytes::copy_from_slice(&sb_sector(1)))])?;
            1
        }
    };
    // Replay the committed prefix, home it, truncate. Replay order is
    // commit order, so later transactions overwrite earlier ones — the
    // same last-writer-wins the overlay gave live readers.
    let (committed, _head) = shared.scan_committed(epoch)?;
    let replayed = committed.len() as u64;
    let epoch = if committed.is_empty() {
        epoch
    } else {
        let writes: Vec<(i64, Bytes)> = committed.into_iter().flat_map(|(_, w)| w).collect();
        shared.home_and_truncate(epoch, &writes)?;
        epoch + 1
    };
    {
        let mut inner = shared.inner.lock();
        inner.epoch = epoch;
        inner.replayed = replayed;
    }
    Ok(shared)
}

/// Wraps a mounted journal in its `blockdev` + `journal` object.
fn build_journal_object(s: Arc<JournalShared>) -> ObjRef {
    ObjectBuilder::new("journal")
        .interface("blockdev", |i| {
            let s_read = s.clone();
            let s_write = s.clone();
            let s_read_many = s.clone();
            let s_write_many = s.clone();
            let s_sectors = s.clone();
            let s_limit = s.clone();
            let s_stats = s.clone();
            let s_flush = s.clone();
            let s_barrier = s.clone();
            let s_begin = s.clone();
            let s_txn_write = s.clone();
            let s_commit = s.clone();
            let s_abort = s.clone();
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, move |_, args| {
                let sector = args[0].as_int()?;
                check_data_sector(&s_read.geo, sector)?;
                if let Some(data) = s_read.inner.lock().overlay.get(&sector) {
                    return Ok(Value::Bytes(data.clone()));
                }
                s_read
                    .backing
                    .invoke("blockdev", "read", &[Value::Int(sector)])
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                move |_, args| {
                    let sector = args[0].as_int()?;
                    let data = args[1].as_bytes()?;
                    check_data_sector(&s_write.geo, sector)?;
                    if data.len() != SECTOR_SIZE {
                        return Err(ObjError::failed(format!(
                            "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
                            data.len()
                        )));
                    }
                    // A bare write is an implicit single-write
                    // transaction: journalled, group-committed, durable
                    // by return.
                    let txn = alloc_txn(&s_write);
                    s_write.commit_writes(txn, vec![(sector, data.clone())])?;
                    Ok(Value::Unit)
                },
            )
            .method(
                "read_many",
                &[TypeTag::List],
                TypeTag::List,
                move |_, args| {
                    let sectors = parse_sectors(&args[0])?;
                    for &sec in &sectors {
                        check_data_sector(&s_read_many.geo, sec)?;
                    }
                    // Serve overlay hits locally, batch the rest below.
                    let overlay_hits: Vec<Option<Bytes>> = {
                        let inner = s_read_many.inner.lock();
                        sectors
                            .iter()
                            .map(|sec| inner.overlay.get(sec).cloned())
                            .collect()
                    };
                    let missing: Vec<i64> = sectors
                        .iter()
                        .zip(&overlay_hits)
                        .filter_map(|(&sec, hit)| hit.is_none().then_some(sec))
                        .collect();
                    let mut fetched = if missing.is_empty() {
                        Vec::new()
                    } else {
                        s_read_many
                            .backing
                            .invoke(
                                "blockdev",
                                "read_many",
                                &[sectors_arg(missing.iter().copied())],
                            )?
                            .as_list()?
                            .to_vec()
                    };
                    let mut next = fetched.drain(..);
                    let out: Vec<Value> = overlay_hits
                        .into_iter()
                        .map(|hit| match hit {
                            Some(data) => Ok(Value::Bytes(data)),
                            None => next.next().ok_or_else(|| {
                                ObjError::failed("backing read_many returned a short batch")
                            }),
                        })
                        .collect::<ObjResult<_>>()?;
                    Ok(Value::List(out))
                },
            )
            .method(
                "write_many",
                &[TypeTag::List],
                TypeTag::Int,
                move |_, args| {
                    let pairs = parse_pairs(&args[0])?;
                    for (sec, _) in &pairs {
                        check_data_sector(&s_write_many.geo, *sec)?;
                    }
                    if pairs.is_empty() {
                        return Ok(Value::Int(0));
                    }
                    // One batch = one atomic transaction: after a crash,
                    // either every pair is visible or none is.
                    let n = pairs.len() as i64;
                    let txn = alloc_txn(&s_write_many);
                    s_write_many.commit_writes(txn, pairs)?;
                    Ok(Value::Int(n))
                },
            )
            .method("sectors", &[], TypeTag::Int, move |_, _| {
                Ok(Value::Int(s_sectors.geo.data_sectors))
            })
            .method("write_limit", &[], TypeTag::Int, move |_, _| {
                // Largest write_many batch (= transaction payload) the
                // log can hold as one atomic record. Upper layers chunk
                // their non-atomic writeback batches to this.
                Ok(Value::Int(s_limit.txn_capacity()))
            })
            .method("stats", &[], TypeTag::List, move |_, _| {
                s_stats.backing.invoke("blockdev", "stats", &[])
            })
            .method("flush", &[], TypeTag::Int, move |_, _| {
                // Checkpoint: home every committed payload, truncate the
                // log. Returns the number of sectors homed.
                s_flush.acquire_flush_token();
                let result = s_flush.checkpoint_locked_out();
                s_flush.release_flush_token();
                // Forward so lower layers (an inner journal, a write
                // buffer) drain too.
                let below = s_flush.backing.invoke("blockdev", "flush", &[]);
                let homed = result?;
                let below = match below {
                    Ok(v) => v.as_int().unwrap_or(0),
                    Err(_) => 0, // A bare driver may not implement flush.
                };
                Ok(Value::Int(homed + below))
            })
            .method("barrier", &[], TypeTag::Unit, move |_, _| {
                // Every acknowledged commit is already durable (commit
                // returns only after its group append lands), so a
                // barrier only needs to wait out any in-flight append
                // and order against the layer below.
                s_barrier.acquire_flush_token();
                s_barrier.release_flush_token();
                s_barrier.backing.invoke("blockdev", "barrier", &[])
            })
            .method("begin_txn", &[], TypeTag::Int, move |_, _| {
                let mut inner = s_begin.inner.lock();
                let id = inner.next_txn;
                inner.next_txn += 1;
                inner.open.insert(id, Vec::new());
                Ok(Value::Int(id))
            })
            .method(
                "txn_write",
                TXN_WRITE_PARAMS,
                TypeTag::Unit,
                move |_, args| {
                    let (txn, sector, data) = parse_txn_write(args)?;
                    check_data_sector(&s_txn_write.geo, sector)?;
                    s_txn_write
                        .inner
                        .lock()
                        .open
                        .get_mut(&txn)
                        .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?
                        .push((sector, data));
                    Ok(Value::Unit)
                },
            )
            .method("commit", &[TypeTag::Int], TypeTag::Unit, move |_, args| {
                let txn = parse_txn(&args[0])?;
                let writes = s_commit
                    .inner
                    .lock()
                    .open
                    .remove(&txn)
                    .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?;
                if writes.is_empty() {
                    return Ok(Value::Unit);
                }
                s_commit.commit_writes(txn as u64, writes)?;
                Ok(Value::Unit)
            })
            .method("abort", &[TypeTag::Int], TypeTag::Unit, move |_, args| {
                let txn = parse_txn(&args[0])?;
                s_abort
                    .inner
                    .lock()
                    .open
                    .remove(&txn)
                    .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?;
                Ok(Value::Unit)
            })
        })
        .interface("journal", |i| {
            let s_stats = s.clone();
            let s_geo = s.clone();
            let s_scan = s.clone();
            i.method("stats", &[], TypeTag::List, move |_, _| {
                let inner = s_stats.inner.lock();
                Ok(Value::List(vec![
                    Value::Int(inner.commits as i64),
                    Value::Int(inner.group_appends as i64),
                    Value::Int(inner.appended_records as i64),
                    Value::Int(inner.checkpoints as i64),
                    Value::Int(inner.replayed as i64),
                    Value::Int(inner.head),
                    Value::Int(inner.overlay.len() as i64),
                ]))
            })
            .method("geometry", &[], TypeTag::List, move |_, _| {
                Ok(Value::List(vec![
                    Value::Int(s_geo.geo.data_sectors),
                    Value::Int(s_geo.geo.log_start),
                    Value::Int(s_geo.geo.log_len),
                ]))
            })
            .method("scan", &[], TypeTag::Int, move |_, _| {
                let epoch = s_scan.inner.lock().epoch;
                let (committed, _) = s_scan.scan_committed(epoch)?;
                Ok(Value::Int(committed.len() as i64))
            })
        })
        .build()
}

/// Allocates an internal transaction id for an implicit (bare-write)
/// transaction.
fn alloc_txn(s: &JournalShared) -> u64 {
    let mut inner = s.inner.lock();
    let id = inner.next_txn;
    inner.next_txn += 1;
    id as u64
}

/// Rejects sectors outside the client-visible data area (negative or
/// inside the reserved journal region).
fn check_data_sector(geo: &Geometry, sector: i64) -> ObjResult<()> {
    if sector < 0 || sector >= geo.data_sectors {
        return Err(ObjError::failed(format!(
            "sector {sector} out of range (device has {})",
            geo.data_sectors
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackBuilder;
    use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
    use paramecium_machine::Machine;
    use std::sync::Arc;

    fn setup() -> (Arc<MemService>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig::default())
            .build()
            .unwrap();
        (mem, stack.driver, stack.top)
    }

    fn sector_of(byte: u8) -> Value {
        Value::Bytes(Bytes::from(vec![byte; SECTOR_SIZE]))
    }

    fn jstats(j: &ObjRef) -> Vec<i64> {
        j.invoke("journal", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn writes_are_journalled_then_homed_by_flush() {
        let (_mem, driver, j) = setup();
        j.invoke("blockdev", "write", &[Value::Int(3), sector_of(0xAD)])
            .unwrap();
        // Readable through the journal (overlay) immediately...
        let v = j.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xAD);
        // ...but the home location is untouched until checkpoint.
        let v = driver.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        let homed = j
            .invoke("blockdev", "flush", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(homed, 1);
        let v = driver.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xAD);
        // Overlay drained, checkpoint counted.
        let s = jstats(&j);
        assert_eq!(s[6], 0, "overlay empty after checkpoint");
        assert_eq!(s[3], 1, "one checkpoint");
    }

    #[test]
    fn txn_invisible_until_commit_and_gone_after_abort() {
        use crate::vectored::{txn_arg, txn_write_args};
        let (_mem, _driver, j) = setup();
        let txn = j
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        for sec in [7i64, 9] {
            j.invoke(
                "blockdev",
                "txn_write",
                &txn_write_args(txn, sec, Bytes::from(vec![0x11; SECTOR_SIZE])),
            )
            .unwrap();
        }
        let v = j.invoke("blockdev", "read", &[Value::Int(7)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0, "uncommitted data invisible");
        j.invoke("blockdev", "commit", &txn_arg(txn)).unwrap();
        for sec in [7i64, 9] {
            let v = j.invoke("blockdev", "read", &[Value::Int(sec)]).unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0x11);
        }
        // Abort drops buffered writes entirely.
        let t2 = j
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        j.invoke(
            "blockdev",
            "txn_write",
            &txn_write_args(t2, 20, Bytes::from(vec![0x22; SECTOR_SIZE])),
        )
        .unwrap();
        j.invoke("blockdev", "abort", &txn_arg(t2)).unwrap();
        let v = j.invoke("blockdev", "read", &[Value::Int(20)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        assert!(j.invoke("blockdev", "commit", &txn_arg(t2)).is_err());
    }

    #[test]
    fn remount_replays_committed_transactions() {
        let (mem, _driver, j) = setup();
        j.invoke("blockdev", "write", &[Value::Int(11), sector_of(0x5A)])
            .unwrap();
        drop(j);
        // No flush: the data lives only in the log. A fresh mount over
        // the same device must replay it to its home location.
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig::default())
            .build()
            .unwrap();
        let j2 = stack.top;
        assert_eq!(jstats(&j2)[4], 1, "one transaction replayed");
        let v = j2.invoke("blockdev", "read", &[Value::Int(11)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x5A);
        // And the home location really holds it (not just an overlay).
        let v = stack
            .driver
            .invoke("blockdev", "read", &[Value::Int(11)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x5A);
    }

    #[test]
    fn log_full_checkpoints_inline_and_keeps_going() {
        let (_mem, driver, j) = setup();
        // Each bare write costs 3 log slots (desc + payload + commit);
        // 126 log sectors hold 42. Write far more than that.
        for round in 0..100i64 {
            j.invoke(
                "blockdev",
                "write",
                &[Value::Int(round % 8), sector_of(round as u8)],
            )
            .unwrap();
        }
        let s = jstats(&j);
        assert!(s[3] >= 2, "inline checkpoints happened: {s:?}");
        j.invoke("blockdev", "flush", &[]).unwrap();
        for sec in 0..8i64 {
            // Last round that wrote this sector.
            let expect = (99 - ((99 - sec) % 8)) as u8;
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], expect, "sector {sec}");
        }
    }

    #[test]
    fn journal_region_is_invisible_and_unwritable() {
        let (_mem, _driver, j) = setup();
        let data_sectors = j
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        let geo = j.invoke("journal", "geometry", &[]).unwrap();
        let geo = geo.as_list().unwrap();
        assert_eq!(geo[0].as_int().unwrap(), data_sectors);
        // The reserved region (superblocks + log) is not addressable.
        assert!(j
            .invoke("blockdev", "read", &[Value::Int(data_sectors)])
            .is_err());
        assert!(j
            .invoke(
                "blockdev",
                "write",
                &[Value::Int(data_sectors + 1), sector_of(1)]
            )
            .is_err());
    }

    #[test]
    fn oversized_group_splits_and_checkpoints_between_appends() {
        // Regression: commit_writes admits each transaction alone, but a
        // coalesced group's combined records can outgrow the log. The
        // leader must split the group at transaction boundaries, not
        // encode past the device end and fail every member's commit.
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let driver = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top;
        let cfg = JournalConfig { log_sectors: 16 };
        let s = mount_shared(driver.clone(), cfg).unwrap();
        // A 6-write transaction needs 8 slots (desc + 6 payloads +
        // commit): two fit the 16-slot log together, three do not.
        let group: Vec<PendingTxn> = (0..3u64)
            .map(|t| PendingTxn {
                seq: t + 1,
                txn: t + 1,
                writes: (0..6i64)
                    .map(|k| {
                        (
                            t as i64 * 6 + k,
                            Bytes::from(vec![0x60 + t as u8; SECTOR_SIZE]),
                        )
                    })
                    .collect(),
            })
            .collect();
        s.inner.lock().flushing = true; // what a leader would hold
        let (records, appends) = s.append_group(&group).unwrap();
        s.release_flush_token();
        assert_eq!(records, 24, "8 record sectors per transaction");
        assert_eq!(appends, 2, "split into two sequential appends");
        {
            let inner = s.inner.lock();
            assert_eq!(inner.checkpoints, 1, "inline checkpoint between them");
            assert_eq!(inner.head, 8, "only the third transaction in the new log");
            assert_eq!(inner.overlay.len(), 6);
        }
        // The checkpoint homed the first two transactions — the epoch
        // bump must not have discarded them.
        for sec in 0..12i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0x60 + (sec / 6) as u8);
        }
        // And the third is committed on disk: a fresh mount replays it.
        drop(s);
        let s2 = mount_shared(driver.clone(), cfg).unwrap();
        assert_eq!(s2.inner.lock().replayed, 1);
        for sec in 12..18i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0x62);
        }
    }

    #[test]
    fn concurrent_commits_that_outgrow_the_log_together_all_succeed() {
        // The same overflow through the public interface: concurrent
        // committers whose transactions fit individually must never see
        // a spurious commit error just because they were coalesced.
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig { log_sectors: 16 })
            .build()
            .unwrap();
        let top = stack.top.clone();
        let start = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                let top = top.clone();
                let start = start.clone();
                std::thread::spawn(move || {
                    start.wait();
                    for round in 0..8i64 {
                        let pairs: Vec<(i64, Bytes)> = (0..6i64)
                            .map(|k| {
                                (
                                    t as i64 * 48 + round * 6 + k,
                                    Bytes::from(vec![0xB0 + t; SECTOR_SIZE]),
                                )
                            })
                            .collect();
                        top.invoke("blockdev", "write_many", &[pairs_arg(pairs)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        top.invoke("blockdev", "flush", &[]).unwrap();
        for t in 0..4i64 {
            for k in 0..48i64 {
                let v = stack
                    .driver
                    .invoke("blockdev", "read", &[Value::Int(t * 48 + k)])
                    .unwrap();
                assert_eq!(v.as_bytes().unwrap()[0], 0xB0 + t as u8);
            }
        }
    }

    #[test]
    fn write_limit_reports_the_transaction_capacity() {
        let (_mem, _driver, j) = setup();
        let limit = j
            .invoke("blockdev", "write_limit", &[])
            .unwrap()
            .as_int()
            .unwrap();
        // Default 126-slot log: 122 payloads + 3 descriptors + 1 commit.
        assert_eq!(limit, 122);
        // The limit is exact: a write_many of `limit` commits, one more
        // is rejected.
        let pairs: Vec<(i64, Bytes)> = (0..=limit)
            .map(|sec| (sec, Bytes::from(vec![0x31; SECTOR_SIZE])))
            .collect();
        assert!(j
            .invoke("blockdev", "write_many", &[pairs_arg(pairs.clone())])
            .is_err());
        let n = j
            .invoke(
                "blockdev",
                "write_many",
                &[pairs_arg(pairs[..limit as usize].to_vec())],
            )
            .unwrap();
        assert_eq!(n, Value::Int(limit));
    }

    #[test]
    fn oversized_transaction_is_rejected_whole() {
        use crate::vectored::{txn_arg, txn_write_args};
        let (_mem, driver, j) = setup();
        let txn = j
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        // 126 log sectors can hold at most ~120 payloads; 200 cannot fit.
        for sec in 0..200i64 {
            j.invoke(
                "blockdev",
                "txn_write",
                &txn_write_args(txn, sec, Bytes::from(vec![0xFF; SECTOR_SIZE])),
            )
            .unwrap();
        }
        assert!(j.invoke("blockdev", "commit", &txn_arg(txn)).is_err());
        // Nothing leaked to disk or overlay.
        let v = driver.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        assert_eq!(jstats(&j)[6], 0);
    }
}
