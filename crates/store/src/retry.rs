//! The retrying block-driver interposer — self-healing for *transient*
//! disk faults.
//!
//! Sits between the raw disk driver and the journal (see
//! [`crate::StackBuilder::retry`]) and re-issues failed operations with
//! bounded exponential backoff plus seeded jitter, advancing the virtual
//! clock while it waits so drills stay deterministic. Error classes:
//!
//! - **transient** — the error message contains `"transient"` (the class
//!   [`Disk::inject_transient_errors`] arms): retried up to
//!   [`RetryConfig::max_attempts`] total attempts; if every attempt
//!   fails, the *last* error surfaces unchanged.
//! - **permanent** — everything else, notably power failure and
//!   out-of-range sectors: fails fast, zero retries. Retrying a power
//!   loss would only burn the crash budget; retrying a bad address would
//!   never succeed.
//!
//! Only idempotent verbs are retried (`read`/`write`/`read_many`/
//! `write_many`/`flush`/`barrier` — sector writes are exactly-once at
//! the device, so re-issuing a failed one is safe). The transaction
//! verbs pass through untouched: a `commit` that consumed its buffered
//! writes must not be re-driven blindly; crash-atomic commit is the
//! journal's job, one layer up.
//!
//! [`Disk::inject_transient_errors`]: paramecium_machine::dev::disk::Disk::inject_transient_errors

use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

use paramecium_machine::{cost::Cycles, Machine};
use paramecium_obj::{ObjError, ObjRef, ObjResult, ObjectBuilder, TypeTag, Value};

use crate::vectored::TXN_WRITE_PARAMS;

/// Retry policy for the interposer.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Total attempts per operation (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Cycles,
    /// Backoff ceiling.
    pub max_backoff: Cycles,
    /// Seed for the jitter RNG (deterministic per stack).
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 5,
            base_backoff: 2_000,
            max_backoff: 200_000,
            seed: 0,
        }
    }
}

/// Per-error-class counters, exported on the `retry` interface.
#[derive(Default)]
struct RetryStats {
    /// Operations issued (not counting re-issues).
    ops: u64,
    /// Re-issues after a transient failure.
    retries: u64,
    /// Operations that failed transiently but eventually succeeded.
    recovered: u64,
    /// Operations that exhausted every attempt (error surfaced).
    exhausted: u64,
    /// Operations that failed permanently (fail-fast passthrough).
    permanent: u64,
}

struct RetryState {
    machine: Arc<Mutex<Machine>>,
    lower: ObjRef,
    cfg: RetryConfig,
    rng: StdRng,
    stats: RetryStats,
}

/// Transient faults are self-identifying by message; see the module docs
/// for why classification is textual (the `blockdev` interface has one
/// error type for every layer).
fn is_transient(e: &ObjError) -> bool {
    let msg = e.to_string();
    msg.contains("transient") && !msg.contains("power failure")
}

impl RetryState {
    /// Drives one operation through the retry loop. Backoff advances the
    /// virtual clock, so time-under-fault is visible to every layer and
    /// replays exactly.
    fn drive(&mut self, method: &'static str, args: &[Value]) -> ObjResult<Value> {
        self.stats.ops += 1;
        let mut attempt = 1u32;
        loop {
            match self.lower.invoke("blockdev", method, args) {
                Ok(v) => {
                    if attempt > 1 {
                        self.stats.recovered += 1;
                    }
                    return Ok(v);
                }
                Err(e) if is_transient(&e) && attempt < self.cfg.max_attempts => {
                    let exp = (attempt - 1).min(32);
                    let delay = self
                        .cfg
                        .base_backoff
                        .saturating_mul(1u64 << exp)
                        .min(self.cfg.max_backoff);
                    let jitter = if delay >= 4 {
                        self.rng.gen_range(0..delay / 4)
                    } else {
                        0
                    };
                    self.machine.lock().tick(delay + jitter);
                    self.stats.retries += 1;
                    attempt += 1;
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.stats.exhausted += 1;
                    } else {
                        self.stats.permanent += 1;
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// Builds the retry interposer over `lower`. Prefer
/// [`crate::StackBuilder::retry`], which slots it between driver and
/// journal.
pub fn make_retry(machine: Arc<Mutex<Machine>>, lower: ObjRef, cfg: RetryConfig) -> ObjRef {
    assert!(cfg.max_attempts >= 1, "retry needs at least one attempt");
    let rng = StdRng::seed_from_u64(cfg.seed);
    ObjectBuilder::new("retry-blockdev")
        .state(RetryState {
            machine,
            lower,
            cfg,
            rng,
            stats: RetryStats::default(),
        })
        .interface("blockdev", |i| {
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                this.with_state(|s: &mut RetryState| s.drive("read", args))
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| this.with_state(|s: &mut RetryState| s.drive("write", args)),
            )
            .method(
                "read_many",
                &[TypeTag::List],
                TypeTag::List,
                |this, args| this.with_state(|s: &mut RetryState| s.drive("read_many", args)),
            )
            .method(
                "write_many",
                &[TypeTag::List],
                TypeTag::Int,
                |this, args| this.with_state(|s: &mut RetryState| s.drive("write_many", args)),
            )
            .method("flush", &[], TypeTag::Int, |this, args| {
                this.with_state(|s: &mut RetryState| s.drive("flush", args))
            })
            .method("barrier", &[], TypeTag::Unit, |this, args| {
                this.with_state(|s: &mut RetryState| s.drive("barrier", args))
            })
            // Non-retryable passthroughs (see module docs).
            .method("sectors", &[], TypeTag::Int, |this, args| {
                this.with_state(|s: &mut RetryState| s.lower.invoke("blockdev", "sectors", args))
            })
            .method("stats", &[], TypeTag::List, |this, args| {
                this.with_state(|s: &mut RetryState| s.lower.invoke("blockdev", "stats", args))
            })
            .method("begin_txn", &[], TypeTag::Int, |this, args| {
                this.with_state(|s: &mut RetryState| s.lower.invoke("blockdev", "begin_txn", args))
            })
            .method(
                "txn_write",
                TXN_WRITE_PARAMS,
                TypeTag::Unit,
                |this, args| {
                    this.with_state(|s: &mut RetryState| {
                        s.lower.invoke("blockdev", "txn_write", args)
                    })
                },
            )
            .method("commit", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                this.with_state(|s: &mut RetryState| s.lower.invoke("blockdev", "commit", args))
            })
            .method("abort", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                this.with_state(|s: &mut RetryState| s.lower.invoke("blockdev", "abort", args))
            })
        })
        .interface("retry", |i| {
            i.method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut RetryState| {
                    let st = &s.stats;
                    Ok(Value::List(vec![
                        Value::Int(st.ops as i64),
                        Value::Int(st.retries as i64),
                        Value::Int(st.recovered as i64),
                        Value::Int(st.exhausted as i64),
                        Value::Int(st.permanent as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Indices into the `retry stats` list.
pub const RETRY_STAT_OPS: usize = 0;
/// Re-issues after transient failures.
pub const RETRY_STAT_RETRIES: usize = 1;
/// Transient failures that recovered.
pub const RETRY_STAT_RECOVERED: usize = 2;
/// Operations that exhausted all attempts.
pub const RETRY_STAT_EXHAUSTED: usize = 3;
/// Fail-fast permanent errors.
pub const RETRY_STAT_PERMANENT: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackBuilder;
    use bytes::Bytes;
    use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
    use paramecium_machine::dev::disk::{Disk, SECTOR_SIZE, SECTOR_TRANSFER_COST};

    fn setup(cfg: RetryConfig) -> (Arc<Mutex<Machine>>, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine.clone()));
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .retry(cfg)
            .build()
            .unwrap();
        (machine, stack.top)
    }

    fn inject(machine: &Arc<Mutex<Machine>>, n: u64) {
        machine
            .lock()
            .device_mut::<Disk>("disk")
            .unwrap()
            .inject_transient_errors(n);
    }

    fn retry_stats(top: &ObjRef) -> Vec<i64> {
        top.invoke("retry", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn transient_faults_recover_within_the_attempt_budget() {
        let (machine, top) = setup(RetryConfig::default());
        inject(&machine, 3);
        let t0 = machine.lock().now();
        top.invoke(
            "blockdev",
            "write",
            &[
                Value::Int(2),
                Value::Bytes(Bytes::from(vec![9; SECTOR_SIZE])),
            ],
        )
        .unwrap();
        // Three backoffs were slept on the virtual clock.
        assert!(machine.lock().now() > t0);
        let v = top.invoke("blockdev", "read", &[Value::Int(2)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 9);
        let st = retry_stats(&top);
        assert_eq!(st[RETRY_STAT_RETRIES], 3);
        assert_eq!(st[RETRY_STAT_RECOVERED], 1);
        assert_eq!(st[RETRY_STAT_EXHAUSTED], 0);
    }

    #[test]
    fn exhausted_attempts_surface_the_original_error() {
        let (machine, top) = setup(RetryConfig {
            max_attempts: 3,
            ..RetryConfig::default()
        });
        inject(&machine, 100);
        let err = top
            .invoke("blockdev", "read", &[Value::Int(0)])
            .unwrap_err();
        assert!(err.to_string().contains("transient"), "{err}");
        let st = retry_stats(&top);
        assert_eq!(st[RETRY_STAT_RETRIES], 2); // 3 attempts = 2 retries
        assert_eq!(st[RETRY_STAT_EXHAUSTED], 1);
        // Clear the window: the device still works afterwards.
        machine
            .lock()
            .device_mut::<Disk>("disk")
            .unwrap()
            .clear_faults();
        top.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
    }

    #[test]
    fn permanent_errors_fail_fast_without_retries() {
        let (machine, top) = setup(RetryConfig::default());
        // Out of range: no retry (the single attempt's transfer charge is
        // the only time that passes — no backoff sleeps).
        let t0 = machine.lock().now();
        assert!(top
            .invoke("blockdev", "read", &[Value::Int(1 << 40)])
            .is_err());
        assert!(machine.lock().now() - t0 <= SECTOR_TRANSFER_COST);
        // Power failure: fail fast too (retrying would burn crash state).
        machine.lock().arm_crash_after(1);
        let err = top
            .invoke("blockdev", "read", &[Value::Int(0)])
            .unwrap_err();
        assert!(err.to_string().contains("power failure"), "{err}");
        let st = retry_stats(&top);
        assert_eq!(st[RETRY_STAT_RETRIES], 0);
        assert_eq!(st[RETRY_STAT_PERMANENT], 2);
    }

    #[test]
    fn same_seed_same_backoff_schedule() {
        let elapsed = |seed: u64| {
            let (machine, top) = setup(RetryConfig {
                seed,
                ..RetryConfig::default()
            });
            inject(&machine, 3);
            let t0 = machine.lock().now();
            top.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
            let t1 = machine.lock().now();
            t1 - t0
        };
        assert_eq!(elapsed(7), elapsed(7));
        assert_ne!(elapsed(7), elapsed(8));
    }
}
