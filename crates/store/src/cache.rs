//! The shared block cache — the paper's canonical certified component.
//!
//! "Certified kernel components can include protocol stack
//! implementations that are shared between multiple non-cooperating
//! users, security modules, shared caches, etc. Trust and sharing are
//! important notions in an operating system kernel that are hard to
//! formalize and even harder to check automatically." (paper, section 4).
//!
//! A write-back LRU cache over any `blockdev` object. Because it exports
//! `blockdev` itself, it is installed by *interposition*: replace the
//! `/dev/disk` binding with the cache wrapping the old driver, and every
//! client — from any protection domain — transparently shares it. That
//! sharing is exactly why software verification is not enough (the cache
//! sees everyone's data) and certification is the paper's answer.

use std::collections::HashMap;

use paramecium_machine::dev::disk::SECTOR_SIZE;
use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

/// One cache line.
struct Line {
    data: [u8; SECTOR_SIZE],
    dirty: bool,
    /// LRU clock stamp.
    stamp: u64,
}

/// Cache instance state.
struct CacheState {
    backing: ObjRef,
    lines: HashMap<i64, Line>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl CacheState {
    fn touch(&mut self, sector: i64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(line) = self.lines.get_mut(&sector) {
            line.stamp = clock;
        }
    }

    /// Evicts the least-recently-used line if over capacity, writing it
    /// back if dirty. Returns the write-back (sector, data) if any.
    fn evict_if_needed(&mut self) -> Option<(i64, [u8; SECTOR_SIZE])> {
        if self.lines.len() <= self.capacity {
            return None;
        }
        let victim = *self
            .lines
            .iter()
            .min_by_key(|(_, l)| l.stamp)
            .map(|(s, _)| s)
            .expect("nonempty over-capacity cache");
        let line = self.lines.remove(&victim).expect("victim exists");
        if line.dirty {
            self.writebacks += 1;
            Some((victim, line.data))
        } else {
            None
        }
    }
}

/// Builds a block cache of `capacity` sectors over `backing` (any object
/// exporting `blockdev`).
///
/// The cache exports:
/// - the full `blockdev` interface (drop-in for the driver), and
/// - a `cache` interface: `stats() -> [hits, misses, writebacks, resident]`
///   and `flush() -> int` (write-backs performed).
pub fn make_block_cache(backing: ObjRef, capacity: usize) -> ObjRef {
    ObjectBuilder::new("block-cache")
        .state(CacheState {
            backing,
            lines: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        })
        .interface("blockdev", |i| {
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let sector = args[0].as_int()?;
                // Fast path: in cache.
                let cached = this.with_state(|s: &mut CacheState| {
                    Ok(match s.lines.get(&sector) {
                        Some(line) => {
                            s.hits += 1;
                            let data = line.data;
                            s.touch(sector);
                            Some(data)
                        }
                        None => {
                            s.misses += 1;
                            None
                        }
                    })
                })?;
                if let Some(data) = cached {
                    return Ok(Value::Bytes(bytes::Bytes::copy_from_slice(&data)));
                }
                // Miss: fetch outside the state lock (the backing store may
                // itself be an object graph).
                let backing = this.with_state(|s: &mut CacheState| Ok(s.backing.clone()))?;
                let fetched = backing.invoke("blockdev", "read", &[Value::Int(sector)])?;
                let bytes_in = fetched.as_bytes()?.clone();
                if bytes_in.len() != SECTOR_SIZE {
                    return Err(ObjError::failed("backing store returned a short sector"));
                }
                let mut data = [0u8; SECTOR_SIZE];
                data.copy_from_slice(&bytes_in);
                let evicted = this.with_state(|s: &mut CacheState| {
                    s.clock += 1;
                    let stamp = s.clock;
                    s.lines.insert(
                        sector,
                        Line {
                            data,
                            dirty: false,
                            stamp,
                        },
                    );
                    Ok(s.evict_if_needed())
                })?;
                if let Some((victim, vdata)) = evicted {
                    backing.invoke(
                        "blockdev",
                        "write",
                        &[
                            Value::Int(victim),
                            Value::Bytes(bytes::Bytes::copy_from_slice(&vdata)),
                        ],
                    )?;
                }
                Ok(Value::Bytes(bytes::Bytes::copy_from_slice(&data)))
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let sector = args[0].as_int()?;
                    let incoming = args[1].as_bytes()?;
                    if incoming.len() != SECTOR_SIZE {
                        return Err(ObjError::failed(format!(
                            "sector writes must be exactly {SECTOR_SIZE} bytes"
                        )));
                    }
                    let mut data = [0u8; SECTOR_SIZE];
                    data.copy_from_slice(incoming);
                    let (backing, evicted) = this.with_state(|s: &mut CacheState| {
                        s.clock += 1;
                        let stamp = s.clock;
                        match s.lines.get_mut(&sector) {
                            Some(line) => {
                                s.hits += 1;
                                line.data = data;
                                line.dirty = true;
                                line.stamp = stamp;
                            }
                            None => {
                                s.misses += 1;
                                s.lines.insert(
                                    sector,
                                    Line {
                                        data,
                                        dirty: true,
                                        stamp,
                                    },
                                );
                            }
                        }
                        Ok((s.backing.clone(), s.evict_if_needed()))
                    })?;
                    if let Some((victim, vdata)) = evicted {
                        backing.invoke(
                            "blockdev",
                            "write",
                            &[
                                Value::Int(victim),
                                Value::Bytes(bytes::Bytes::copy_from_slice(&vdata)),
                            ],
                        )?;
                    }
                    Ok(Value::Unit)
                },
            )
            .method("sectors", &[], TypeTag::Int, |this, _| {
                let backing = this.with_state(|s: &mut CacheState| Ok(s.backing.clone()))?;
                backing.invoke("blockdev", "sectors", &[])
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                let backing = this.with_state(|s: &mut CacheState| Ok(s.backing.clone()))?;
                backing.invoke("blockdev", "stats", &[])
            })
        })
        .interface("cache", |i| {
            i.method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut CacheState| {
                    Ok(Value::List(vec![
                        Value::Int(s.hits as i64),
                        Value::Int(s.misses as i64),
                        Value::Int(s.writebacks as i64),
                        Value::Int(s.lines.len() as i64),
                    ]))
                })
            })
            .method("flush", &[], TypeTag::Int, |this, _| {
                let (backing, dirty) = this.with_state(|s: &mut CacheState| {
                    let dirty: Vec<(i64, [u8; SECTOR_SIZE])> = s
                        .lines
                        .iter_mut()
                        .filter(|(_, l)| l.dirty)
                        .map(|(sec, l)| {
                            l.dirty = false;
                            (*sec, l.data)
                        })
                        .collect();
                    s.writebacks += dirty.len() as u64;
                    Ok((s.backing.clone(), dirty))
                })?;
                let count = dirty.len() as i64;
                for (sector, data) in dirty {
                    backing.invoke(
                        "blockdev",
                        "write",
                        &[
                            Value::Int(sector),
                            Value::Bytes(bytes::Bytes::copy_from_slice(&data)),
                        ],
                    )?;
                }
                Ok(Value::Int(count))
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::make_disk_driver;
    use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
    use paramecium_machine::dev::disk::SECTOR_TRANSFER_COST;
    use paramecium_machine::Machine;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn setup(capacity: usize) -> (Arc<MemService>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let driver = make_disk_driver(&mem, KERNEL_DOMAIN).unwrap();
        let cache = make_block_cache(driver.clone(), capacity);
        (mem, driver, cache)
    }

    fn sector_of(byte: u8) -> Value {
        Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
    }

    #[test]
    fn hot_reads_skip_the_disk() {
        let (mem, _driver, cache) = setup(8);
        cache
            .invoke("blockdev", "write", &[Value::Int(3), sector_of(7)])
            .unwrap();
        // First read: served from the (write-allocated) cache line.
        let t0 = mem.machine().lock().now();
        for _ in 0..10 {
            let v = cache.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 7);
        }
        // Ten hot reads cost less than one disk transfer.
        assert!(mem.machine().lock().now() - t0 < SECTOR_TRANSFER_COST);
        let stats = cache.invoke("cache", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap().to_vec();
        assert_eq!(s[0], Value::Int(10)); // 10 read hits.
        assert_eq!(s[1], Value::Int(1)); // The initial write-allocate miss.
    }

    #[test]
    fn writeback_happens_on_eviction_only() {
        let (_mem, driver, cache) = setup(2);
        for sec in 0..2i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(sec as u8)],
                )
                .unwrap();
        }
        // Nothing on disk yet: write-back cache.
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(dstats.as_list().unwrap()[1], Value::Int(0));
        // Third write evicts the LRU line (sector 0) to disk.
        cache
            .invoke("blockdev", "write", &[Value::Int(2), sector_of(2)])
            .unwrap();
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(dstats.as_list().unwrap()[1], Value::Int(1));
        // And the evicted data is really there.
        let v = driver.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let (_mem, _driver, cache) = setup(2);
        cache
            .invoke("blockdev", "write", &[Value::Int(0), sector_of(0)])
            .unwrap();
        cache
            .invoke("blockdev", "write", &[Value::Int(1), sector_of(1)])
            .unwrap();
        // Touch 0 so 1 becomes LRU.
        cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        cache
            .invoke("blockdev", "write", &[Value::Int(2), sector_of(2)])
            .unwrap();
        // 0 still resident (hit), 1 evicted (miss).
        let before: Vec<Value> = cache
            .invoke("cache", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        let after_hit: Vec<Value> = cache
            .invoke("cache", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(
            after_hit[0].as_int().unwrap(),
            before[0].as_int().unwrap() + 1
        );
        cache.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        let after_miss: Vec<Value> = cache
            .invoke("cache", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(
            after_miss[1].as_int().unwrap(),
            after_hit[1].as_int().unwrap() + 1
        );
    }

    #[test]
    fn flush_writes_all_dirty_lines() {
        let (_mem, driver, cache) = setup(8);
        for sec in 0..5i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(0xC0 + sec as u8)],
                )
                .unwrap();
        }
        let flushed = cache.invoke("cache", "flush", &[]).unwrap();
        assert_eq!(flushed, Value::Int(5));
        for sec in 0..5i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0xC0 + sec as u8);
        }
        // Second flush is a no-op.
        assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn caches_stack_like_any_blockdev() {
        let (_mem, _driver, l2) = setup(16);
        let l1 = make_block_cache(l2.clone(), 4);
        l1.invoke("blockdev", "write", &[Value::Int(9), sector_of(0x99)])
            .unwrap();
        let v = l1.invoke("blockdev", "read", &[Value::Int(9)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x99);
    }

    #[test]
    fn read_through_miss_populates_from_disk() {
        let (_mem, driver, cache) = setup(4);
        driver
            .invoke("blockdev", "write", &[Value::Int(7), sector_of(0x42)])
            .unwrap();
        let v = cache.invoke("blockdev", "read", &[Value::Int(7)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x42);
        // Now it hits.
        cache.invoke("blockdev", "read", &[Value::Int(7)]).unwrap();
        let stats = cache.invoke("cache", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap().to_vec();
        assert_eq!(s[0], Value::Int(1));
        assert_eq!(s[1], Value::Int(1));
    }
}
