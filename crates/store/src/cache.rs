//! The shared block cache — the paper's canonical certified component.
//!
//! "Certified kernel components can include protocol stack
//! implementations that are shared between multiple non-cooperating
//! users, security modules, shared caches, etc. Trust and sharing are
//! important notions in an operating system kernel that are hard to
//! formalize and even harder to check automatically." (paper, section 4).
//!
//! A write-back LRU cache over any `blockdev` object. Because it exports
//! `blockdev` itself, it is installed by *interposition*: replace the
//! `/dev/disk` binding with the cache wrapping the old driver, and every
//! client — from any protection domain — transparently shares it. That
//! sharing is exactly why software verification is not enough (the cache
//! sees everyone's data) and certification is the paper's answer.
//!
//! # Architecture (PR 5)
//!
//! The cache is a sharded pipeline built for the "serve millions" load
//! profile:
//!
//! - **Sharding.** Lines are partitioned `N` ways by sector
//!   (`sector % N`). Each shard owns an independent index, LRU list and
//!   hit/miss/writeback counters; the `cache` interface aggregates them.
//!   One object still exports `blockdev`, so interposition and
//!   certification are unchanged.
//! - **O(1) LRU.** Each shard keeps its lines in a slot arena threaded
//!   with an index-based intrusive doubly-linked list (no unsafe, no
//!   per-node allocation): touch, insert and evict are all O(1), where
//!   the seed implementation paid an O(n) min-scan per eviction.
//! - **Zero-copy hits.** Lines store [`bytes::Bytes`]; a hit returns a
//!   ref-counted clone of the resident buffer — no 512-byte copies on
//!   the hot path (the seed copied twice per hit).
//! - **Coalesced writeback.** Eviction and `flush` gather dirty lines
//!   into sector-sorted (elevator-order) batches and issue one
//!   vectorized `write_many` to the backing store, which charges the
//!   amortised batch transfer cost — instead of one full-price object
//!   invocation per sector. An eviction opportunistically takes up to
//!   [`EVICTION_WRITEBACK_BATCH`] dirty lines from the cold end of the
//!   LRU with it, so write-heavy scans retire their writeback debt in
//!   bursts.
//! - **Durability.** Dirty lines are marked clean only *after* the
//!   backing write succeeds, checked against a per-line version so a
//!   line rewritten while its writeback was in flight stays dirty. A
//!   failed backing write loses nothing: flush leaves every line dirty
//!   and eviction reinserts the victim.
//! - **Strict capacity.** Eviction happens *before* insertion, so the
//!   cache never holds more than `capacity` lines, even transiently.
//! - **Per-shard locking (PR 7).** Each shard sits behind its own spin
//!   [`TryLock`] instead of the object's exclusive instance state, so
//!   concurrent clients on real OS threads (the world pool) proceed in
//!   parallel on disjoint shards. Uncontended acquisition is one atomic
//!   swap — the same cost the old `with_state` path paid — and no lock
//!   is ever held across a backing-store invocation. Multi-shard
//!   operations lock one shard at a time: under concurrency they are
//!   atomic per shard, not across the cache (single-client behaviour is
//!   unchanged).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use parking_lot::Mutex;

use paramecium_machine::dev::disk::SECTOR_SIZE;
use paramecium_obj::{
    ObjError, ObjRef, ObjResult, ObjectBuilder, TryLock, TryLockGuard, TypeTag, Value,
};

use crate::vectored::{
    pairs_arg, parse_pairs, parse_txn, parse_txn_write, sectors_arg, TXN_WRITE_PARAMS,
};

/// Multiplicative hasher for sector numbers (Fibonacci mixing). Sector
/// keys are small trusted integers, so the index doesn't need SipHash's
/// flooding resistance — and on the warmed hit path the default hasher
/// costs more than the rest of the lookup combined.
#[derive(Default)]
struct SectorHasher(u64);

impl Hasher for SectorHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type SectorMap<V> = HashMap<i64, V, BuildHasherDefault<SectorHasher>>;
type SectorSet = std::collections::HashSet<i64, BuildHasherDefault<SectorHasher>>;

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Most dirty lines one eviction writeback will coalesce (the victim plus
/// opportunistic extras from the cold end of the LRU list). Bounded so a
/// single miss never turns into an unbounded flush.
pub const EVICTION_WRITEBACK_BATCH: usize = 8;

/// One cache line. LRU threading lives in the shard's parallel `links`
/// array so the hot touch path only writes the compact link table, not
/// three of these ~48-byte entries.
struct Line {
    sector: i64,
    data: Bytes,
    dirty: bool,
    /// Drawn from the shard's monotonic `version_clock` on every insert
    /// and overwrite. A completed writeback only clears the dirty bit if
    /// the version still matches the snapshot it wrote, so a line
    /// rewritten (or evicted and re-inserted) mid-writeback stays dirty
    /// (durability).
    version: u64,
}

/// Intrusive doubly-linked list node: `(prev, next)` slot indices.
type Link = (u32, u32);

/// One shard: an independent slot arena + hash index + LRU list + stats.
struct Shard {
    /// sector → slot index.
    map: SectorMap<u32>,
    /// Slot arena; freed slots are recycled via `free`.
    slots: Vec<Line>,
    /// LRU threading parallel to `slots`: 8 bytes per line keeps the
    /// touch path's writes inside a handful of cache lines.
    links: Vec<Link>,
    free: Vec<u32>,
    /// Most-recently-used end of the intrusive list.
    head: u32,
    /// Least-recently-used end (eviction candidate).
    tail: u32,
    capacity: usize,
    /// Monotonic source for line versions. Never reused — a re-inserted
    /// sector gets a fresh version, so an in-flight writeback snapshot
    /// can never mistake new data for the bytes it wrote.
    version_clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: SectorMap::default(),
            slots: Vec::new(),
            links: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
            version_clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Next unique line version.
    fn next_version(&mut self) -> u64 {
        self.version_clock += 1;
        self.version_clock
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = self.links[idx as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.links[prev as usize].1 = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.links[next as usize].0 = prev;
        }
    }

    fn link_front(&mut self, idx: u32) {
        let old = self.head;
        self.links[idx as usize] = (NIL, old);
        if old == NIL {
            self.tail = idx;
        } else {
            self.links[old as usize].0 = idx;
        }
        self.head = idx;
    }

    /// O(1) LRU touch: move the slot to the MRU end.
    #[inline]
    fn touch(&mut self, idx: u32) {
        if self.head != idx {
            self.unlink(idx);
            self.link_front(idx);
        }
    }

    /// Inserts a new line at the MRU end. The caller guarantees the sector
    /// is absent and the shard has room.
    fn insert(&mut self, sector: i64, data: Bytes, dirty: bool) {
        debug_assert!(self.len() < self.capacity);
        let line = Line {
            sector,
            data,
            dirty,
            version: self.next_version(),
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = line;
                i
            }
            None => {
                self.slots.push(line);
                self.links.push((NIL, NIL));
                (self.slots.len() - 1) as u32
            }
        };
        self.link_front(idx);
        self.map.insert(sector, idx);
    }

    /// Removes the LRU line, returning `(sector, data, dirty)`.
    fn pop_lru(&mut self) -> Option<(i64, Bytes, bool)> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        self.free.push(idx);
        let line = &mut self.slots[idx as usize];
        self.map.remove(&line.sector);
        Some((line.sector, std::mem::take(&mut line.data), line.dirty))
    }

    /// Snapshots up to `max` dirty lines starting from the LRU end,
    /// without clearing their dirty bits (that happens only after the
    /// backing write succeeds, version-checked).
    fn dirty_from_lru(&self, max: usize) -> Vec<(i64, Bytes, u64)> {
        let mut out = Vec::new();
        let mut idx = self.tail;
        while idx != NIL && out.len() < max {
            let l = &self.slots[idx as usize];
            if l.dirty {
                out.push((l.sector, l.data.clone(), l.version));
            }
            idx = self.links[idx as usize].0;
        }
        out
    }

    /// Snapshots every dirty line in the shard (for `flush`).
    fn all_dirty(&self) -> Vec<(i64, Bytes, u64)> {
        self.map
            .values()
            .filter_map(|&idx| {
                let l = &self.slots[idx as usize];
                l.dirty.then(|| (l.sector, l.data.clone(), l.version))
            })
            .collect()
    }

    /// Clears the dirty bit of `sector` if still resident at `version`.
    fn mark_clean_if_unchanged(&mut self, sector: i64, version: u64) {
        if let Some(&idx) = self.map.get(&sector) {
            let line = &mut self.slots[idx as usize];
            if line.version == version {
                line.dirty = false;
            }
        }
    }

    /// Drops `sector`'s line if it is resident and *clean*. Used when a
    /// committed transaction rewrites the sector below the cache: the
    /// resident copy is stale and must not serve another hit. A dirty
    /// line survives — it holds a direct client write the cache has not
    /// acknowledged to the backing store yet, and dropping it would lose
    /// acknowledged data.
    fn invalidate_clean(&mut self, sector: i64) {
        if let Some(&idx) = self.map.get(&sector) {
            if !self.slots[idx as usize].dirty {
                self.map.remove(&sector);
                self.unlink(idx);
                self.free.push(idx);
                self.slots[idx as usize].data = Bytes::new();
            }
        }
    }
}

/// Shared cache instance: the backing `blockdev`, the shard array — each
/// shard behind its own spin lock — and the lazily fetched device size.
///
/// Every method closure captures this as an `Arc`, bypassing the object's
/// exclusive instance state entirely: two clients touching different
/// shards never serialize, which is what lets one shared cache serve many
/// concurrent worlds (the world pool) without a global lock. The per-shard
/// invariants are unchanged from the exclusive design — evict-before-
/// insert, dirty lines cleaned only after a version-checked successful
/// backing write, failed batches reinsert their victims. The one semantic
/// narrowing under *concurrent* clients: multi-shard operations
/// (`read_many`, `write_many`, `flush`, `stats`) lock one shard at a
/// time, so they are atomic per shard rather than across the whole cache;
/// single-client behaviour is bit-identical to the old global-lock
/// design.
struct CacheShared {
    backing: ObjRef,
    /// Always a power-of-two length so routing is a mask, not a divide.
    /// Each shard is independently locked; the uncontended acquire is one
    /// atomic swap, so a warmed single-client hit costs what it did under
    /// the exclusive-state design.
    shards: Vec<TryLock<Shard>>,
    shard_mask: u64,
    /// Per-shard line capacity (uniform across shards), readable without
    /// any lock for batch planning.
    per_shard: usize,
    /// Largest batch the backing store accepts as one `write_many` —
    /// a journal below bounds it by its log capacity (its `write_limit`
    /// method); a backing without the method is unbounded
    /// (`usize::MAX`). Probed once at build time. Every internal
    /// writeback path chunks to this, so a flush of more dirty lines
    /// than one journal transaction can carry degrades into several
    /// transactions instead of an unservable oversized one that would
    /// leave the lines dirty forever.
    write_limit: usize,
    /// Backing device size, fetched lazily on the first dirty write and
    /// used to reject out-of-range writes up front — an unwritable sector
    /// must never become a dirty line, or it would poison every later
    /// all-or-nothing writeback batch.
    total_sectors: OnceLock<i64>,
    /// Sectors written by each forwarded open transaction, so a
    /// successful commit can invalidate the stale resident copies.
    txn_sectors: Mutex<HashMap<i64, Vec<i64>>>,
}

impl CacheShared {
    #[inline]
    fn shard_of(&self, sector: i64) -> usize {
        (sector as u64 & self.shard_mask) as usize
    }

    /// Locks the shard owning `sector`.
    #[inline]
    fn shard(&self, sector: i64) -> TryLockGuard<'_, Shard> {
        self.shards[self.shard_of(sector)].lock()
    }

    /// The backing device's sector count (cached after the first query).
    fn backing_sectors(&self) -> ObjResult<i64> {
        if let Some(&n) = self.total_sectors.get() {
            return Ok(n);
        }
        let n = self.backing.invoke("blockdev", "sectors", &[])?.as_int()?;
        // A racing fetch computed the same value; first writer wins.
        let _ = self.total_sectors.set(n);
        Ok(n)
    }

    /// Rejects sectors the backing store could never write back.
    fn check_writable_sector(&self, sector: i64) -> ObjResult<()> {
        if sector < 0 {
            return Err(ObjError::failed("negative sector"));
        }
        let total = self.backing_sectors()?;
        if sector >= total {
            return Err(ObjError::failed(format!(
                "sector {sector} out of range (device has {total})"
            )));
        }
        Ok(())
    }
}

/// Writes an internal writeback `batch` (sector-sorted by the caller)
/// to the backing store, split into sub-batches no larger than the
/// backing's atomic-write limit (see `CacheShared::write_limit`).
/// Writeback needs every sector durable, not one atomic unit, so the
/// split never weakens a guarantee — client-visible atomicity comes
/// from the transaction verbs, which bypass this path entirely. Against
/// an unbounded backing this is exactly one `write_many`.
fn write_back_chunked(shared: &CacheShared, batch: &[(i64, Bytes)]) -> ObjResult<()> {
    for chunk in batch.chunks(shared.write_limit) {
        shared
            .backing
            .invoke("blockdev", "write_many", &[pairs_arg(chunk.to_vec())])?;
    }
    Ok(())
}

/// Outcome of one locked reservation attempt in [`insert_line`].
enum Reserve {
    /// The line is resident (updated in place or inserted).
    Done,
    /// The shard was full of dirty lines: `victims` were evicted (removed)
    /// and must be written back or reinserted; `extras` are still-resident
    /// dirty lines coalesced into the same batch.
    NeedWriteback {
        victims: Vec<(i64, Bytes)>,
        extras: Vec<(i64, Bytes, u64)>,
    },
}

/// One locked reservation attempt for [`insert_line`]: resolves the
/// sector in place when possible, otherwise evicts and reports what needs
/// writing back. Never invokes the backing store (the shard lock is held).
fn reserve_line(sh: &mut Shard, sector: i64, data: &Bytes, dirty: bool, count: bool) -> Reserve {
    if let Some(&idx) = sh.map.get(&sector) {
        if count {
            sh.hits += 1;
        }
        if dirty {
            let version = sh.next_version();
            let line = &mut sh.slots[idx as usize];
            line.data = data.clone();
            line.dirty = true;
            line.version = version;
        }
        sh.touch(idx);
        return Reserve::Done;
    }
    if count {
        sh.misses += 1;
    }
    if sh.len() < sh.capacity {
        sh.insert(sector, data.clone(), dirty);
        return Reserve::Done;
    }
    // Full: evict-before-insert. Clean victims just drop; dirty ones must
    // reach the backing store first.
    let mut victims = Vec::new();
    while sh.len() >= sh.capacity {
        let (vsec, vdata, vdirty) = sh.pop_lru().expect("full shard has an LRU line");
        if vdirty {
            victims.push((vsec, vdata));
        }
    }
    if victims.is_empty() {
        sh.insert(sector, data.clone(), dirty);
        return Reserve::Done;
    }
    let extras = sh.dirty_from_lru(EVICTION_WRITEBACK_BATCH.saturating_sub(victims.len()));
    Reserve::NeedWriteback { victims, extras }
}

/// Makes `sector` resident with `data`.
///
/// With `dirty` the line is (over)written and marked dirty (a client
/// write); without it the call only *fills* — an already-resident line is
/// left untouched so a fetch completing late can never clobber newer
/// client data. `count_stats` records one hit or miss (vectorized paths
/// and internal retries manage their own accounting).
///
/// Eviction happens *before* insertion — the shard never exceeds its
/// capacity, even transiently — and dirty victims leave through a
/// sector-sorted batched `write_many` together with up to
/// [`EVICTION_WRITEBACK_BATCH`] cold dirty lines. If the backing write
/// fails the victims are reinserted and the error surfaces to the caller:
/// no acknowledged write is ever dropped. Only the one shard owning
/// `sector` is ever locked, and never across a backing invocation.
fn insert_line(
    shared: &CacheShared,
    sector: i64,
    data: &Bytes,
    dirty: bool,
    count_stats: bool,
) -> ObjResult<()> {
    let mut count = count_stats;
    loop {
        let step = reserve_line(&mut shared.shard(sector), sector, data, dirty, count);
        count = false;
        let (victims, extras) = match step {
            Reserve::Done => return Ok(()),
            Reserve::NeedWriteback { victims, extras } => (victims, extras),
        };
        let mut batch: Vec<(i64, Bytes)> = victims
            .iter()
            .cloned()
            .chain(extras.iter().map(|(sec, d, _)| (*sec, d.clone())))
            .collect();
        batch.sort_unstable_by_key(|(sec, _)| *sec);
        let written = batch.len() as u64;
        match write_back_chunked(shared, &batch) {
            Ok(_) => {
                let mut sh = shared.shard(sector);
                sh.writebacks += written;
                for (sec, _, version) in &extras {
                    sh.mark_clean_if_unchanged(*sec, *version);
                }
                // Loop around: the shard now has room for the insert.
            }
            Err(e) => {
                // Durability: the backing write failed, so the evicted
                // dirty data goes back into the cache and the caller sees
                // the error. (The slot freed by the eviction is still
                // free, so reinsertion cannot overflow.)
                let mut sh = shared.shard(sector);
                for (vsec, vdata) in victims {
                    if !sh.map.contains_key(&vsec) && sh.len() < sh.capacity {
                        sh.insert(vsec, vdata, true);
                    }
                }
                return Err(e);
            }
        }
    }
}

fn cache_read(shared: &CacheShared, sector: i64) -> ObjResult<Value> {
    // Fast path: a hit returns a ref-counted clone of the resident
    // buffer — no byte copy, one O(1) LRU touch, one shard lock.
    let hit = {
        let mut sh = shared.shard(sector);
        match sh.map.get(&sector).copied() {
            Some(idx) => {
                sh.hits += 1;
                sh.touch(idx);
                Some(sh.slots[idx as usize].data.clone())
            }
            None => {
                sh.misses += 1;
                None
            }
        }
    };
    if let Some(data) = hit {
        return Ok(Value::Bytes(data));
    }
    // Miss: fetch with no lock held (the backing store may itself be an
    // object graph).
    let fetched = shared
        .backing
        .invoke("blockdev", "read", &[Value::Int(sector)])?;
    let data = fetched.as_bytes()?.clone();
    if data.len() != SECTOR_SIZE {
        return Err(ObjError::failed("backing store returned a short sector"));
    }
    insert_line(shared, sector, &data, false, false)?;
    Ok(Value::Bytes(data))
}

fn cache_read_many(shared: &CacheShared, sectors: &[Value]) -> ObjResult<Value> {
    // One pass builds the result list in place, re-locking only when the
    // owning shard changes — a single-shard cache pays exactly one lock
    // for the whole batch, and runs of shard-local sectors amortize
    // theirs. At most one shard lock is ever held (the previous guard is
    // dropped before the next acquire), so concurrent batches cannot
    // deadlock however their shard orders interleave. Hits resolve to a
    // zero-copy clone immediately, misses leave a `Unit` placeholder.
    let mut results: Vec<Value> = Vec::with_capacity(sectors.len());
    let mut missing: Vec<i64> = Vec::new();
    {
        // Take every shard guard up front, in ascending index order —
        // the one multi-lock site in the cache, and every other path
        // holds at most one shard at a time, so no acquisition cycle can
        // form. This keeps the hit pass identical to the single-lock
        // original (one pass, no per-sector lock traffic, no grouping
        // allocations): the whole batch pays `nshards` uncontended
        // atomic swaps, not one per sector. Guards drop before the miss
        // path runs, so no shard lock is held across a backing
        // invocation.
        let mut guards: Vec<TryLockGuard<'_, Shard>> =
            shared.shards.iter().map(|s| s.lock()).collect();
        for v in sectors {
            let sec = v.as_int()?;
            let sh = &mut guards[shared.shard_of(sec)];
            match sh.map.get(&sec).copied() {
                Some(slot) => {
                    sh.hits += 1;
                    sh.touch(slot);
                    results.push(Value::Bytes(sh.slots[slot as usize].data.clone()));
                }
                None => {
                    sh.misses += 1;
                    missing.push(sec);
                    results.push(Value::Unit);
                }
            }
        }
    }
    if !missing.is_empty() {
        // One vectorized backing fetch for all misses, in elevator order.
        // (Negative sectors land here too and are rejected by the
        // backing driver's own validation.)
        missing.sort_unstable();
        missing.dedup();
        let fetched = shared.backing.invoke(
            "blockdev",
            "read_many",
            &[sectors_arg(missing.iter().copied())],
        )?;
        let list = fetched.as_list()?;
        if list.len() != missing.len() {
            return Err(ObjError::failed("backing read_many returned a short batch"));
        }
        let mut by_sector: HashMap<i64, Bytes> = HashMap::with_capacity(missing.len());
        for (&sec, v) in missing.iter().zip(list.iter()) {
            let data = v.as_bytes()?.clone();
            if data.len() != SECTOR_SIZE {
                return Err(ObjError::failed("backing store returned a short sector"));
            }
            insert_line(shared, sec, &data, false, false)?;
            by_sector.insert(sec, data);
        }
        for (pos, v) in sectors.iter().enumerate() {
            if matches!(results[pos], Value::Unit) {
                results[pos] = Value::Bytes(by_sector[&v.as_int()?].clone());
            }
        }
    }
    Ok(Value::List(results))
}

/// Applies a validated batch of `(sector, data)` writes with the
/// driver's no-partial-effects contract: shard space for every batch
/// sector is reserved (evicting, writing dirty victims back) *before*
/// any pair is cached, so a failed eviction writeback surfaces with the
/// cache unchanged; the apply pass then locks each shard once and cannot
/// fail for a single client. Batches too large for their shards bypass
/// the cache as one streaming write-through (resident lines are
/// refreshed in place).
fn cache_write_many(shared: &CacheShared, pairs: &[(i64, Bytes)]) -> ObjResult<Value> {
    if pairs.is_empty() {
        return Ok(Value::Int(0));
    }
    let n = pairs.len() as i64;
    // Distinct batch sectors per shard decide whether the batch can be
    // fully resident after the apply pass. Capacities are fixed, so this
    // plan needs no locks at all.
    let mut in_batch = SectorSet::default();
    let mut shard_sectors: Vec<Vec<i64>> = vec![Vec::new(); shared.shards.len()];
    for (sec, _) in pairs {
        if in_batch.insert(*sec) {
            shard_sectors[shared.shard_of(*sec)].push(*sec);
        }
    }
    let fits = shard_sectors.iter().all(|s| s.len() <= shared.per_shard);
    if !fits {
        // Streaming write-through: one sector-sorted backing write (a
        // stable sort keeps duplicate-sector order, so last-wins is
        // preserved — chunks land in order, so it survives the split
        // too), then refresh any resident lines as clean.
        let mut batch: Vec<(i64, Bytes)> = pairs.to_vec();
        batch.sort_by_key(|(sec, _)| *sec);
        write_back_chunked(shared, &batch)?;
        let mut by_shard: Vec<Vec<&(i64, Bytes)>> = vec![Vec::new(); shared.shards.len()];
        for pair in pairs {
            by_shard[shared.shard_of(pair.0)].push(pair);
        }
        for (i, entries) in by_shard.iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut sh = shared.shards[i].lock();
            for (sec, data) in entries.iter().copied() {
                if let Some(idx) = sh.map.get(sec).copied() {
                    let version = sh.next_version();
                    let line = &mut sh.slots[idx as usize];
                    line.data = data.clone();
                    line.dirty = false;
                    line.version = version;
                    sh.touch(idx);
                }
            }
        }
        return Ok(Value::Int(n));
    }
    // Reserve: evict until every shard can absorb its batch sectors.
    // Evicting a batch-resident line just converts it into demand (it is
    // re-inserted by the apply pass), so progress comes from non-batch
    // victims; termination holds because each pop removes one line. Each
    // shard is locked once per pass, never across the backing write.
    loop {
        let mut victims: Vec<(i64, Bytes)> = Vec::new();
        for (i, secs) in shard_sectors.iter().enumerate() {
            if secs.is_empty() {
                continue;
            }
            let mut sh = shared.shards[i].lock();
            let mut need = secs.iter().filter(|sec| !sh.map.contains_key(sec)).count();
            while sh.len() + need > sh.capacity {
                let (vsec, vdata, vdirty) =
                    sh.pop_lru().expect("over-demand shard has an LRU line");
                if in_batch.contains(&vsec) {
                    need += 1;
                }
                if vdirty {
                    victims.push((vsec, vdata));
                }
            }
        }
        if victims.is_empty() {
            break;
        }
        let mut batch = victims.clone();
        batch.sort_unstable_by_key(|(sec, _)| *sec);
        match write_back_chunked(shared, &batch) {
            Ok(_) => {
                for (sec, _) in &victims {
                    shared.shard(*sec).writebacks += 1;
                }
                // Loop re-checks demand in case the backing re-entered
                // the cache during the writeback.
            }
            Err(e) => {
                // Nothing was applied yet: reinsert the dirty victims and
                // surface the error — the batch has no partial effects.
                for (vsec, vdata) in victims {
                    let mut sh = shared.shard(vsec);
                    if !sh.map.contains_key(&vsec) && sh.len() < sh.capacity {
                        sh.insert(vsec, vdata, true);
                    }
                }
                return Err(e);
            }
        }
    }
    // Apply: space is reserved, so for a single client this pass cannot
    // evict and cannot fail. A concurrent client racing the same shard
    // could steal reserved space between the passes; the defensive
    // eviction below keeps `resident ≤ capacity` and writes any displaced
    // dirty line back afterwards.
    let mut by_shard: Vec<Vec<&(i64, Bytes)>> = vec![Vec::new(); shared.shards.len()];
    for pair in pairs {
        by_shard[shared.shard_of(pair.0)].push(pair);
    }
    let mut displaced: Vec<(i64, Bytes)> = Vec::new();
    for (i, entries) in by_shard.iter().enumerate() {
        if entries.is_empty() {
            continue;
        }
        let mut sh = shared.shards[i].lock();
        for (sec, data) in entries.iter().copied() {
            match sh.map.get(sec).copied() {
                Some(idx) => {
                    sh.hits += 1;
                    let version = sh.next_version();
                    let line = &mut sh.slots[idx as usize];
                    line.data = data.clone();
                    line.dirty = true;
                    line.version = version;
                    sh.touch(idx);
                }
                None => {
                    sh.misses += 1;
                    while sh.len() >= sh.capacity {
                        let (vsec, vdata, vdirty) =
                            sh.pop_lru().expect("full shard has an LRU line");
                        if vdirty {
                            displaced.push((vsec, vdata));
                        }
                    }
                    sh.insert(*sec, data.clone(), true);
                }
            }
        }
    }
    if !displaced.is_empty() {
        displaced.sort_unstable_by_key(|(sec, _)| *sec);
        write_back_chunked(shared, &displaced)?;
        for (sec, _) in &displaced {
            shared.shard(*sec).writebacks += 1;
        }
    }
    Ok(Value::Int(n))
}

fn cache_flush(shared: &CacheShared) -> ObjResult<Value> {
    // Snapshot every dirty line (without clearing — lines are marked
    // clean only after the backing write succeeds), one shard at a time.
    let mut dirty: Vec<(i64, Bytes, u64)> = Vec::new();
    for lock in &shared.shards {
        dirty.extend(lock.lock().all_dirty());
    }
    if dirty.is_empty() {
        return Ok(Value::Int(0));
    }
    // Elevator order, chunked to the backing's atomic-write limit: a
    // journal below takes each chunk as one log transaction, so a flush
    // of more dirty lines than its log can hold in a single record
    // still drains completely. Lines are marked clean per landed chunk,
    // so a failure mid-flush leaves exactly the unwritten lines dirty
    // for the retry.
    dirty.sort_unstable_by_key(|(sec, _, _)| *sec);
    for chunk in dirty.chunks(shared.write_limit) {
        let batch: Vec<(i64, Bytes)> = chunk
            .iter()
            .map(|(sec, data, _)| (*sec, data.clone()))
            .collect();
        shared
            .backing
            .invoke("blockdev", "write_many", &[pairs_arg(batch)])?;
        for (sec, _, version) in chunk {
            // Clean bits only now that the write succeeded, attributing
            // the writeback to the shard that owned the line.
            let mut sh = shared.shard(*sec);
            sh.mark_clean_if_unchanged(*sec, *version);
            sh.writebacks += 1;
        }
    }
    Ok(Value::Int(dirty.len() as i64))
}

/// Builds a single-shard block cache of `capacity` sectors over `backing`
/// (any object exporting `blockdev`).
#[deprecated(note = "use store::StackBuilder::on(backing).cache(capacity).build()")]
pub fn make_block_cache(backing: ObjRef, capacity: usize) -> ObjRef {
    build_sharded_block_cache(backing, capacity, 1)
}

/// Builds a sharded block cache over `backing`.
#[deprecated(note = "use store::StackBuilder::on(backing).sharded_cache(capacity, shards).build()")]
pub fn make_sharded_block_cache(backing: ObjRef, capacity: usize, shards: usize) -> ObjRef {
    build_sharded_block_cache(backing, capacity, shards)
}

/// Builds a block cache of `capacity` total sectors over `backing`,
/// sharded `shards` ways by sector — the implementation behind
/// [`crate::StackBuilder`]'s cache layer. The shard count is rounded up
/// to the next power of two so routing a sector to its shard is a mask
/// rather than a division; capacity is split evenly across shards
/// (rounded up, so every shard holds at least one line).
///
/// Each shard sits behind its own lock, so concurrent clients — e.g. the
/// worlds of a world pool running on separate OS threads — proceed in
/// parallel whenever they touch different shards;
/// nothing in the cache takes a global lock.
///
/// The cache exports:
/// - the full `blockdev` interface (drop-in for the driver; the
///   [crate docs](crate) list every method). Durability methods flush
///   the cache's own dirty lines *before* forwarding down — the order
///   matters: a journal checkpoint below must see these writes in its
///   log before it truncates, or "flushed" data would survive only in
///   cache memory. Transaction verbs are forwarded (transaction data
///   never becomes cache lines); a successful `commit` invalidates
///   stale clean resident copies of the written sectors.
/// - a `cache` interface:
///   - `stats() -> [hits, misses, writebacks, resident]` (aggregated),
///   - `shard_stats() -> list of per-shard [hits, misses, writebacks, resident]`,
///   - `shards() -> int`,
///   - `flush() -> int` (write-backs performed, batched in elevator order).
pub(crate) fn build_sharded_block_cache(backing: ObjRef, capacity: usize, shards: usize) -> ObjRef {
    let nshards = shards.max(1).next_power_of_two();
    let per_shard = capacity.max(1).div_ceil(nshards);
    // One build-time probe (not per flush, so invocation-counting tests
    // and benches see only the writebacks themselves): a backing that
    // does not export `write_limit` takes unbounded batches.
    let write_limit = backing
        .invoke("blockdev", "write_limit", &[])
        .ok()
        .and_then(|v| v.as_int().ok())
        .filter(|&n| n > 0)
        .map(|n| n as usize)
        .unwrap_or(usize::MAX);
    let shared = Arc::new(CacheShared {
        backing,
        shards: (0..nshards)
            .map(|_| TryLock::new(Shard::new(per_shard)))
            .collect(),
        shard_mask: nshards as u64 - 1,
        per_shard,
        write_limit,
        total_sectors: OnceLock::new(),
        txn_sectors: Mutex::new(HashMap::new()),
    });
    let blockdev_shared = shared.clone();
    let cache_shared = shared;
    ObjectBuilder::new("block-cache")
        .interface("blockdev", move |i| {
            let s_read = blockdev_shared.clone();
            let s_write = blockdev_shared.clone();
            let s_read_many = blockdev_shared.clone();
            let s_write_many = blockdev_shared.clone();
            let s_sectors = blockdev_shared.clone();
            let s_stats = blockdev_shared.clone();
            let s_bd_flush = blockdev_shared.clone();
            let s_bd_barrier = blockdev_shared.clone();
            let s_begin = blockdev_shared.clone();
            let s_txn_write = blockdev_shared.clone();
            let s_commit = blockdev_shared.clone();
            let s_abort = blockdev_shared.clone();
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, move |_, args| {
                cache_read(&s_read, args[0].as_int()?)
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                move |_, args| {
                    let sector = args[0].as_int()?;
                    let incoming = args[1].as_bytes()?;
                    if incoming.len() != SECTOR_SIZE {
                        return Err(ObjError::failed(format!(
                            "sector writes must be exactly {SECTOR_SIZE} bytes"
                        )));
                    }
                    s_write.check_writable_sector(sector)?;
                    insert_line(&s_write, sector, incoming, true, true)?;
                    Ok(Value::Unit)
                },
            )
            .method(
                "read_many",
                &[TypeTag::List],
                TypeTag::List,
                move |_, args| cache_read_many(&s_read_many, args[0].as_list()?),
            )
            .method(
                "write_many",
                &[TypeTag::List],
                TypeTag::Int,
                move |_, args| {
                    let pairs = parse_pairs(&args[0])?;
                    // Validate the whole batch before caching any of it,
                    // matching the driver's no-partial-effects contract.
                    for (sector, _) in &pairs {
                        s_write_many.check_writable_sector(*sector)?;
                    }
                    cache_write_many(&s_write_many, &pairs)
                },
            )
            .method("sectors", &[], TypeTag::Int, move |_, _| {
                s_sectors.backing.invoke("blockdev", "sectors", &[])
            })
            .method("stats", &[], TypeTag::List, move |_, _| {
                s_stats.backing.invoke("blockdev", "stats", &[])
            })
            .method("flush", &[], TypeTag::Int, move |_, _| {
                // Own dirty lines first, then the layer below — a
                // journal checkpoint must find these writes in its log
                // before it truncates (see the builder docs).
                let own = cache_flush(&s_bd_flush)?.as_int()?;
                let below = s_bd_flush
                    .backing
                    .invoke("blockdev", "flush", &[])?
                    .as_int()?;
                Ok(Value::Int(own + below))
            })
            .method("barrier", &[], TypeTag::Unit, move |_, _| {
                // Same ordering as flush: acknowledged writes living as
                // dirty lines must reach the backing store before the
                // barrier below makes "everything so far" durable.
                cache_flush(&s_bd_barrier)?;
                s_bd_barrier.backing.invoke("blockdev", "barrier", &[])
            })
            .method("begin_txn", &[], TypeTag::Int, move |_, _| {
                let v = s_begin.backing.invoke("blockdev", "begin_txn", &[])?;
                s_begin.txn_sectors.lock().insert(v.as_int()?, Vec::new());
                Ok(v)
            })
            .method(
                "txn_write",
                TXN_WRITE_PARAMS,
                TypeTag::Unit,
                move |_, args| {
                    let (txn, sector, _) = parse_txn_write(args)?;
                    s_txn_write.check_writable_sector(sector)?;
                    let out = s_txn_write.backing.invoke("blockdev", "txn_write", args)?;
                    if let Some(secs) = s_txn_write.txn_sectors.lock().get_mut(&txn) {
                        secs.push(sector);
                    }
                    Ok(out)
                },
            )
            .method("commit", &[TypeTag::Int], TypeTag::Unit, move |_, args| {
                let txn = parse_txn(&args[0])?;
                let out = s_commit.backing.invoke("blockdev", "commit", args)?;
                // The commit rewrote these sectors below us: drop stale
                // clean copies so the next read refetches.
                if let Some(secs) = s_commit.txn_sectors.lock().remove(&txn) {
                    for sec in secs {
                        s_commit.shard(sec).invalidate_clean(sec);
                    }
                }
                Ok(out)
            })
            .method("abort", &[TypeTag::Int], TypeTag::Unit, move |_, args| {
                let txn = parse_txn(&args[0])?;
                let out = s_abort.backing.invoke("blockdev", "abort", args)?;
                s_abort.txn_sectors.lock().remove(&txn);
                Ok(out)
            })
        })
        .interface("cache", move |i| {
            let s_stats = cache_shared.clone();
            let s_shard_stats = cache_shared.clone();
            let s_shards = cache_shared.clone();
            let s_flush = cache_shared.clone();
            i.method("stats", &[], TypeTag::List, move |_, _| {
                let (mut hits, mut misses, mut wb, mut resident) = (0u64, 0u64, 0u64, 0usize);
                for lock in &s_stats.shards {
                    let sh = lock.lock();
                    hits += sh.hits;
                    misses += sh.misses;
                    wb += sh.writebacks;
                    resident += sh.len();
                }
                Ok(Value::List(vec![
                    Value::Int(hits as i64),
                    Value::Int(misses as i64),
                    Value::Int(wb as i64),
                    Value::Int(resident as i64),
                ]))
            })
            .method("shard_stats", &[], TypeTag::List, move |_, _| {
                Ok(Value::List(
                    s_shard_stats
                        .shards
                        .iter()
                        .map(|lock| {
                            let sh = lock.lock();
                            Value::List(vec![
                                Value::Int(sh.hits as i64),
                                Value::Int(sh.misses as i64),
                                Value::Int(sh.writebacks as i64),
                                Value::Int(sh.len() as i64),
                            ])
                        })
                        .collect(),
                ))
            })
            .method("shards", &[], TypeTag::Int, move |_, _| {
                Ok(Value::Int(s_shards.shards.len() as i64))
            })
            .method("flush", &[], TypeTag::Int, move |_, _| {
                cache_flush(&s_flush)
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackBuilder;
    use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
    use paramecium_machine::dev::disk::SECTOR_TRANSFER_COST;
    use paramecium_machine::Machine;
    use std::sync::Arc;

    fn setup(capacity: usize) -> (Arc<MemService>, ObjRef, ObjRef) {
        setup_sharded(capacity, 1)
    }

    fn setup_sharded(capacity: usize, shards: usize) -> (Arc<MemService>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .sharded_cache(capacity, shards)
            .build()
            .unwrap();
        (mem, stack.driver, stack.top)
    }

    fn sector_of(byte: u8) -> Value {
        Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
    }

    fn cache_stats(cache: &ObjRef) -> Vec<i64> {
        cache
            .invoke("cache", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn hot_reads_skip_the_disk() {
        let (mem, _driver, cache) = setup(8);
        cache
            .invoke("blockdev", "write", &[Value::Int(3), sector_of(7)])
            .unwrap();
        // First read: served from the (write-allocated) cache line.
        let t0 = mem.machine().lock().now();
        for _ in 0..10 {
            let v = cache.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 7);
        }
        // Ten hot reads cost less than one disk transfer.
        assert!(mem.machine().lock().now() - t0 < SECTOR_TRANSFER_COST);
        let s = cache_stats(&cache);
        assert_eq!(s[0], 10); // 10 read hits.
        assert_eq!(s[1], 1); // The initial write-allocate miss.
    }

    #[test]
    fn writeback_happens_on_eviction_only() {
        let (_mem, driver, cache) = setup(2);
        for sec in 0..2i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(sec as u8)],
                )
                .unwrap();
        }
        // Nothing on disk yet: write-back cache.
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(dstats.as_list().unwrap()[1], Value::Int(0));
        // Third write evicts the LRU line (sector 0) to disk. The eviction
        // coalesces the other dirty line (sector 1) into the same batch.
        cache
            .invoke("blockdev", "write", &[Value::Int(2), sector_of(2)])
            .unwrap();
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(dstats.as_list().unwrap()[1], Value::Int(2));
        // And the evicted data is really there.
        let v = driver.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        // Sector 1 was written back too but stays resident (now clean), so
        // a second eviction round does not rewrite it.
        let v = driver.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 1);
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let (_mem, _driver, cache) = setup(2);
        cache
            .invoke("blockdev", "write", &[Value::Int(0), sector_of(0)])
            .unwrap();
        cache
            .invoke("blockdev", "write", &[Value::Int(1), sector_of(1)])
            .unwrap();
        // Touch 0 so 1 becomes LRU.
        cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        cache
            .invoke("blockdev", "write", &[Value::Int(2), sector_of(2)])
            .unwrap();
        // 0 still resident (hit), 1 evicted (miss).
        let before = cache_stats(&cache);
        cache.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        let after_hit = cache_stats(&cache);
        assert_eq!(after_hit[0], before[0] + 1);
        cache.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        let after_miss = cache_stats(&cache);
        assert_eq!(after_miss[1], after_hit[1] + 1);
    }

    #[test]
    fn flush_writes_all_dirty_lines() {
        let (_mem, driver, cache) = setup(8);
        for sec in 0..5i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(0xC0 + sec as u8)],
                )
                .unwrap();
        }
        let flushed = cache.invoke("cache", "flush", &[]).unwrap();
        assert_eq!(flushed, Value::Int(5));
        for sec in 0..5i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0xC0 + sec as u8);
        }
        // Second flush is a no-op.
        assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn flush_batches_into_one_backing_invocation() {
        let (_mem, driver, cache) = setup(512);
        for sec in 0..256i64 {
            cache
                .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
                .unwrap();
        }
        let before = driver.invocation_count();
        assert_eq!(
            cache.invoke("cache", "flush", &[]).unwrap(),
            Value::Int(256)
        );
        // 256 dirty sectors, ONE vectorized backing call.
        assert_eq!(driver.invocation_count() - before, 1);
    }

    #[test]
    fn caches_stack_like_any_blockdev() {
        let (_mem, _driver, l2) = setup(16);
        let l1 = StackBuilder::on(l2.clone()).cache(4).build().unwrap().top;
        l1.invoke("blockdev", "write", &[Value::Int(9), sector_of(0x99)])
            .unwrap();
        let v = l1.invoke("blockdev", "read", &[Value::Int(9)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x99);
        // Vectorized ops stack too (L1 eviction/flush land in L2 batched).
        l1.invoke("cache", "flush", &[]).unwrap();
        let v = l2.invoke("blockdev", "read", &[Value::Int(9)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x99);
    }

    #[test]
    fn read_through_miss_populates_from_disk() {
        let (_mem, driver, cache) = setup(4);
        driver
            .invoke("blockdev", "write", &[Value::Int(7), sector_of(0x42)])
            .unwrap();
        let v = cache.invoke("blockdev", "read", &[Value::Int(7)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x42);
        // Now it hits.
        cache.invoke("blockdev", "read", &[Value::Int(7)]).unwrap();
        let s = cache_stats(&cache);
        assert_eq!(s[0], 1);
        assert_eq!(s[1], 1);
    }

    #[test]
    fn capacity_is_never_exceeded_even_transiently() {
        // Evict-before-insert: drive a working set far over capacity and
        // check residency after every single operation.
        for shards in [1usize, 4] {
            let (_mem, _driver, cache) = setup_sharded(8, shards);
            for round in 0..3 {
                for sec in 0..32i64 {
                    cache
                        .invoke(
                            "blockdev",
                            "write",
                            &[Value::Int(sec), sector_of(round as u8)],
                        )
                        .unwrap();
                    let resident = cache_stats(&cache)[3];
                    assert!(
                        resident <= 8,
                        "resident {resident} exceeds capacity 8 (shards={shards})"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_cache_spreads_lines_and_aggregates_stats() {
        let (_mem, _driver, cache) = setup_sharded(16, 4);
        assert_eq!(cache.invoke("cache", "shards", &[]).unwrap(), Value::Int(4));
        for sec in 0..8i64 {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(sec as u8)],
                )
                .unwrap();
        }
        // 8 sectors round-robin over 4 shards: two lines per shard.
        let per_shard = cache.invoke("cache", "shard_stats", &[]).unwrap();
        let per_shard = per_shard.as_list().unwrap();
        assert_eq!(per_shard.len(), 4);
        for sh in per_shard {
            let sh = sh.as_list().unwrap();
            assert_eq!(sh[3], Value::Int(2), "each shard holds 2 lines");
        }
        let s = cache_stats(&cache);
        assert_eq!(s[1], 8, "aggregated misses");
        assert_eq!(s[3], 8, "aggregated resident");
        // Hits land in the right shard and still aggregate.
        for sec in 0..8i64 {
            let v = cache
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], sec as u8);
        }
        assert_eq!(cache_stats(&cache)[0], 8);
    }

    #[test]
    fn vectorized_reads_hit_and_batch_fill() {
        let (_mem, driver, cache) = setup(16);
        for sec in 0..6i64 {
            driver
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(0x10 + sec as u8)],
                )
                .unwrap();
        }
        // Warm two of six.
        cache.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        cache.invoke("blockdev", "read", &[Value::Int(4)]).unwrap();
        let before = driver.invocation_count();
        let out = cache
            .invoke(
                "blockdev",
                "read_many",
                &[sectors_arg([5, 1, 0, 4, 2, 3, 1])],
            )
            .unwrap();
        let out = out.as_list().unwrap();
        assert_eq!(out.len(), 7);
        for (v, sec) in out.iter().zip([5i64, 1, 0, 4, 2, 3, 1]) {
            assert_eq!(v.as_bytes().unwrap()[0], 0x10 + sec as u8);
        }
        // The four distinct misses were fetched in ONE backing call.
        assert_eq!(driver.invocation_count() - before, 1);
        // Everything resident now: a repeat is pure hits, zero backing.
        let before = driver.invocation_count();
        cache
            .invoke("blockdev", "read_many", &[sectors_arg(0..6)])
            .unwrap();
        assert_eq!(driver.invocation_count(), before);
    }

    #[test]
    fn vectorized_writes_populate_dirty_lines() {
        let (_mem, driver, cache) = setup(16);
        let pairs: Vec<(i64, Bytes)> = (0..5i64)
            .map(|sec| (sec, Bytes::from(vec![0xA0 + sec as u8; SECTOR_SIZE])))
            .collect();
        let n = cache
            .invoke("blockdev", "write_many", &[pairs_arg(pairs)])
            .unwrap();
        assert_eq!(n, Value::Int(5));
        // Write-back: nothing on disk until flush.
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(dstats.as_list().unwrap()[1], Value::Int(0));
        cache.invoke("cache", "flush", &[]).unwrap();
        for sec in 0..5i64 {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0xA0 + sec as u8);
        }
    }

    #[test]
    fn unwritable_sectors_are_rejected_before_caching() {
        // A sector the backing store can never write must not become a
        // dirty line: it would poison every later all-or-nothing
        // writeback batch and wedge flush forever.
        let (_mem, driver, cache) = setup(8);
        let total = driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(cache
            .invoke("blockdev", "write", &[Value::Int(-1), sector_of(1)])
            .is_err());
        assert!(cache
            .invoke("blockdev", "write", &[Value::Int(total), sector_of(1)])
            .is_err());
        // A batch containing one bad pair caches nothing.
        let good = bytes::Bytes::from(vec![1u8; SECTOR_SIZE]);
        assert!(cache
            .invoke(
                "blockdev",
                "write_many",
                &[pairs_arg([(0, good.clone()), (total, good)])]
            )
            .is_err());
        assert_eq!(cache_stats(&cache)[3], 0, "nothing resident");
        // The cache still works: a valid write and flush succeed.
        cache
            .invoke("blockdev", "write", &[Value::Int(0), sector_of(3)])
            .unwrap();
        assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn blockdev_flush_and_barrier_drain_dirty_lines_first() {
        let (_mem, driver, cache) = setup(8);
        cache
            .invoke("blockdev", "write", &[Value::Int(1), sector_of(0xF1)])
            .unwrap();
        // blockdev flush = own dirty lines + whatever the layer below
        // homes (the bare driver homes nothing).
        let flushed = cache
            .invoke("blockdev", "flush", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(flushed, 1);
        let v = driver.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xF1);
        // Barrier also pushes acknowledged writes down before ordering.
        cache
            .invoke("blockdev", "write", &[Value::Int(2), sector_of(0xF2)])
            .unwrap();
        cache.invoke("blockdev", "barrier", &[]).unwrap();
        let v = driver.invoke("blockdev", "read", &[Value::Int(2)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xF2);
    }

    #[test]
    fn forwarded_commit_invalidates_stale_clean_lines() {
        use crate::vectored::{txn_arg, txn_write_args};
        let (_mem, driver, cache) = setup(8);
        // Warm a clean line for sector 4 from the driver's zeroes.
        let v = cache.invoke("blockdev", "read", &[Value::Int(4)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        // Rewrite sector 4 through a forwarded transaction.
        let txn = cache
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        cache
            .invoke(
                "blockdev",
                "txn_write",
                &txn_write_args(txn, 4, Bytes::from(vec![0x44; SECTOR_SIZE])),
            )
            .unwrap();
        // Before commit: the clean line still serves the old data and
        // the driver is untouched.
        let v = cache.invoke("blockdev", "read", &[Value::Int(4)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        cache.invoke("blockdev", "commit", &txn_arg(txn)).unwrap();
        // After commit: the stale line was invalidated, so the read
        // refetches the committed data.
        let v = driver.invoke("blockdev", "read", &[Value::Int(4)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x44);
        let v = cache.invoke("blockdev", "read", &[Value::Int(4)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x44);
        // Aborted transactions change nothing and clean up tracking.
        let t2 = cache
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        cache
            .invoke(
                "blockdev",
                "txn_write",
                &txn_write_args(t2, 5, Bytes::from(vec![0x55; SECTOR_SIZE])),
            )
            .unwrap();
        cache.invoke("blockdev", "abort", &txn_arg(t2)).unwrap();
        let v = cache.invoke("blockdev", "read", &[Value::Int(5)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
    }

    #[test]
    fn flush_chunks_to_the_backing_write_limit() {
        // Regression: flush used to send every dirty line as ONE
        // write_many. Under a journal that is a single log transaction,
        // so any dirty set larger than the log's capacity failed — and
        // since failed flushes leave lines dirty, durability wedged
        // permanently. The cache must chunk to the probed write_limit.
        use crate::JournalConfig;
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig { log_sectors: 8 }) // 6-sector txn limit
            .cache(16)
            .build()
            .unwrap();
        let j = stack.journal.as_ref().unwrap();
        assert_eq!(
            j.invoke("blockdev", "write_limit", &[]).unwrap(),
            Value::Int(6)
        );
        for sec in 0..10i64 {
            stack
                .top
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(sec), sector_of(0x90 + sec as u8)],
                )
                .unwrap();
        }
        // 10 dirty lines > the 6-sector limit: the flush must split into
        // two journal transactions instead of failing one oversized one.
        assert_eq!(
            stack.top.invoke("cache", "flush", &[]).unwrap(),
            Value::Int(10)
        );
        let s = j.invoke("journal", "stats", &[]).unwrap();
        let s = s.as_list().unwrap();
        assert_eq!(s[0], Value::Int(2), "two chunked commits");
        // Nothing left dirty, and a full-stack flush homes everything.
        assert_eq!(
            stack.top.invoke("cache", "flush", &[]).unwrap(),
            Value::Int(0)
        );
        stack.top.invoke("blockdev", "flush", &[]).unwrap();
        for sec in 0..10i64 {
            let v = stack
                .driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            assert_eq!(v.as_bytes().unwrap()[0], 0x90 + sec as u8);
        }
    }

    #[test]
    fn eviction_coalesces_cold_dirty_lines() {
        // Capacity 4, all dirty; one more write evicts the LRU victim and
        // takes the other dirty lines (≤ batch limit) with it in a single
        // backing invocation.
        let (_mem, driver, cache) = setup(4);
        for sec in 0..4i64 {
            cache
                .invoke("blockdev", "write", &[Value::Int(sec), sector_of(9)])
                .unwrap();
        }
        let before = driver.invocation_count();
        cache
            .invoke("blockdev", "write", &[Value::Int(4), sector_of(9)])
            .unwrap();
        assert_eq!(
            driver.invocation_count() - before,
            1,
            "victim + coalesced extras must share one backing call"
        );
        let dstats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(
            dstats.as_list().unwrap()[1],
            Value::Int(4),
            "all four dirty lines written in the batch"
        );
        // The survivors are clean now: flush has nothing left but the
        // newly written sector 4.
        assert_eq!(cache.invoke("cache", "flush", &[]).unwrap(), Value::Int(1));
    }
}
