//! [`StackBuilder`] — the one way to assemble a store stack.
//!
//! The store grew up as three free functions (`make_disk_driver`,
//! `make_block_cache`, `make_sharded_block_cache`) that callers wired
//! together by hand. That shape cannot express a third layer cleanly —
//! every call site would have to learn the journal's mount story — so
//! the constructors are now a builder over the fixed layering
//!
//! ```text
//! driver  →  retry (optional)  →  journal (optional)  →  cache (optional)
//! ```
//!
//! where every layer exports `blockdev` and each optional layer is one
//! builder call. The old free functions survive as deprecated one-line
//! shims.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use parking_lot::Mutex;
//! # use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
//! # use paramecium_machine::Machine;
//! use paramecium_store::{JournalConfig, StackBuilder};
//!
//! # let mem = Arc::new(MemService::new(Arc::new(Mutex::new(Machine::new()))));
//! let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
//!     .journal(JournalConfig::default())
//!     .sharded_cache(256, 4)
//!     .build()?;
//! stack.top.invoke("blockdev", "read", &[paramecium_obj::Value::Int(0)])?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;

use paramecium_core::{domain::DomainId, memsvc::MemService, CoreError, CoreResult};
use paramecium_obj::ObjRef;

use crate::cache::build_sharded_block_cache;
use crate::driver::build_disk_driver;
use crate::journal::{mount_journal, JournalConfig};
use crate::retry::{make_retry, RetryConfig};

/// What the stack stands on.
enum Base {
    /// Build the disk driver for this domain (claiming the device).
    Disk {
        mem: Arc<MemService>,
        domain: DomainId,
    },
    /// Stack on an existing `blockdev` object (another stack's top, a
    /// test double, an interposer…).
    Object(ObjRef),
}

/// Layered constructor for the store stack. See the
/// [module docs](self) for the shape and an example.
pub struct StackBuilder {
    base: Base,
    retry: Option<RetryConfig>,
    journal: Option<JournalConfig>,
    cache: Option<(usize, usize)>,
}

/// A built stack: the top object clients should bind, plus each layer
/// for tests and interposers that need to reach around.
pub struct StoreStack {
    /// The object to hand to clients (the highest layer built).
    pub top: ObjRef,
    /// The bottom `blockdev` (the disk driver, or the base object).
    pub driver: ObjRef,
    /// The retry interposer, when one was requested.
    pub retry: Option<ObjRef>,
    /// The journal layer, when one was requested.
    pub journal: Option<ObjRef>,
    /// The cache layer, when one was requested.
    pub cache: Option<ObjRef>,
}

impl StackBuilder {
    /// Starts a stack on the machine's disk: the bottom layer will be
    /// the disk driver, built for `domain`.
    pub fn disk(mem: &Arc<MemService>, domain: DomainId) -> Self {
        StackBuilder {
            base: Base::Disk {
                mem: mem.clone(),
                domain,
            },
            retry: None,
            journal: None,
            cache: None,
        }
    }

    /// Starts a stack on an existing `blockdev` object.
    pub fn on(base: ObjRef) -> Self {
        StackBuilder {
            base: Base::Object(base),
            retry: None,
            journal: None,
            cache: None,
        }
    }

    /// Adds the transient-fault retry interposer directly above the disk
    /// driver (see [`crate::retry`]). Only disk-based stacks can take
    /// one: the backoff sleeps on the machine's virtual clock.
    pub fn retry(mut self, cfg: RetryConfig) -> Self {
        self.retry = Some(cfg);
        self
    }

    /// Adds the write-ahead journal layer (mounted — and committed
    /// transactions replayed — during [`StackBuilder::build`]).
    pub fn journal(mut self, cfg: JournalConfig) -> Self {
        self.journal = Some(cfg);
        self
    }

    /// Adds a single-shard block cache of `capacity` sectors.
    pub fn cache(self, capacity: usize) -> Self {
        self.sharded_cache(capacity, 1)
    }

    /// Adds a block cache of `capacity` total sectors, sharded `shards`
    /// ways by sector.
    pub fn sharded_cache(mut self, capacity: usize, shards: usize) -> Self {
        self.cache = Some((capacity, shards));
        self
    }

    /// Builds the stack bottom-up: driver, then journal (mount +
    /// recovery), then cache.
    pub fn build(self) -> CoreResult<StoreStack> {
        let (driver, machine) = match self.base {
            Base::Disk { mem, domain } => {
                let machine = mem.machine().clone();
                (build_disk_driver(&mem, domain)?, Some(machine))
            }
            Base::Object(obj) => (obj, None),
        };
        let mut top = driver.clone();
        let retry = match self.retry {
            Some(cfg) => {
                let machine = machine.ok_or_else(|| {
                    CoreError::Obj(paramecium_obj::ObjError::failed(
                        "retry layer requires a disk-based stack (backoff uses the machine clock)",
                    ))
                })?;
                let r = make_retry(machine, top.clone(), cfg);
                top = r.clone();
                Some(r)
            }
            None => None,
        };
        let journal = match self.journal {
            Some(cfg) => {
                let j = mount_journal(top.clone(), cfg).map_err(CoreError::Obj)?;
                top = j.clone();
                Some(j)
            }
            None => None,
        };
        let cache = self.cache.map(|(capacity, shards)| {
            let c = build_sharded_block_cache(top.clone(), capacity, shards);
            top = c.clone();
            c
        });
        Ok(StoreStack {
            top,
            driver,
            retry,
            journal,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use paramecium_core::domain::KERNEL_DOMAIN;
    use paramecium_machine::dev::disk::SECTOR_SIZE;
    use paramecium_machine::Machine;
    use paramecium_obj::Value;
    use parking_lot::Mutex;

    fn mem() -> Arc<MemService> {
        Arc::new(MemService::new(Arc::new(Mutex::new(Machine::new()))))
    }

    #[test]
    fn full_stack_reads_and_writes_through_all_three_layers() {
        let mem = mem();
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig::default())
            .sharded_cache(64, 4)
            .build()
            .unwrap();
        assert!(stack.journal.is_some());
        assert!(stack.cache.is_some());
        let data = Value::Bytes(Bytes::from(vec![0x3C; SECTOR_SIZE]));
        stack
            .top
            .invoke("blockdev", "write", &[Value::Int(5), data])
            .unwrap();
        let v = stack
            .top
            .invoke("blockdev", "read", &[Value::Int(5)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x3C);
        // A full flush drains cache → journal → home locations.
        stack.top.invoke("blockdev", "flush", &[]).unwrap();
        let v = stack
            .driver
            .invoke("blockdev", "read", &[Value::Int(5)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x3C);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_build_working_stacks() {
        let mem = mem();
        let driver = crate::make_disk_driver(&mem, KERNEL_DOMAIN).unwrap();
        let cache = crate::make_block_cache(driver.clone(), 4);
        let data = Value::Bytes(Bytes::from(vec![0x77; SECTOR_SIZE]));
        cache
            .invoke("blockdev", "write", &[Value::Int(1), data])
            .unwrap();
        let v = cache.invoke("blockdev", "read", &[Value::Int(1)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x77);
        let sharded = crate::make_sharded_block_cache(driver, 8, 2);
        assert_eq!(
            sharded.invoke("cache", "shards", &[]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn layers_are_optional() {
        let mem = mem();
        let bare = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap();
        assert!(bare.journal.is_none() && bare.cache.is_none());
        // The driver-only stack's top IS the driver.
        assert_eq!(
            bare.top.invoke("blockdev", "sectors", &[]).unwrap(),
            bare.driver.invoke("blockdev", "sectors", &[]).unwrap()
        );
        let cached = StackBuilder::on(bare.top).cache(16).build().unwrap();
        assert!(cached.journal.is_none() && cached.cache.is_some());
        // With a journal, the client-visible device shrinks.
        let with_j = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .journal(JournalConfig::default())
            .build()
            .unwrap();
        let total = with_j
            .driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        let visible = with_j
            .top
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(visible, total - JournalConfig::default().log_sectors - 2);
    }
}
