//! The disk driver object.
//!
//! Exports the `blockdev` interface every storage component speaks:
//!
//! - `read(sector: int) -> bytes` (one 512-byte sector)
//! - `write(sector: int, data: bytes) -> unit`
//! - `read_many(sectors: list[int]) -> list[bytes]` (one batched request)
//! - `write_many(pairs: list[[int, bytes]]) -> int` (sectors written)
//! - `sectors() -> int`
//! - `stats() -> list [reads, writes]`
//!
//! Single-sector operations charge the full sector transfer cost — the
//! latency the shared cache exists to hide. The vectorized operations
//! charge the amortised [`batch_transfer_cost`]: one request setup, then
//! the streaming rate per additional sector, which is why coalesced
//! writeback wins even when every sector still has to reach the platter.

use std::sync::Arc;

use parking_lot::Mutex;

use paramecium_core::{domain::DomainId, memsvc::MemService, CoreResult};
use paramecium_machine::{
    dev::disk::{batch_transfer_cost, Disk, SECTOR_SIZE, SECTOR_TRANSFER_COST},
    io::IoSharing,
    Machine,
};
use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

/// Driver instance state.
struct DriverState {
    machine: Arc<Mutex<Machine>>,
    reads: u64,
    writes: u64,
}

/// Builds the disk driver for `domain`, claiming the disk's register
/// region exclusively.
pub fn make_disk_driver(mem: &Arc<MemService>, domain: DomainId) -> CoreResult<ObjRef> {
    // Reuse the device's regions if a previous driver allocated them, so
    // exclusivity is genuinely contended.
    let existing = {
        let machine = mem.machine().clone();
        let m = machine.lock();
        m.io.regions_of("disk").iter().map(|r| r.id).next()
    };
    let regs = match existing {
        Some(id) => id,
        None => mem.io_allocate("disk", 0x10, IoSharing::Exclusive)?,
    };
    mem.io_claim(domain, regs)?;

    Ok(ObjectBuilder::new("disk-driver")
        .state(DriverState {
            machine: mem.machine().clone(),
            reads: 0,
            writes: 0,
        })
        .interface("blockdev", |i| {
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let sector = args[0].as_int()?;
                if sector < 0 {
                    return Err(ObjError::failed("negative sector"));
                }
                this.with_state(|s: &mut DriverState| {
                    let mut m = s.machine.lock();
                    m.charge(SECTOR_TRANSFER_COST);
                    let data = m
                        .device_mut::<Disk>("disk")
                        .ok_or_else(|| ObjError::failed("disk device missing"))?
                        .read_sector(sector as u64)
                        .map_err(|e| ObjError::failed(e.to_string()))?;
                    s.reads += 1;
                    Ok(Value::Bytes(bytes::Bytes::copy_from_slice(&data)))
                })
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let sector = args[0].as_int()?;
                    let data = args[1].as_bytes()?;
                    if sector < 0 {
                        return Err(ObjError::failed("negative sector"));
                    }
                    if data.len() != SECTOR_SIZE {
                        return Err(ObjError::failed(format!(
                            "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
                            data.len()
                        )));
                    }
                    let mut buf = [0u8; SECTOR_SIZE];
                    buf.copy_from_slice(data);
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        m.charge(SECTOR_TRANSFER_COST);
                        m.device_mut::<Disk>("disk")
                            .ok_or_else(|| ObjError::failed("disk device missing"))?
                            .write_sector(sector as u64, &buf)
                            .map_err(|e| ObjError::failed(e.to_string()))?;
                        s.writes += 1;
                        Ok(Value::Unit)
                    })
                },
            )
            .method(
                "read_many",
                &[TypeTag::List],
                TypeTag::List,
                |this, args| {
                    let sectors = crate::vectored::parse_sectors(&args[0])?;
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        m.charge(batch_transfer_cost(sectors.len()));
                        let idxs: Vec<u64> = sectors.iter().map(|&sec| sec as u64).collect();
                        let data = m
                            .device_mut::<Disk>("disk")
                            .ok_or_else(|| ObjError::failed("disk device missing"))?
                            .read_sectors(&idxs)
                            .map_err(|e| ObjError::failed(e.to_string()))?;
                        s.reads += sectors.len() as u64;
                        Ok(Value::List(
                            data.iter()
                                .map(|d| Value::Bytes(bytes::Bytes::copy_from_slice(d)))
                                .collect(),
                        ))
                    })
                },
            )
            .method(
                "write_many",
                &[TypeTag::List],
                TypeTag::Int,
                |this, args| {
                    let pairs = crate::vectored::parse_pairs(&args[0])?;
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        m.charge(batch_transfer_cost(pairs.len()));
                        let batch: Vec<(u64, [u8; SECTOR_SIZE])> = pairs
                            .iter()
                            .map(|(sec, data)| {
                                let mut buf = [0u8; SECTOR_SIZE];
                                buf.copy_from_slice(data);
                                (*sec as u64, buf)
                            })
                            .collect();
                        m.device_mut::<Disk>("disk")
                            .ok_or_else(|| ObjError::failed("disk device missing"))?
                            .write_sectors(&batch)
                            .map_err(|e| ObjError::failed(e.to_string()))?;
                        s.writes += pairs.len() as u64;
                        Ok(Value::Int(pairs.len() as i64))
                    })
                },
            )
            .method("sectors", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    let mut m = s.machine.lock();
                    let d = m
                        .device_mut::<Disk>("disk")
                        .ok_or_else(|| ObjError::failed("disk device missing"))?;
                    Ok(Value::Int(d.sectors() as i64))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    Ok(Value::List(vec![
                        Value::Int(s.reads as i64),
                        Value::Int(s.writes as i64),
                    ]))
                })
            })
        })
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramecium_core::domain::KERNEL_DOMAIN;

    fn setup() -> (Arc<MemService>, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let driver = make_disk_driver(&mem, KERNEL_DOMAIN).unwrap();
        (mem, driver)
    }

    fn sector_of(byte: u8) -> Value {
        Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
    }

    #[test]
    fn read_write_roundtrip_charges_transfer_cost() {
        let (mem, driver) = setup();
        let t0 = mem.machine().lock().now();
        driver
            .invoke("blockdev", "write", &[Value::Int(5), sector_of(0xAB)])
            .unwrap();
        let data = driver.invoke("blockdev", "read", &[Value::Int(5)]).unwrap();
        assert_eq!(data.as_bytes().unwrap()[0], 0xAB);
        assert!(mem.machine().lock().now() - t0 >= 2 * SECTOR_TRANSFER_COST);
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats, Value::List(vec![Value::Int(1), Value::Int(1)]));
    }

    #[test]
    fn wrong_sized_writes_rejected() {
        let (_, driver) = setup();
        let r = driver.invoke(
            "blockdev",
            "write",
            &[
                Value::Int(0),
                Value::Bytes(bytes::Bytes::from_static(b"short")),
            ],
        );
        assert!(r.is_err());
        assert!(driver
            .invoke("blockdev", "read", &[Value::Int(-1)])
            .is_err());
    }

    #[test]
    fn out_of_range_sector_fails() {
        let (_, driver) = setup();
        let sectors = driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(driver
            .invoke("blockdev", "read", &[Value::Int(sectors)])
            .is_err());
    }

    #[test]
    fn exclusive_claim_blocks_second_driver() {
        let (mem, _driver) = setup();
        assert!(make_disk_driver(&mem, DomainId(7)).is_err());
    }

    #[test]
    fn vectorized_ops_roundtrip_and_charge_amortised_cost() {
        use crate::vectored::{pairs_arg, sectors_arg};
        use paramecium_machine::dev::disk::batch_transfer_cost;
        let (mem, driver) = setup();
        let pairs: Vec<(i64, bytes::Bytes)> = (0..64i64)
            .map(|sec| (sec, bytes::Bytes::from(vec![sec as u8; SECTOR_SIZE])))
            .collect();
        let t0 = mem.machine().lock().now();
        let written = driver
            .invoke("blockdev", "write_many", &[pairs_arg(pairs)])
            .unwrap();
        assert_eq!(written, Value::Int(64));
        let batch_cost = mem.machine().lock().now() - t0;
        assert_eq!(batch_cost, batch_transfer_cost(64));
        assert!(batch_cost < 64 * SECTOR_TRANSFER_COST);

        let out = driver
            .invoke("blockdev", "read_many", &[sectors_arg(0..64)])
            .unwrap();
        let out = out.as_list().unwrap();
        assert_eq!(out.len(), 64);
        for (sec, v) in out.iter().enumerate() {
            assert_eq!(v.as_bytes().unwrap()[0], sec as u8);
        }
        // One batched call counts every sector in the stats.
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats, Value::List(vec![Value::Int(64), Value::Int(64)]));
    }

    #[test]
    fn vectorized_ops_reject_bad_batches() {
        use crate::vectored::{pairs_arg, sectors_arg};
        let (_, driver) = setup();
        let sectors = driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(driver
            .invoke("blockdev", "read_many", &[sectors_arg([0, sectors])])
            .is_err());
        let good = bytes::Bytes::from(vec![1u8; SECTOR_SIZE]);
        // Out-of-range anywhere in the batch writes nothing.
        assert!(driver
            .invoke(
                "blockdev",
                "write_many",
                &[pairs_arg([(0, good.clone()), (sectors, good)])]
            )
            .is_err());
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats.as_list().unwrap()[1], Value::Int(0));
    }
}
