//! The disk driver object — the bottom layer of the store stack.
//!
//! Exports the full `blockdev` interface (the canonical method list
//! lives in the [crate docs](crate)): single-sector `read`/`write`, the
//! vectorized `read_many`/`write_many`, `sectors`/`stats`, and the
//! durability/transaction surface `flush`/`barrier`/`begin_txn`/
//! `txn_write`/`commit`/`abort`.
//!
//! Single-sector operations charge the full sector transfer cost — the
//! latency the shared cache exists to hide. The vectorized operations
//! charge the amortised [`batch_transfer_cost`]: one request setup, then
//! the streaming rate per additional sector — but charge it *per sector*
//! (setup on the first, streaming on the rest), so an injected power
//! failure ([`Machine::arm_crash_after`]) can land between any two
//! sectors of a batch. A crash mid-batch leaves the batch's prefix fully
//! written and the in-flight sector *torn* (half new, half old bytes) —
//! exactly the failure surface the `store::journal` layer's checksummed
//! records exist to survive.
//!
//! The driver's transaction verbs are **volatile**: `commit` applies the
//! buffered writes as one batch, atomic against validation errors but
//! *not* against power failure. Crash-atomic commit is the journal
//! layer's job; the driver implements the verbs so every layer of the
//! stack speaks the same `blockdev` interface and a journal can be
//! slotted in (or left out) without changing any client.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use paramecium_core::{domain::DomainId, memsvc::MemService, CoreResult};
use paramecium_machine::{
    dev::disk::{Disk, SECTOR_SIZE, SECTOR_STREAM_COST, SECTOR_TRANSFER_COST},
    io::IoSharing,
    Machine,
};
use paramecium_obj::{ObjError, ObjRef, ObjResult, ObjectBuilder, TypeTag, Value};

use crate::vectored::{parse_pairs, parse_sectors, parse_txn, parse_txn_write, TXN_WRITE_PARAMS};

/// Bytes of a sector that still reach the platter when a power failure
/// interrupts its transfer: the torn-write model (half the sector).
const TORN_WRITE_PREFIX: usize = SECTOR_SIZE / 2;

/// Driver instance state.
struct DriverState {
    machine: Arc<Mutex<Machine>>,
    reads: u64,
    writes: u64,
    /// Open (volatile) transactions: ordered buffered writes.
    open_txns: HashMap<i64, Vec<(i64, Bytes)>>,
    next_txn: i64,
}

/// Converts machine errors, keeping the power-failure case recognisable.
fn dev_err(e: paramecium_machine::MachineError) -> ObjError {
    ObjError::failed(e.to_string())
}

/// Fails (without charging) when the machine has lost power.
fn check_power(m: &Machine) -> ObjResult<()> {
    m.check_power().map_err(dev_err)
}

/// Extra cycles the next sector transfer costs under an injected latency
/// spike ([`Disk::inject_latency`]); 0 in normal operation.
fn op_latency(m: &mut Machine) -> paramecium_machine::cost::Cycles {
    m.device_mut::<Disk>("disk")
        .map_or(0, |d| d.take_op_latency())
}

/// Writes `batch` to the disk, charging the amortised batch cost one
/// sector at a time (request setup for the first, streaming rate for the
/// rest) and checking for an injected power failure between charges. On a
/// crash the in-flight sector is torn ([`TORN_WRITE_PREFIX`] bytes land)
/// and the error surfaces; earlier sectors of the batch are fully
/// durable. The caller validates the batch up front, so the only failure
/// mode here is power loss.
fn charged_batch_write(m: &mut Machine, batch: &[(i64, Bytes)]) -> ObjResult<()> {
    for (k, (sec, data)) in batch.iter().enumerate() {
        let cost = if k == 0 {
            SECTOR_TRANSFER_COST
        } else {
            SECTOR_STREAM_COST
        };
        let extra = op_latency(m);
        m.charge(cost + extra);
        let mut buf = [0u8; SECTOR_SIZE];
        buf.copy_from_slice(data);
        let crashed = m.crashed();
        let disk = m
            .device_mut::<Disk>("disk")
            .ok_or_else(|| ObjError::failed("disk device missing"))?;
        if crashed {
            // Power died during this sector's transfer: only a prefix
            // reaches the platter.
            disk.write_sector_prefix(*sec as u64, &buf, TORN_WRITE_PREFIX)
                .map_err(dev_err)?;
            return Err(dev_err(paramecium_machine::MachineError::PowerFailure));
        }
        disk.write_sector(*sec as u64, &buf).map_err(dev_err)?;
    }
    Ok(())
}

/// Validates every sector of a write batch against the device bounds
/// before anything is charged or written (no partial effects for invalid
/// batches).
fn validate_batch(m: &mut Machine, batch: &[(i64, Bytes)]) -> ObjResult<()> {
    let total = m
        .device_mut::<Disk>("disk")
        .ok_or_else(|| ObjError::failed("disk device missing"))?
        .sectors() as i64;
    for (sec, _) in batch {
        if *sec < 0 || *sec >= total {
            return Err(ObjError::failed(format!(
                "sector {sec} out of range (device has {total})"
            )));
        }
    }
    Ok(())
}

/// Builds the disk driver for `domain`, claiming the disk's register
/// region exclusively. This is the layer [`crate::StackBuilder`] places
/// at the bottom of every stack; use the builder rather than calling
/// this directly.
pub(crate) fn build_disk_driver(mem: &Arc<MemService>, domain: DomainId) -> CoreResult<ObjRef> {
    // Reuse the device's regions if a previous driver allocated them, so
    // exclusivity is genuinely contended.
    let existing = {
        let machine = mem.machine().clone();
        let m = machine.lock();
        m.io.regions_of("disk").iter().map(|r| r.id).next()
    };
    let regs = match existing {
        Some(id) => id,
        None => mem.io_allocate("disk", 0x10, IoSharing::Exclusive)?,
    };
    mem.io_claim(domain, regs)?;

    Ok(ObjectBuilder::new("disk-driver")
        .state(DriverState {
            machine: mem.machine().clone(),
            reads: 0,
            writes: 0,
            open_txns: HashMap::new(),
            next_txn: 1,
        })
        .interface("blockdev", |i| {
            i.method("read", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let sector = args[0].as_int()?;
                if sector < 0 {
                    return Err(ObjError::failed("negative sector"));
                }
                this.with_state(|s: &mut DriverState| {
                    let mut m = s.machine.lock();
                    check_power(&m)?;
                    let extra = op_latency(&mut m);
                    m.charge(SECTOR_TRANSFER_COST + extra);
                    check_power(&m)?;
                    let data = m
                        .device_mut::<Disk>("disk")
                        .ok_or_else(|| ObjError::failed("disk device missing"))?
                        .read_sector(sector as u64)
                        .map_err(dev_err)?;
                    s.reads += 1;
                    Ok(Value::Bytes(Bytes::copy_from_slice(&data)))
                })
            })
            .method(
                "write",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let sector = args[0].as_int()?;
                    let data = args[1].as_bytes()?;
                    if sector < 0 {
                        return Err(ObjError::failed("negative sector"));
                    }
                    if data.len() != SECTOR_SIZE {
                        return Err(ObjError::failed(format!(
                            "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
                            data.len()
                        )));
                    }
                    let batch = [(sector, data.clone())];
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        check_power(&m)?;
                        validate_batch(&mut m, &batch)?;
                        charged_batch_write(&mut m, &batch)?;
                        s.writes += 1;
                        Ok(Value::Unit)
                    })
                },
            )
            .method(
                "read_many",
                &[TypeTag::List],
                TypeTag::List,
                |this, args| {
                    let sectors = parse_sectors(&args[0])?;
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        check_power(&m)?;
                        // Validate the whole batch before charging.
                        {
                            let d = m
                                .device_mut::<Disk>("disk")
                                .ok_or_else(|| ObjError::failed("disk device missing"))?;
                            let total = d.sectors() as i64;
                            if let Some(bad) = sectors.iter().find(|&&sec| sec >= total) {
                                return Err(ObjError::failed(format!(
                                    "sector {bad} out of range (device has {total})"
                                )));
                            }
                        }
                        let mut out = Vec::with_capacity(sectors.len());
                        for (k, &sec) in sectors.iter().enumerate() {
                            let cost = if k == 0 {
                                SECTOR_TRANSFER_COST
                            } else {
                                SECTOR_STREAM_COST
                            };
                            let extra = op_latency(&mut m);
                            m.charge(cost + extra);
                            check_power(&m)?;
                            let data = m
                                .device_mut::<Disk>("disk")
                                .ok_or_else(|| ObjError::failed("disk device missing"))?
                                .read_sector(sec as u64)
                                .map_err(dev_err)?;
                            out.push(Value::Bytes(Bytes::copy_from_slice(&data)));
                        }
                        s.reads += sectors.len() as u64;
                        Ok(Value::List(out))
                    })
                },
            )
            .method(
                "write_many",
                &[TypeTag::List],
                TypeTag::Int,
                |this, args| {
                    let pairs = parse_pairs(&args[0])?;
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        check_power(&m)?;
                        validate_batch(&mut m, &pairs)?;
                        charged_batch_write(&mut m, &pairs)?;
                        s.writes += pairs.len() as u64;
                        Ok(Value::Int(pairs.len() as i64))
                    })
                },
            )
            .method("sectors", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    let mut m = s.machine.lock();
                    check_power(&m)?;
                    let d = m
                        .device_mut::<Disk>("disk")
                        .ok_or_else(|| ObjError::failed("disk device missing"))?;
                    Ok(Value::Int(d.sectors() as i64))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    Ok(Value::List(vec![
                        Value::Int(s.reads as i64),
                        Value::Int(s.writes as i64),
                    ]))
                })
            })
            // Durability surface. The raw driver has no volatile write
            // state of its own (every acked write reached the platter),
            // so `flush` has nothing to do and `barrier` only verifies
            // the machine is alive.
            .method("flush", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    check_power(&s.machine.lock())?;
                    Ok(Value::Int(0))
                })
            })
            .method("barrier", &[], TypeTag::Unit, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    check_power(&s.machine.lock())?;
                    Ok(Value::Unit)
                })
            })
            // Transaction surface (volatile: see the module docs).
            .method("begin_txn", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    check_power(&s.machine.lock())?;
                    let id = s.next_txn;
                    s.next_txn += 1;
                    s.open_txns.insert(id, Vec::new());
                    Ok(Value::Int(id))
                })
            })
            .method(
                "txn_write",
                TXN_WRITE_PARAMS,
                TypeTag::Unit,
                |this, args| {
                    let (txn, sector, data) = parse_txn_write(args)?;
                    this.with_state(|s: &mut DriverState| {
                        let mut m = s.machine.lock();
                        check_power(&m)?;
                        validate_batch(&mut m, std::slice::from_ref(&(sector, data.clone())))?;
                        drop(m);
                        s.open_txns
                            .get_mut(&txn)
                            .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?
                            .push((sector, data));
                        Ok(Value::Unit)
                    })
                },
            )
            .method("commit", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                let txn = parse_txn(&args[0])?;
                this.with_state(|s: &mut DriverState| {
                    let writes = s
                        .open_txns
                        .remove(&txn)
                        .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?;
                    if writes.is_empty() {
                        return Ok(Value::Unit);
                    }
                    let mut m = s.machine.lock();
                    check_power(&m)?;
                    validate_batch(&mut m, &writes)?;
                    charged_batch_write(&mut m, &writes)?;
                    s.writes += writes.len() as u64;
                    Ok(Value::Unit)
                })
            })
            .method("abort", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                let txn = parse_txn(&args[0])?;
                this.with_state(|s: &mut DriverState| {
                    s.open_txns
                        .remove(&txn)
                        .ok_or_else(|| ObjError::failed(format!("no open transaction {txn}")))?;
                    Ok(Value::Unit)
                })
            })
        })
        .build())
}

/// Builds the disk driver for `domain`.
#[deprecated(note = "use store::StackBuilder::disk(mem, domain).build()")]
pub fn make_disk_driver(mem: &Arc<MemService>, domain: DomainId) -> CoreResult<ObjRef> {
    build_disk_driver(mem, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackBuilder;
    use paramecium_core::domain::KERNEL_DOMAIN;
    use paramecium_machine::dev::disk::batch_transfer_cost;

    fn setup() -> (Arc<MemService>, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mem = Arc::new(MemService::new(machine));
        let driver = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top;
        (mem, driver)
    }

    fn sector_of(byte: u8) -> Value {
        Value::Bytes(Bytes::from(vec![byte; SECTOR_SIZE]))
    }

    #[test]
    fn read_write_roundtrip_charges_transfer_cost() {
        let (mem, driver) = setup();
        let t0 = mem.machine().lock().now();
        driver
            .invoke("blockdev", "write", &[Value::Int(5), sector_of(0xAB)])
            .unwrap();
        let data = driver.invoke("blockdev", "read", &[Value::Int(5)]).unwrap();
        assert_eq!(data.as_bytes().unwrap()[0], 0xAB);
        assert!(mem.machine().lock().now() - t0 >= 2 * SECTOR_TRANSFER_COST);
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats, Value::List(vec![Value::Int(1), Value::Int(1)]));
    }

    #[test]
    fn wrong_sized_writes_rejected() {
        let (_, driver) = setup();
        let r = driver.invoke(
            "blockdev",
            "write",
            &[Value::Int(0), Value::Bytes(Bytes::from_static(b"short"))],
        );
        assert!(r.is_err());
        assert!(driver
            .invoke("blockdev", "read", &[Value::Int(-1)])
            .is_err());
    }

    #[test]
    fn out_of_range_sector_fails() {
        let (_, driver) = setup();
        let sectors = driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(driver
            .invoke("blockdev", "read", &[Value::Int(sectors)])
            .is_err());
    }

    #[test]
    fn exclusive_claim_blocks_second_driver() {
        let (mem, _driver) = setup();
        assert!(StackBuilder::disk(&mem, DomainId(7)).build().is_err());
    }

    #[test]
    fn vectorized_ops_roundtrip_and_charge_amortised_cost() {
        use crate::vectored::{pairs_arg, sectors_arg};
        let (mem, driver) = setup();
        let pairs: Vec<(i64, Bytes)> = (0..64i64)
            .map(|sec| (sec, Bytes::from(vec![sec as u8; SECTOR_SIZE])))
            .collect();
        let t0 = mem.machine().lock().now();
        let written = driver
            .invoke("blockdev", "write_many", &[pairs_arg(pairs)])
            .unwrap();
        assert_eq!(written, Value::Int(64));
        let batch_cost = mem.machine().lock().now() - t0;
        assert_eq!(batch_cost, batch_transfer_cost(64));
        assert!(batch_cost < 64 * SECTOR_TRANSFER_COST);

        let out = driver
            .invoke("blockdev", "read_many", &[sectors_arg(0..64)])
            .unwrap();
        let out = out.as_list().unwrap();
        assert_eq!(out.len(), 64);
        for (sec, v) in out.iter().enumerate() {
            assert_eq!(v.as_bytes().unwrap()[0], sec as u8);
        }
        // One batched call counts every sector in the stats.
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats, Value::List(vec![Value::Int(64), Value::Int(64)]));
    }

    #[test]
    fn vectorized_ops_reject_bad_batches() {
        use crate::vectored::{pairs_arg, sectors_arg};
        let (_, driver) = setup();
        let sectors = driver
            .invoke("blockdev", "sectors", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(driver
            .invoke("blockdev", "read_many", &[sectors_arg([0, sectors])])
            .is_err());
        let good = Bytes::from(vec![1u8; SECTOR_SIZE]);
        // Out-of-range anywhere in the batch writes nothing.
        assert!(driver
            .invoke(
                "blockdev",
                "write_many",
                &[pairs_arg([(0, good.clone()), (sectors, good)])]
            )
            .is_err());
        let stats = driver.invoke("blockdev", "stats", &[]).unwrap();
        assert_eq!(stats.as_list().unwrap()[1], Value::Int(0));
    }

    #[test]
    fn volatile_txns_apply_on_commit_and_vanish_on_abort() {
        use crate::vectored::txn_write_args;
        let (_, driver) = setup();
        let txn = driver
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        for sec in 0..3i64 {
            driver
                .invoke(
                    "blockdev",
                    "txn_write",
                    &txn_write_args(txn, sec, Bytes::from(vec![0x42; SECTOR_SIZE])),
                )
                .unwrap();
        }
        // Nothing visible before commit.
        let v = driver.invoke("blockdev", "read", &[Value::Int(0)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        driver
            .invoke("blockdev", "commit", &[Value::Int(txn)])
            .unwrap();
        let v = driver.invoke("blockdev", "read", &[Value::Int(2)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0x42);
        // Double commit fails; an aborted txn leaves no trace.
        assert!(driver
            .invoke("blockdev", "commit", &[Value::Int(txn)])
            .is_err());
        let t2 = driver
            .invoke("blockdev", "begin_txn", &[])
            .unwrap()
            .as_int()
            .unwrap();
        driver
            .invoke(
                "blockdev",
                "txn_write",
                &txn_write_args(t2, 5, Bytes::from(vec![0x77; SECTOR_SIZE])),
            )
            .unwrap();
        driver
            .invoke("blockdev", "abort", &[Value::Int(t2)])
            .unwrap();
        let v = driver.invoke("blockdev", "read", &[Value::Int(5)]).unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0);
        // Flush and barrier are no-ops on the raw driver.
        assert_eq!(
            driver.invoke("blockdev", "flush", &[]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            driver.invoke("blockdev", "barrier", &[]).unwrap(),
            Value::Unit
        );
    }

    #[test]
    fn crash_mid_batch_leaves_prefix_plus_torn_sector() {
        use crate::vectored::pairs_arg;
        let (mem, driver) = setup();
        let pairs: Vec<(i64, Bytes)> = (0..4i64)
            .map(|sec| (sec, Bytes::from(vec![0xEE; SECTOR_SIZE])))
            .collect();
        // Fire the crash on the third sector's transfer charge.
        mem.machine().lock().arm_crash_after(3);
        let err = driver
            .invoke("blockdev", "write_many", &[pairs_arg(pairs)])
            .unwrap_err();
        assert!(err.to_string().contains("power failure"), "{err}");
        // Everything fails until reboot.
        assert!(driver.invoke("blockdev", "read", &[Value::Int(0)]).is_err());
        mem.machine().lock().reboot();
        // Sectors 0 and 1 are fully written, sector 2 is torn (prefix
        // only), sector 3 never started.
        for (sec, full, torn) in [(0, true, false), (1, true, false), (2, false, true)] {
            let v = driver
                .invoke("blockdev", "read", &[Value::Int(sec)])
                .unwrap();
            let b = v.as_bytes().unwrap();
            if full {
                assert!(b.iter().all(|&x| x == 0xEE), "sector {sec} must be whole");
            }
            if torn {
                assert!(b[..TORN_WRITE_PREFIX].iter().all(|&x| x == 0xEE));
                assert!(b[TORN_WRITE_PREFIX..].iter().all(|&x| x == 0));
            }
        }
        let v = driver.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
        assert!(v.as_bytes().unwrap().iter().all(|&x| x == 0));
    }
}
