//! Storage components: the disk driver object and the shared block cache.
//!
//! The paper names "shared caches" among the "certified kernel components
//! … shared between multiple non-cooperating users" (section 4) — the
//! canonical example of a component that *must* be trusted rather than
//! sandboxed, because it holds other users' data in its hands. This crate
//! provides both halves:
//!
//! - [`driver`] — the disk driver object (`blockdev` interface) over the
//!   machine's sector-addressed disk, with per-sector transfer costs,
//! - [`cache`] — a write-back LRU block cache exporting the *same*
//!   `blockdev` interface, so it stacks transparently over the driver (or
//!   over another cache) and is installed by ordinary name-space
//!   interposition.

pub mod cache;
pub mod driver;

pub use cache::make_block_cache;
pub use driver::make_disk_driver;
