//! Storage components: the disk driver object and the shared block cache.
//!
//! The paper names "shared caches" among the "certified kernel components
//! … shared between multiple non-cooperating users" (section 4) — the
//! canonical example of a component that *must* be trusted rather than
//! sandboxed, because it holds other users' data in its hands. This crate
//! provides both halves:
//!
//! - [`driver`] — the disk driver object (`blockdev` interface, including
//!   the vectorized `read_many`/`write_many` batch operations) over the
//!   machine's sector-addressed disk, with per-sector transfer costs and
//!   amortised batch-transfer charging,
//! - [`cache`] — a sharded write-back LRU block cache exporting the
//!   *same* `blockdev` interface, so it stacks transparently over the
//!   driver (or over another cache) and is installed by ordinary
//!   name-space interposition. Each shard runs an O(1) intrusive LRU,
//!   hits are zero-copy (`bytes::Bytes` clones), and eviction/flush
//!   coalesce dirty lines into sector-sorted vectorized writebacks,
//! - [`vectored`] — the shared encoding of the vectorized `blockdev`
//!   arguments, used by both components and by tests.

pub mod cache;
pub mod driver;
pub mod vectored;

pub use cache::{make_block_cache, make_sharded_block_cache, EVICTION_WRITEBACK_BATCH};
pub use driver::make_disk_driver;
