//! Storage components: a three-layer crash-safe store stack.
//!
//! The paper names "shared caches" among the "certified kernel components
//! … shared between multiple non-cooperating users" (section 4) — the
//! canonical example of a component that *must* be trusted rather than
//! sandboxed, because it holds other users' data in its hands. This
//! crate grows that example into a full storage stack in which every
//! layer is such a component, stacked by the paper's signature idiom:
//! transparent interposition through a shared named interface.
//!
//! ```text
//! clients → [cache] → [journal] → driver → disk device
//! ```
//!
//! - [`driver`] — the disk driver object over the machine's
//!   sector-addressed disk, with per-sector transfer costs, amortised
//!   batch charging, and crash-injection-aware write paths (a simulated
//!   power failure mid-batch leaves a torn sector behind),
//! - [`journal`] — a write-ahead journal: checksummed, epoch-tagged log
//!   records in a reserved disk region, leader/rider group commit,
//!   atomic multi-sector transactions, and idempotent mount-time
//!   recovery with committed-prefix semantics,
//! - [`cache`] — a sharded write-back LRU block cache: O(1) intrusive
//!   LRU per shard, zero-copy hits, coalesced sector-sorted writeback,
//!   per-shard locking for concurrent clients,
//! - [`stack`] — [`StackBuilder`], the one way to assemble the layers
//!   (each optional, fixed order),
//! - [`vectored`] — the shared codec for vectorized and transactional
//!   `blockdev` arguments.
//!
//! # The `blockdev` interface
//!
//! Every layer exports the same interface, which is what lets any of
//! them interpose on any other. The full method set:
//!
//! | method | signature | semantics |
//! |---|---|---|
//! | `read` | `(sector: int) -> bytes` | one 512-byte sector |
//! | `write` | `(sector: int, data: bytes) -> unit` | one sector; durable-by-return under a journal |
//! | `read_many` | `(sectors: list[int]) -> list[bytes]` | one batched request, results in request order |
//! | `write_many` | `(pairs: list[[int, bytes]]) -> int` | one batched request; atomic under a journal |
//! | `sectors` | `() -> int` | client-visible device size |
//! | `write_limit` | `() -> int` | largest `write_many` batch accepted as one atomic unit (journal only; layers without the method are unbounded) |
//! | `stats` | `() -> list` | `[reads, writes]` of the bottom driver |
//! | `flush` | `() -> int` | push all volatile/logged state to home locations (cache writeback, journal checkpoint); returns sectors homed |
//! | `barrier` | `() -> unit` | ordering point: everything acknowledged before the call is durable when it returns |
//! | `begin_txn` | `() -> int` | open a transaction, returning its handle |
//! | `txn_write` | `(txn: int, sector: int, data: bytes) -> unit` | buffer one write into an open transaction |
//! | `commit` | `(txn: int) -> unit` | apply the transaction atomically (crash-atomic under a journal) |
//! | `abort` | `(txn: int) -> unit` | drop an open transaction without effects |
//!
//! Only the journal makes `commit` atomic against power failure; the
//! bare driver's transactions are volatile buffers (atomic against
//! validation errors only) and the cache forwards the verbs downward.
//! Encode/decode the arguments with [`vectored`]'s typed helpers — no
//! hand-rolled packing at call sites.

pub mod cache;
pub mod driver;
pub mod journal;
pub mod retry;
pub mod stack;
pub mod vectored;

pub use cache::EVICTION_WRITEBACK_BATCH;
pub use journal::{mount_journal, JournalConfig};
pub use retry::{make_retry, RetryConfig};
pub use stack::{StackBuilder, StoreStack};

// Deprecated constructors, kept as shims for downstream code mid-
// migration. In-repo call sites all use `StackBuilder`.
#[allow(deprecated)]
pub use cache::{make_block_cache, make_sharded_block_cache};
#[allow(deprecated)]
pub use driver::make_disk_driver;
