//! Wire helpers for the vectorized and transactional `blockdev`
//! operations.
//!
//! `read_many` takes a list of sector numbers and returns a list of
//! sector payloads in request order; `write_many` takes a list of
//! `[sector, data]` pairs. The transaction verbs use a typed triple
//! (`txn_write(txn, sector, data)`) and a bare transaction handle
//! (`commit(txn)` / `abort(txn)`). Both sides of the interface (the disk
//! driver, the journal, the block cache, interposers and tests) build
//! and parse those values through these helpers so the encoding cannot
//! drift — no call site hand-rolls argument packing.

use bytes::Bytes;
use paramecium_machine::dev::disk::SECTOR_SIZE;
use paramecium_obj::{ObjError, ObjResult, TypeTag, Value};

/// Builds the `read_many` argument from sector numbers.
pub fn sectors_arg(sectors: impl IntoIterator<Item = i64>) -> Value {
    Value::List(sectors.into_iter().map(Value::Int).collect())
}

/// Parses the `read_many` argument, rejecting negative sectors.
pub fn parse_sectors(v: &Value) -> ObjResult<Vec<i64>> {
    v.as_list()?
        .iter()
        .map(|s| {
            let sec = s.as_int()?;
            if sec < 0 {
                return Err(ObjError::failed("negative sector"));
            }
            Ok(sec)
        })
        .collect()
}

/// Builds the `write_many` argument from `(sector, data)` pairs.
pub fn pairs_arg(pairs: impl IntoIterator<Item = (i64, Bytes)>) -> Value {
    Value::List(
        pairs
            .into_iter()
            .map(|(sec, data)| Value::List(vec![Value::Int(sec), Value::Bytes(data)]))
            .collect(),
    )
}

/// Parses the `write_many` argument, rejecting negative sectors and
/// payloads that are not exactly one sector.
pub fn parse_pairs(v: &Value) -> ObjResult<Vec<(i64, Bytes)>> {
    v.as_list()?
        .iter()
        .map(|pair| {
            let p = pair.as_list()?;
            if p.len() != 2 {
                return Err(ObjError::failed("write_many expects [sector, data] pairs"));
            }
            let sec = p[0].as_int()?;
            if sec < 0 {
                return Err(ObjError::failed("negative sector"));
            }
            let data = p[1].as_bytes()?;
            if data.len() != SECTOR_SIZE {
                return Err(ObjError::failed(format!(
                    "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
                    data.len()
                )));
            }
            Ok((sec, data.clone()))
        })
        .collect()
}

/// Parameter signature of `txn_write(txn, sector, data)`, shared by
/// every layer that implements the method so the signatures cannot
/// diverge.
pub const TXN_WRITE_PARAMS: &[TypeTag] = &[TypeTag::Int, TypeTag::Int, TypeTag::Bytes];

/// Builds the `txn_write` argument vector.
pub fn txn_write_args(txn: i64, sector: i64, data: Bytes) -> [Value; 3] {
    [Value::Int(txn), Value::Int(sector), Value::Bytes(data)]
}

/// Parses the `txn_write` arguments, validating the sector number and
/// payload size exactly like [`parse_pairs`] does for `write_many`.
pub fn parse_txn_write(args: &[Value]) -> ObjResult<(i64, i64, Bytes)> {
    if args.len() != 3 {
        return Err(ObjError::failed("txn_write expects (txn, sector, data)"));
    }
    let txn = parse_txn(&args[0])?;
    let sector = args[1].as_int()?;
    if sector < 0 {
        return Err(ObjError::failed("negative sector"));
    }
    let data = args[2].as_bytes()?;
    if data.len() != SECTOR_SIZE {
        return Err(ObjError::failed(format!(
            "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
            data.len()
        )));
    }
    Ok((txn, sector, data.clone()))
}

/// Builds the single-argument vector for `commit(txn)` / `abort(txn)`.
pub fn txn_arg(txn: i64) -> [Value; 1] {
    [Value::Int(txn)]
}

/// Parses a transaction handle, rejecting non-positive ids (handles are
/// allocated from 1 by `begin_txn`).
pub fn parse_txn(v: &Value) -> ObjResult<i64> {
    let txn = v.as_int()?;
    if txn <= 0 {
        return Err(ObjError::failed(format!("bad transaction handle {txn}")));
    }
    Ok(txn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectors_roundtrip() {
        let v = sectors_arg([3, 0, 7]);
        assert_eq!(parse_sectors(&v).unwrap(), vec![3, 0, 7]);
        assert!(parse_sectors(&sectors_arg([-1])).is_err());
        assert!(parse_sectors(&Value::Int(1)).is_err());
    }

    #[test]
    fn pairs_roundtrip_and_validate() {
        let data = Bytes::from(vec![7u8; SECTOR_SIZE]);
        let v = pairs_arg([(5, data.clone())]);
        let parsed = parse_pairs(&v).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 5);
        assert_eq!(parsed[0].1, data);
        // Short payload, negative sector and malformed pairs all fail.
        assert!(parse_pairs(&pairs_arg([(0, Bytes::from_static(b"short"))])).is_err());
        assert!(parse_pairs(&pairs_arg([(-2, data.clone())])).is_err());
        assert!(parse_pairs(&Value::List(vec![Value::Int(1)])).is_err());
        assert!(parse_pairs(&Value::List(vec![Value::List(vec![Value::Int(1)])])).is_err());
    }

    #[test]
    fn txn_codec_roundtrip_and_validate() {
        let data = Bytes::from(vec![3u8; SECTOR_SIZE]);
        let args = txn_write_args(7, 12, data.clone());
        assert_eq!(parse_txn_write(&args).unwrap(), (7, 12, data.clone()));
        assert_eq!(parse_txn(&txn_arg(7)[0]).unwrap(), 7);
        // Bad handle, negative sector, short payload, wrong arity.
        assert!(parse_txn(&Value::Int(0)).is_err());
        assert!(parse_txn(&Value::Int(-3)).is_err());
        assert!(parse_txn_write(&txn_write_args(1, -1, data.clone())).is_err());
        assert!(parse_txn_write(&txn_write_args(1, 0, Bytes::from_static(b"x"))).is_err());
        assert!(parse_txn_write(&args[..2]).is_err());
    }
}
