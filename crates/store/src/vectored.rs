//! Wire helpers for the vectorized `blockdev` operations.
//!
//! `read_many` takes a list of sector numbers and returns a list of
//! sector payloads in request order; `write_many` takes a list of
//! `[sector, data]` pairs. Both sides of the interface (the disk driver,
//! the block cache, interposers and tests) build and parse those values
//! through these helpers so the encoding cannot drift.

use bytes::Bytes;
use paramecium_machine::dev::disk::SECTOR_SIZE;
use paramecium_obj::{ObjError, ObjResult, Value};

/// Builds the `read_many` argument from sector numbers.
pub fn sectors_arg(sectors: impl IntoIterator<Item = i64>) -> Value {
    Value::List(sectors.into_iter().map(Value::Int).collect())
}

/// Parses the `read_many` argument, rejecting negative sectors.
pub fn parse_sectors(v: &Value) -> ObjResult<Vec<i64>> {
    v.as_list()?
        .iter()
        .map(|s| {
            let sec = s.as_int()?;
            if sec < 0 {
                return Err(ObjError::failed("negative sector"));
            }
            Ok(sec)
        })
        .collect()
}

/// Builds the `write_many` argument from `(sector, data)` pairs.
pub fn pairs_arg(pairs: impl IntoIterator<Item = (i64, Bytes)>) -> Value {
    Value::List(
        pairs
            .into_iter()
            .map(|(sec, data)| Value::List(vec![Value::Int(sec), Value::Bytes(data)]))
            .collect(),
    )
}

/// Parses the `write_many` argument, rejecting negative sectors and
/// payloads that are not exactly one sector.
pub fn parse_pairs(v: &Value) -> ObjResult<Vec<(i64, Bytes)>> {
    v.as_list()?
        .iter()
        .map(|pair| {
            let p = pair.as_list()?;
            if p.len() != 2 {
                return Err(ObjError::failed("write_many expects [sector, data] pairs"));
            }
            let sec = p[0].as_int()?;
            if sec < 0 {
                return Err(ObjError::failed("negative sector"));
            }
            let data = p[1].as_bytes()?;
            if data.len() != SECTOR_SIZE {
                return Err(ObjError::failed(format!(
                    "sector writes must be exactly {SECTOR_SIZE} bytes, got {}",
                    data.len()
                )));
            }
            Ok((sec, data.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectors_roundtrip() {
        let v = sectors_arg([3, 0, 7]);
        assert_eq!(parse_sectors(&v).unwrap(), vec![3, 0, 7]);
        assert!(parse_sectors(&sectors_arg([-1])).is_err());
        assert!(parse_sectors(&Value::Int(1)).is_err());
    }

    #[test]
    fn pairs_roundtrip_and_validate() {
        let data = Bytes::from(vec![7u8; SECTOR_SIZE]);
        let v = pairs_arg([(5, data.clone())]);
        let parsed = parse_pairs(&v).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 5);
        assert_eq!(parsed[0].1, data);
        // Short payload, negative sector and malformed pairs all fail.
        assert!(parse_pairs(&pairs_arg([(0, Bytes::from_static(b"short"))])).is_err());
        assert!(parse_pairs(&pairs_arg([(-2, data.clone())])).is_err());
        assert!(parse_pairs(&Value::List(vec![Value::Int(1)])).is_err());
        assert!(parse_pairs(&Value::List(vec![Value::List(vec![Value::Int(1)])])).is_err());
    }
}
