//! Differential property suite: the proof-elided interpreter must be
//! observationally identical to the fully-checked oracle.
//!
//! The test generates random programs from verifier-friendly building
//! blocks (masked and constant-address memory accesses, guarded indirect
//! jumps, arbitrary ALU soup, forward branches and back-edges), keeps the
//! ones the verifier accepts, and runs each through both engines with the
//! same inputs. Registers, data memory, traps (variant and payload), and
//! fuel accounting (`steps`/`guard_steps`) must agree exactly — including
//! at the exact-fuel boundary (`S` and `S - 1` step budgets around a run
//! that halts in `S` steps).

use paramecium_sfi::analysis::{self, Analysis};
use paramecium_sfi::bytecode::{Insn, Program, Reg};
use paramecium_sfi::interp::{ElidedInterp, ElidedProgram, Interp, InterpError};
use paramecium_sfi::{verifier, workloads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many verified programs the differential sweep must cover.
const PROGRAMS: usize = 256;
/// Generation attempts allowed before we call the generator broken.
const MAX_ATTEMPTS: usize = 20_000;
/// Default fuel for the unconstrained run.
const FUEL: u64 = 10_000;

fn reg(rng: &mut StdRng) -> Reg {
    Reg(rng.gen_range(0u8..16))
}

/// Emits one random snippet. Memory accesses are always either masked or
/// constant-address so most generated programs pass the verifier.
fn push_snippet(rng: &mut StdRng, code: &mut Vec<Insn>, data_len: u32) {
    match rng.gen_range(0u32..12) {
        0 | 1 => {
            // Constant load: small constants keep masked arithmetic
            // provable; occasional huge ones exercise wrap analysis.
            let imm = if rng.gen_bool(0.2) {
                rng.gen::<u64>() as i64
            } else {
                rng.gen_range(0i64..2 * i64::from(data_len).max(1))
            };
            code.push(Insn::Li { rd: reg(rng), imm });
        }
        2 | 3 => {
            let (rd, rs1, rs2) = (reg(rng), reg(rng), reg(rng));
            code.push(match rng.gen_range(0u32..8) {
                0 => Insn::Add { rd, rs1, rs2 },
                1 => Insn::Sub { rd, rs1, rs2 },
                2 => Insn::Mul { rd, rs1, rs2 },
                3 => Insn::And { rd, rs1, rs2 },
                4 => Insn::Or { rd, rs1, rs2 },
                5 => Insn::Xor { rd, rs1, rs2 },
                6 => Insn::Shl { rd, rs1, rs2 },
                _ => Insn::Shr { rd, rs1, rs2 },
            });
        }
        4 => {
            // Division runs checked unless the divisor is provably
            // nonzero — both zero and nonzero divisors must agree.
            code.push(Insn::Divu {
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            });
        }
        5 | 6 => {
            // Masked access: the bread-and-butter provable idiom.
            let base = reg(rng);
            code.push(Insn::MaskData { r: base });
            for _ in 0..rng.gen_range(1u32..3) {
                code.push(match rng.gen_range(0u32..4) {
                    0 => Insn::Ld {
                        rd: reg(rng),
                        base,
                        off: 0,
                    },
                    1 => Insn::LdB {
                        rd: reg(rng),
                        base,
                        off: 0,
                    },
                    2 => Insn::St {
                        rs: reg(rng),
                        base,
                        off: 0,
                    },
                    _ => Insn::StB {
                        rs: reg(rng),
                        base,
                        off: 0,
                    },
                });
            }
        }
        7 => {
            // Constant-address access (satellite precision fix).
            if data_len >= 8 {
                let base = reg(rng);
                let addr = rng.gen_range(0i64..i64::from(data_len - 7));
                code.push(Insn::Li {
                    rd: base,
                    imm: addr,
                });
                code.push(if rng.gen_bool(0.5) {
                    Insn::Ld {
                        rd: reg(rng),
                        base,
                        off: 0,
                    }
                } else {
                    Insn::StB {
                        rs: reg(rng),
                        base,
                        off: 0,
                    }
                });
            }
        }
        8 => {
            // Guarded indirect jump: may loop forever (fuel equivalence).
            let r = reg(rng);
            code.push(Insn::MaskCode { r });
            code.push(Insn::Jr { rs: r });
        }
        9 => {
            // Forward conditional branch; target patched in `fixup`.
            let (rs1, rs2) = (reg(rng), reg(rng));
            code.push(match rng.gen_range(0u32..3) {
                0 => Insn::Beq {
                    rs1,
                    rs2,
                    target: u32::MAX,
                },
                1 => Insn::Bne {
                    rs1,
                    rs2,
                    target: u32::MAX,
                },
                _ => Insn::Bltu {
                    rs1,
                    rs2,
                    target: u32::MAX,
                },
            });
        }
        10 => {
            // Back-edge; target patched in `fixup`. Often an infinite
            // loop — exactly what the fuel-accounting check wants.
            code.push(Insn::Jmp { target: u32::MAX });
        }
        _ => code.push(Insn::Halt),
    }
}

/// Patches placeholder branch targets: conditional branches go forward,
/// `Jmp` placeholders go backward (or to themselves).
fn fixup(rng: &mut StdRng, code: &mut [Insn]) {
    let len = code.len() as u32;
    for (pc, insn) in code.iter_mut().enumerate() {
        let at = pc as u32;
        match insn {
            Insn::Beq { target, .. } | Insn::Bne { target, .. } | Insn::Bltu { target, .. }
                if *target == u32::MAX =>
            {
                *target = rng.gen_range(at + 1..len);
            }
            Insn::Jmp { target } if *target == u32::MAX => {
                *target = rng.gen_range(0..at + 1);
            }
            _ => {}
        }
    }
}

fn random_program(rng: &mut StdRng) -> Program {
    let data_len = [16u32, 32, 64, 100, 128, 256][rng.gen_range(0usize..6)];
    let budget = rng.gen_range(6usize..28);
    let mut code = Vec::new();
    while code.len() < budget {
        push_snippet(rng, &mut code, data_len);
    }
    code.push(Insn::Halt);
    fixup(rng, &mut code);
    Program::new(code, data_len)
}

/// Analyze + verdict; returns the analysis only for accepted programs.
fn accept(program: &Program) -> Option<Analysis> {
    let a = analysis::analyze(program).ok()?;
    a.verdict(program).ok()?;
    Some(a)
}

struct RunResult {
    outcome: Result<paramecium_sfi::interp::ExecOutcome, InterpError>,
    regs: [u64; 16],
    data: Vec<u8>,
}

fn run_checked(program: &Program, data: &[u8], r1: u64, fuel: u64) -> RunResult {
    let mut it = Interp::new(program);
    it.load_data(0, data);
    it.set_reg(Reg(1), r1);
    let outcome = it.run(fuel);
    RunResult {
        outcome,
        regs: *it.regs(),
        data: it.data().to_vec(),
    }
}

fn run_elided(prog: &ElidedProgram, data: &[u8], r1: u64, fuel: u64) -> RunResult {
    let mut it = ElidedInterp::new(prog);
    it.load_data(0, data);
    it.set_reg(Reg(1), r1);
    let outcome = it.run(fuel);
    RunResult {
        outcome,
        regs: *it.regs(),
        data: it.data().to_vec(),
    }
}

fn assert_equivalent(program: &Program, elided: &ElidedProgram, data: &[u8], r1: u64, fuel: u64) {
    let slow = run_checked(program, data, r1, fuel);
    let fast = run_elided(elided, data, r1, fuel);
    assert_eq!(
        slow.outcome, fast.outcome,
        "outcome diverged (fuel {fuel}) on {program:?}"
    );
    assert_eq!(
        slow.regs, fast.regs,
        "registers diverged (fuel {fuel}) on {program:?}"
    );
    assert_eq!(
        slow.data, fast.data,
        "memory diverged (fuel {fuel}) on {program:?}"
    );
}

#[test]
fn differential_random_programs_agree_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5f1_a9a1);
    let mut accepted = 0usize;
    let mut halted = 0usize;
    let mut trapped = 0usize;
    let mut exhausted = 0usize;
    let mut attempts = 0usize;

    while accepted < PROGRAMS {
        attempts += 1;
        assert!(
            attempts < MAX_ATTEMPTS,
            "generator acceptance rate collapsed: {accepted}/{attempts}"
        );
        let program = random_program(&mut rng);
        let Some(analysis) = accept(&program) else {
            continue;
        };
        accepted += 1;
        let elided = ElidedProgram::compile(&program, &analysis);

        let mut data = vec![0u8; program.data_len as usize];
        rng.fill(&mut data[..]);
        let r1: u64 = rng.gen();

        assert_equivalent(&program, &elided, &data, r1, FUEL);

        // Exact-fuel boundary: a successful run in S steps must succeed
        // at budget S and exhaust identically at S - 1.
        let slow = run_checked(&program, &data, r1, FUEL);
        match &slow.outcome {
            Ok(out) => {
                halted += 1;
                assert_equivalent(&program, &elided, &data, r1, out.steps);
                if out.steps > 0 {
                    assert_equivalent(&program, &elided, &data, r1, out.steps - 1);
                }
            }
            Err(InterpError::OutOfSteps) => {
                exhausted += 1;
                // Also probe a couple of shorter budgets inside the run.
                assert_equivalent(&program, &elided, &data, r1, FUEL / 2);
                assert_equivalent(&program, &elided, &data, r1, 1);
            }
            Err(_) => {
                trapped += 1;
                assert_equivalent(&program, &elided, &data, r1, 1);
            }
        }
    }

    // The sweep must exercise all three outcome classes, otherwise the
    // generator has quietly stopped covering the interesting paths.
    assert!(halted > 0, "no generated program halted normally");
    assert!(trapped > 0, "no generated program trapped");
    assert!(exhausted > 0, "no generated program ran out of fuel");
}

#[test]
fn differential_benign_suite_multiple_inputs() {
    let mut rng = StdRng::seed_from_u64(2026);
    for (name, program) in workloads::benign_suite() {
        verifier::verify(&program).unwrap_or_else(|e| panic!("{name} failed to verify: {e}"));
        let analysis = analysis::analyze(&program).unwrap();
        let elided = ElidedProgram::compile(&program, &analysis);
        for _ in 0..16 {
            let mut data = vec![0u8; program.data_len as usize];
            rng.fill(&mut data[..]);
            let r1: u64 = rng.gen_range(0u64..1 << 20);
            assert_equivalent(&program, &elided, &data, r1, FUEL);
        }
    }
}

#[test]
fn benign_suite_is_lint_clean() {
    for (name, program) in workloads::benign_suite() {
        let diags = analysis::lint::lint(&program)
            .unwrap_or_else(|e| panic!("{name} failed analysis: {e}"));
        assert!(diags.is_empty(), "{name} has diagnostics: {diags:?}");
    }
}

#[test]
fn elision_actually_removes_checks_on_the_benign_suite() {
    // The speedup claim rests on the elided program having strictly
    // fewer dynamic checks; pin that structurally. Pure-ALU programs
    // have no checks to begin with, so only programs with checkable
    // instructions must show elisions.
    for (name, program) in workloads::benign_suite() {
        let has_checks = program.code.iter().any(|i| {
            matches!(
                i,
                Insn::Ld { .. }
                    | Insn::LdB { .. }
                    | Insn::St { .. }
                    | Insn::StB { .. }
                    | Insn::Divu { .. }
                    | Insn::Jr { .. }
            )
        });
        let analysis = analysis::analyze(&program).unwrap();
        let elided = ElidedProgram::compile(&program, &analysis);
        assert!(
            !has_checks || elided.elided_count() > 0,
            "{name}: no checks were elided despite full verification"
        );
    }
}
