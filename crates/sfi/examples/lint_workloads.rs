//! CI lint pass over every `sfi::workloads` program.
//!
//! Every workload must come out of `analysis::lint` clean — zero
//! diagnostics — except `wild_writer`, the deliberately hostile fixture,
//! which must produce exactly its known always-traps diagnostic (proving
//! the lint actually fires). Any other diagnostic, or a missing expected
//! one, exits nonzero and fails CI.

use paramecium_sfi::analysis::lint::{self, LintKind};
use paramecium_sfi::workloads;

fn main() {
    let clean: Vec<(&str, _)> = vec![
        ("checksum_loop", workloads::checksum_loop(64, 2)),
        (
            "checksum_loop_verified",
            workloads::checksum_loop_verified(64, 2),
        ),
        (
            "checksum_words_verified",
            workloads::checksum_words_verified(64, 2),
        ),
        ("alu_loop", workloads::alu_loop(16)),
        ("table_fill", workloads::table_fill(64, 2)),
        ("header_parse_verified", workloads::header_parse_verified()),
        (
            "bloom_insert_verified",
            workloads::bloom_insert_verified(128),
        ),
    ];

    let mut failures = 0usize;
    for (name, program) in &clean {
        match lint::lint(program) {
            Ok(diags) if diags.is_empty() => println!("lint {name:<24} clean"),
            Ok(diags) => {
                failures += 1;
                eprintln!("lint {name:<24} UNEXPECTED diagnostics:");
                for d in &diags {
                    eprintln!("  {d}");
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("lint {name:<24} analysis failed: {e}");
            }
        }
    }

    // The hostile fixture must trip the always-traps diagnostic.
    let hostile = workloads::wild_writer();
    match lint::lint(&hostile) {
        Ok(diags) if diags.iter().any(|d| d.kind == LintKind::AlwaysTraps) => {
            println!("lint {:<24} flagged as expected:", "wild_writer");
            for d in &diags {
                println!("  {d}");
            }
        }
        Ok(diags) => {
            failures += 1;
            eprintln!(
                "lint {:<24} expected an always-traps diagnostic, got: {diags:?}",
                "wild_writer"
            );
        }
        Err(e) => {
            failures += 1;
            eprintln!("lint {:<24} analysis failed: {e}", "wild_writer");
        }
    }

    if failures > 0 {
        eprintln!("\n{failures} workload(s) failed the lint pass");
        std::process::exit(1);
    }
    println!("\nall workloads pass the lint gate");
}
