//! The bytecode interpreter.
//!
//! Executes a [`Program`] against a private data segment with deterministic
//! step accounting. The interpreter itself enforces memory safety at the
//! *simulation* level (a stray access is an [`InterpError::Fault`], never
//! undefined behaviour) — the point of the SFI/verifier/certification
//! comparison is *when* and *at what cost* each scheme guarantees that a
//! component cannot reach the fault path at all.
//!
//! Two execution engines share the instruction semantics:
//!
//! - [`Interp`] — the fully-checked oracle: fuel, fetch, bounds and jump
//!   validation on every single step. Kept byte-for-byte stable; every
//!   other engine is judged against it.
//! - [`ElidedInterp`] — runs an [`ElidedProgram`], compiled from the
//!   [`crate::analysis::ProofMap`]: statically-discharged checks are gone,
//!   fuel is accounted per basic-block run instead of per instruction, and
//!   power-of-two masks are strength-reduced from `%` to `&`. The
//!   conformance suite holds it bit-for-bit equal to the oracle.

use crate::analysis::{Analysis, Facts};
use crate::bytecode::{Insn, Program, Reg, NUM_REGS};

/// Execution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// A memory access left the data segment.
    Fault {
        /// Instruction index of the faulting access.
        pc: u32,
        /// Byte address that was attempted.
        addr: u64,
    },
    /// A branch or indirect jump left the program.
    BadJump {
        /// Instruction index of the jump.
        pc: u32,
        /// The attempted target.
        target: u64,
    },
    /// Unsigned division by zero.
    DivideByZero {
        /// Instruction index.
        pc: u32,
    },
    /// The step budget was exhausted before `Halt`.
    OutOfSteps,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Fault { pc, addr } => {
                write!(f, "memory fault at pc {pc}: address {addr:#x}")
            }
            InterpError::BadJump { pc, target } => {
                write!(f, "bad jump at pc {pc}: target {target}")
            }
            InterpError::DivideByZero { pc } => write!(f, "divide by zero at pc {pc}"),
            InterpError::OutOfSteps => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The result of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value of `r0` at `Halt`.
    pub result: u64,
    /// Instructions executed (the run-time cost in VM cycles).
    pub steps: u64,
    /// How many of those steps were guard instructions
    /// (`MaskData`/`MaskCode`) — the measurable SFI overhead.
    pub guard_steps: u64,
}

/// An interpreter instance: registers plus the data segment.
pub struct Interp {
    code: Vec<Insn>,
    regs: [u64; NUM_REGS],
    data: Vec<u8>,
}

impl Interp {
    /// Creates an interpreter for `program` with a zeroed data segment.
    pub fn new(program: &Program) -> Self {
        Interp {
            code: program.code.clone(),
            regs: [0; NUM_REGS],
            data: vec![0; program.data_len as usize],
        }
    }

    /// Pre-loads bytes into the data segment at `offset` (e.g. a packet for
    /// a protocol-processing component).
    ///
    /// # Panics
    ///
    /// Panics if the bytes do not fit — a harness bug.
    pub fn load_data(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads back the data segment (to inspect component output).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Sets an input register before the run.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.0 as usize] = v;
    }

    /// Reads back the register file (for differential comparison).
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Runs until `Halt`, error, or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<ExecOutcome, InterpError> {
        let mut pc: u32 = 0;
        let mut steps: u64 = 0;
        let mut guard_steps: u64 = 0;
        let code_len = self.code.len() as u64;
        let data_len = self.data.len() as u64;

        macro_rules! reg {
            ($r:expr) => {
                self.regs[$r.0 as usize]
            };
        }

        loop {
            if steps >= max_steps {
                return Err(InterpError::OutOfSteps);
            }
            let insn = match self.code.get(pc as usize) {
                Some(i) => *i,
                None => {
                    return Err(InterpError::BadJump {
                        pc,
                        target: u64::from(pc),
                    });
                }
            };
            steps += 1;
            let mut next = pc + 1;
            match insn {
                Insn::Li { rd, imm } => reg!(rd) = imm as u64,
                Insn::Mov { rd, rs } => reg!(rd) = reg!(rs),
                Insn::Add { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_add(reg!(rs2)),
                Insn::Sub { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_sub(reg!(rs2)),
                Insn::Mul { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_mul(reg!(rs2)),
                Insn::Divu { rd, rs1, rs2 } => {
                    let d = reg!(rs2);
                    if d == 0 {
                        return Err(InterpError::DivideByZero { pc });
                    }
                    reg!(rd) = reg!(rs1) / d;
                }
                Insn::And { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) & reg!(rs2),
                Insn::Or { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) | reg!(rs2),
                Insn::Xor { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) ^ reg!(rs2),
                Insn::Shl { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) << (reg!(rs2) & 63),
                Insn::Shr { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) >> (reg!(rs2) & 63),
                Insn::Ld { rd, base, off } => {
                    let addr = effective(reg!(base), off);
                    let a = addr as usize;
                    if addr.checked_add(8).is_none() || addr + 8 > data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    reg!(rd) = u64::from_le_bytes(self.data[a..a + 8].try_into().expect("8 bytes"));
                }
                Insn::LdB { rd, base, off } => {
                    let addr = effective(reg!(base), off);
                    if addr >= data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    reg!(rd) = u64::from(self.data[addr as usize]);
                }
                Insn::St { rs, base, off } => {
                    let addr = effective(reg!(base), off);
                    let a = addr as usize;
                    if addr.checked_add(8).is_none() || addr + 8 > data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    let v = reg!(rs).to_le_bytes();
                    self.data[a..a + 8].copy_from_slice(&v);
                }
                Insn::StB { rs, base, off } => {
                    let addr = effective(reg!(base), off);
                    if addr >= data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    let v = reg!(rs) as u8;
                    self.data[addr as usize] = v;
                }
                Insn::Beq { rs1, rs2, target } => {
                    if reg!(rs1) == reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Bne { rs1, rs2, target } => {
                    if reg!(rs1) != reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Bltu { rs1, rs2, target } => {
                    if reg!(rs1) < reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Jmp { target } => {
                    next = check_jump(pc, u64::from(target), code_len)?;
                }
                Insn::Jr { rs } => {
                    next = check_jump(pc, reg!(rs), code_len)?;
                }
                Insn::MaskData { r } => {
                    guard_steps += 1;
                    if data_len > 0 {
                        reg!(r) %= data_len;
                    } else {
                        reg!(r) = 0;
                    }
                }
                Insn::MaskCode { r } => {
                    guard_steps += 1;
                    if code_len > 0 {
                        reg!(r) %= code_len;
                    }
                }
                Insn::Halt => {
                    return Ok(ExecOutcome {
                        result: self.regs[0],
                        steps,
                        guard_steps,
                    });
                }
            }
            pc = next;
        }
    }
}

/// Effective address of a base+offset access (wrapping, like hardware).
fn effective(base: u64, off: i32) -> u64 {
    base.wrapping_add(off as i64 as u64)
}

/// Validates a jump target.
fn check_jump(pc: u32, target: u64, code_len: u64) -> Result<u32, InterpError> {
    if target >= code_len {
        Err(InterpError::BadJump { pc, target })
    } else {
        Ok(target as u32)
    }
}

/// One instruction of the proof-elided stream. `Proven` variants carry no
/// run-time check: the corresponding fact was discharged at load time.
/// Register indices are pre-masked to `< NUM_REGS` so the hot loop can
/// index the register file branch-free.
#[derive(Clone, Copy, Debug)]
enum FastOp {
    Li {
        rd: u8,
        imm: u64,
    },
    Mov {
        rd: u8,
        rs: u8,
    },
    Add {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sub {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mul {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    DivuProven {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    DivuChecked {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    And {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Or {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Xor {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Shl {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Shr {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    LdProven {
        rd: u8,
        base: u8,
        off: i32,
    },
    LdChecked {
        rd: u8,
        base: u8,
        off: i32,
    },
    LdBProven {
        rd: u8,
        base: u8,
        off: i32,
    },
    LdBChecked {
        rd: u8,
        base: u8,
        off: i32,
    },
    StProven {
        rs: u8,
        base: u8,
        off: i32,
    },
    StChecked {
        rs: u8,
        base: u8,
        off: i32,
    },
    StBProven {
        rs: u8,
        base: u8,
        off: i32,
    },
    StBChecked {
        rs: u8,
        base: u8,
        off: i32,
    },
    Beq {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Bne {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Bltu {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Jmp {
        target: u32,
    },
    JrProven {
        rs: u8,
    },
    JrChecked {
        rs: u8,
    },
    MaskDataPow2 {
        r: u8,
        mask: u64,
    },
    MaskDataMod {
        r: u8,
    },
    MaskDataZero {
        r: u8,
    },
    MaskCodePow2 {
        r: u8,
        mask: u64,
    },
    MaskCodeMod {
        r: u8,
    },
    Halt,
    // Fused forms of the SFI guard idiom, emitted only into the
    // block-level fused stream (never the raw 1:1 stream). Each covers
    // the `mov` / `mask_data` / proven-access sequence whose check the
    // proof map discharged: with the bounds check gone, the pair (or
    // triple) collapses into one dispatch. All require a power-of-two
    // data segment (the mask is an `and`) and a MEM_SAFE access.
    /// `mov rd, rs; mask_data rd` — covers 2 instructions, 1 guard.
    MovMaskData {
        rd: u8,
        rs: u8,
        mask: u64,
    },
    /// `mask_data r; st/stb src, r, off` — 2 instructions, 1 guard.
    MaskStB {
        src: u8,
        r: u8,
        mask: u64,
        off: i32,
    },
    MaskSt {
        src: u8,
        r: u8,
        mask: u64,
        off: i32,
    },
    /// `mask_data r; ld/ldb rd, r, off` — 2 instructions, 1 guard.
    MaskLdB {
        rd: u8,
        r: u8,
        mask: u64,
        off: i32,
    },
    MaskLd {
        rd: u8,
        r: u8,
        mask: u64,
        off: i32,
    },
    /// `mov rd, rs; mask_data rd; st/stb src, rd, off` — 3 instructions.
    MovMaskStB {
        src: u8,
        rd: u8,
        rs: u8,
        mask: u64,
        off: i32,
    },
    MovMaskSt {
        src: u8,
        rd: u8,
        rs: u8,
        mask: u64,
        off: i32,
    },
    /// `mov rd, rs; mask_data rd; ld/ldb ld_rd, rd, off` — 3 instructions.
    MovMaskLdB {
        ld_rd: u8,
        rd: u8,
        rs: u8,
        mask: u64,
        off: i32,
    },
    MovMaskLd {
        ld_rd: u8,
        rd: u8,
        rs: u8,
        mask: u64,
        off: i32,
    },
    /// `shr sd, rs1, rs2; mov rd, sd; mask_data rd; stb/ldb ·, rd, off` —
    /// the full probe idiom (extract a hash byte, bound it, access): 4
    /// instructions, 1 guard.
    ShrMovMaskStB {
        src: u8,
        sd: u8,
        rs1: u8,
        rs2: u8,
        rd: u8,
        mask: u64,
        off: i32,
    },
    ShrMovMaskLdB {
        ld_rd: u8,
        sd: u8,
        rs1: u8,
        rs2: u8,
        rd: u8,
        mask: u64,
        off: i32,
    },
}

/// One element of a block's fused stream: a [`FastOp`] plus the raw
/// instruction span it covers, so step accounting and error payloads stay
/// bit-identical to the oracle.
#[derive(Clone, Copy, Debug)]
struct FusedOp {
    op: FastOp,
    /// Raw pc of the first covered instruction.
    pc: u32,
    /// How many raw instructions this element covers (1–3).
    width: u8,
}

/// Greedy peephole over one basic block's raw ops: collapses the guard
/// idiom where the mask strength-reduced to an `and` and the access is
/// proven. Entry mid-pattern is impossible — fusion never crosses a block
/// boundary and control only enters blocks at their first instruction.
fn fuse(window: &[FastOp]) -> (FastOp, u8) {
    match *window {
        [FastOp::Shr { rd: sd, rs1, rs2 }, FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::StBProven { rs: src, base, off }, ..]
            if rs == sd && r == rd && base == rd =>
        {
            (
                FastOp::ShrMovMaskStB {
                    src,
                    sd,
                    rs1,
                    rs2,
                    rd,
                    mask,
                    off,
                },
                4,
            )
        }
        [FastOp::Shr { rd: sd, rs1, rs2 }, FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::LdBProven {
            rd: ld_rd,
            base,
            off,
        }, ..]
            if rs == sd && r == rd && base == rd =>
        {
            (
                FastOp::ShrMovMaskLdB {
                    ld_rd,
                    sd,
                    rs1,
                    rs2,
                    rd,
                    mask,
                    off,
                },
                4,
            )
        }
        [FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::StBProven { rs: src, base, off }, ..]
            if r == rd && base == rd =>
        {
            (
                FastOp::MovMaskStB {
                    src,
                    rd,
                    rs,
                    mask,
                    off,
                },
                3,
            )
        }
        [FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::StProven { rs: src, base, off }, ..]
            if r == rd && base == rd =>
        {
            (
                FastOp::MovMaskSt {
                    src,
                    rd,
                    rs,
                    mask,
                    off,
                },
                3,
            )
        }
        [FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::LdBProven {
            rd: ld_rd,
            base,
            off,
        }, ..]
            if r == rd && base == rd =>
        {
            (
                FastOp::MovMaskLdB {
                    ld_rd,
                    rd,
                    rs,
                    mask,
                    off,
                },
                3,
            )
        }
        [FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, FastOp::LdProven {
            rd: ld_rd,
            base,
            off,
        }, ..]
            if r == rd && base == rd =>
        {
            (
                FastOp::MovMaskLd {
                    ld_rd,
                    rd,
                    rs,
                    mask,
                    off,
                },
                3,
            )
        }
        [FastOp::MaskDataPow2 { r, mask }, FastOp::StBProven { rs: src, base, off }, ..]
            if base == r =>
        {
            (FastOp::MaskStB { src, r, mask, off }, 2)
        }
        [FastOp::MaskDataPow2 { r, mask }, FastOp::StProven { rs: src, base, off }, ..]
            if base == r =>
        {
            (FastOp::MaskSt { src, r, mask, off }, 2)
        }
        [FastOp::MaskDataPow2 { r, mask }, FastOp::LdBProven { rd, base, off }, ..]
            if base == r =>
        {
            (FastOp::MaskLdB { rd, r, mask, off }, 2)
        }
        [FastOp::MaskDataPow2 { r, mask }, FastOp::LdProven { rd, base, off }, ..] if base == r => {
            (FastOp::MaskLd { rd, r, mask, off }, 2)
        }
        [FastOp::Mov { rd, rs }, FastOp::MaskDataPow2 { r, mask }, ..] if r == rd => {
            (FastOp::MovMaskData { rd, rs, mask }, 2)
        }
        [op, ..] => (op, 1),
        [] => unreachable!("fuse called on an empty window"),
    }
}

/// A program compiled against its [`Analysis`]: the elided instruction
/// stream plus per-pc straight-run lengths for block-batched fuel.
#[derive(Clone, Debug)]
pub struct ElidedProgram {
    /// The raw elided stream, 1:1 with program pcs — executed in the
    /// fuel-tail path where per-instruction accounting is needed.
    ops: Vec<FastOp>,
    /// `run_len[pc]`: instructions from `pc` to the end of its basic
    /// block — the span executable without control transfer, so fuel is
    /// checked once per span instead of once per instruction.
    run_len: Vec<u32>,
    /// Concatenated per-block fused streams (the common full-block path).
    fused: Vec<FusedOp>,
    /// `fused_span[pc]` for a block-start `pc`: `(start, len)` of that
    /// block's slice of `fused`. Control only ever enters a block at its
    /// start, so other indices are never consulted.
    fused_span: Vec<(u32, u32)>,
    data_len: u32,
}

impl ElidedProgram {
    /// Compiles `program` against its proof map. Static branch targets
    /// must have been validated (an [`Analysis`] exists only for programs
    /// that passed that check), so direct branches carry no run-time
    /// validation; every other check is elided exactly where the map
    /// carries the corresponding fact and kept otherwise — including on
    /// unreachable instructions, where the checked form is the safe
    /// default.
    pub fn compile(program: &Program, analysis: &Analysis) -> ElidedProgram {
        assert_eq!(
            program.code.len(),
            analysis.proofs.len(),
            "analysis does not match program"
        );
        let n = program.code.len();
        let data_len = program.data_len;
        let code_len = n as u64;
        let m = |r: Reg| r.0 & (NUM_REGS as u8 - 1);
        let mut ops = Vec::with_capacity(n);
        for (pc, insn) in program.code.iter().enumerate() {
            let f = analysis.proofs.at(pc as u32);
            ops.push(match *insn {
                Insn::Li { rd, imm } => FastOp::Li {
                    rd: m(rd),
                    imm: imm as u64,
                },
                Insn::Mov { rd, rs } => FastOp::Mov {
                    rd: m(rd),
                    rs: m(rs),
                },
                Insn::Add { rd, rs1, rs2 } => FastOp::Add {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Sub { rd, rs1, rs2 } => FastOp::Sub {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Mul { rd, rs1, rs2 } => FastOp::Mul {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Divu { rd, rs1, rs2 } => {
                    let (rd, rs1, rs2) = (m(rd), m(rs1), m(rs2));
                    if f.has(Facts::DIV_NONZERO) {
                        FastOp::DivuProven { rd, rs1, rs2 }
                    } else {
                        FastOp::DivuChecked { rd, rs1, rs2 }
                    }
                }
                Insn::And { rd, rs1, rs2 } => FastOp::And {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Or { rd, rs1, rs2 } => FastOp::Or {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Xor { rd, rs1, rs2 } => FastOp::Xor {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Shl { rd, rs1, rs2 } => FastOp::Shl {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Shr { rd, rs1, rs2 } => FastOp::Shr {
                    rd: m(rd),
                    rs1: m(rs1),
                    rs2: m(rs2),
                },
                Insn::Ld { rd, base, off } => {
                    let (rd, base) = (m(rd), m(base));
                    if f.has(Facts::MEM_SAFE) {
                        FastOp::LdProven { rd, base, off }
                    } else {
                        FastOp::LdChecked { rd, base, off }
                    }
                }
                Insn::LdB { rd, base, off } => {
                    let (rd, base) = (m(rd), m(base));
                    if f.has(Facts::MEM_SAFE) {
                        FastOp::LdBProven { rd, base, off }
                    } else {
                        FastOp::LdBChecked { rd, base, off }
                    }
                }
                Insn::St { rs, base, off } => {
                    let (rs, base) = (m(rs), m(base));
                    if f.has(Facts::MEM_SAFE) {
                        FastOp::StProven { rs, base, off }
                    } else {
                        FastOp::StChecked { rs, base, off }
                    }
                }
                Insn::StB { rs, base, off } => {
                    let (rs, base) = (m(rs), m(base));
                    if f.has(Facts::MEM_SAFE) {
                        FastOp::StBProven { rs, base, off }
                    } else {
                        FastOp::StBChecked { rs, base, off }
                    }
                }
                Insn::Beq { rs1, rs2, target } => FastOp::Beq {
                    rs1: m(rs1),
                    rs2: m(rs2),
                    target,
                },
                Insn::Bne { rs1, rs2, target } => FastOp::Bne {
                    rs1: m(rs1),
                    rs2: m(rs2),
                    target,
                },
                Insn::Bltu { rs1, rs2, target } => FastOp::Bltu {
                    rs1: m(rs1),
                    rs2: m(rs2),
                    target,
                },
                Insn::Jmp { target } => FastOp::Jmp { target },
                Insn::Jr { rs } => {
                    let rs = m(rs);
                    if f.has(Facts::JUMP_SAFE) {
                        FastOp::JrProven { rs }
                    } else {
                        FastOp::JrChecked { rs }
                    }
                }
                Insn::MaskData { r } => {
                    let r = m(r);
                    if data_len == 0 {
                        FastOp::MaskDataZero { r }
                    } else if data_len.is_power_of_two() {
                        FastOp::MaskDataPow2 {
                            r,
                            mask: u64::from(data_len) - 1,
                        }
                    } else {
                        FastOp::MaskDataMod { r }
                    }
                }
                Insn::MaskCode { r } => {
                    let r = m(r);
                    // `code_len >= 1` here: we are compiling an instruction.
                    if code_len.is_power_of_two() {
                        FastOp::MaskCodePow2 {
                            r,
                            mask: code_len - 1,
                        }
                    } else {
                        FastOp::MaskCodeMod { r }
                    }
                }
                Insn::Halt => FastOp::Halt,
            });
        }
        let mut run_len = vec![1u32; n];
        let mut fused = Vec::with_capacity(n);
        let mut fused_span = vec![(0u32, 0u32); n];
        for block in &analysis.cfg.blocks {
            for pc in block.start..block.end {
                run_len[pc as usize] = block.end - pc;
            }
            let fstart = fused.len() as u32;
            let mut i = block.start as usize;
            while i < block.end as usize {
                let (op, width) = fuse(&ops[i..block.end as usize]);
                fused.push(FusedOp {
                    op,
                    pc: i as u32,
                    width,
                });
                i += width as usize;
            }
            fused_span[block.start as usize] = (fstart, fused.len() as u32 - fstart);
        }
        ElidedProgram {
            ops,
            run_len,
            fused,
            fused_span,
            data_len,
        }
    }

    /// How many instructions carry at least one elided check — the
    /// measurable payoff of the proof map.
    pub fn elided_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    FastOp::LdProven { .. }
                        | FastOp::LdBProven { .. }
                        | FastOp::StProven { .. }
                        | FastOp::StBProven { .. }
                        | FastOp::DivuProven { .. }
                        | FastOp::JrProven { .. }
                )
            })
            .count()
    }
}

/// An interpreter over an [`ElidedProgram`]: same observable semantics as
/// [`Interp`], minus the statically-discharged work.
pub struct ElidedInterp<'p> {
    prog: &'p ElidedProgram,
    regs: [u64; NUM_REGS],
    data: Vec<u8>,
}

impl<'p> ElidedInterp<'p> {
    /// Creates an interpreter with a zeroed data segment.
    pub fn new(prog: &'p ElidedProgram) -> Self {
        ElidedInterp {
            prog,
            regs: [0; NUM_REGS],
            data: vec![0; prog.data_len as usize],
        }
    }

    /// Pre-loads bytes into the data segment at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the bytes do not fit — a harness bug.
    pub fn load_data(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads back the data segment.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Sets an input register before the run.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.0 as usize] = v;
    }

    /// Reads back the register file (for differential comparison).
    pub fn regs(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Runs until `Halt`, error, or `max_steps`. Observable behaviour —
    /// result, step and guard counts, error variant and payload, final
    /// registers and memory — is identical to [`Interp::run`] on the
    /// program the [`ElidedProgram`] was compiled from.
    pub fn run(&mut self, max_steps: u64) -> Result<ExecOutcome, InterpError> {
        let prog = self.prog;
        let code_len = prog.ops.len() as u64;
        let data_len = self.data.len() as u64;
        let regs = &mut self.regs;
        let data = &mut self.data;
        let mut pc: u32 = 0;
        let mut steps: u64 = 0;
        let mut guard_steps: u64 = 0;

        macro_rules! rg {
            ($r:expr) => {
                regs[($r & (NUM_REGS as u8 - 1)) as usize]
            };
        }

        // One op's arms, shared between the fused full-block path and the
        // raw fuel-tail path. `$cur` is the raw pc for error payloads and
        // `$consumed` the raw step count a control transfer at this op
        // accounts for; `$label` is the dispatch loop to re-enter.
        macro_rules! exec {
            ($op:expr, $cur:expr, $consumed:expr, $label:lifetime) => {
                match $op {
                    FastOp::Li { rd, imm } => rg!(rd) = imm,
                    FastOp::Mov { rd, rs } => rg!(rd) = rg!(rs),
                    FastOp::Add { rd, rs1, rs2 } => rg!(rd) = rg!(rs1).wrapping_add(rg!(rs2)),
                    FastOp::Sub { rd, rs1, rs2 } => rg!(rd) = rg!(rs1).wrapping_sub(rg!(rs2)),
                    FastOp::Mul { rd, rs1, rs2 } => rg!(rd) = rg!(rs1).wrapping_mul(rg!(rs2)),
                    FastOp::DivuProven { rd, rs1, rs2 } => {
                        // Divisor proven nonzero; `max(1)` keeps the
                        // expression branch-free without UB and folds away
                        // under the proof.
                        rg!(rd) = rg!(rs1) / rg!(rs2).max(1)
                    }
                    FastOp::DivuChecked { rd, rs1, rs2 } => {
                        let d = rg!(rs2);
                        if d == 0 {
                            return Err(InterpError::DivideByZero { pc: $cur });
                        }
                        rg!(rd) = rg!(rs1) / d;
                    }
                    FastOp::And { rd, rs1, rs2 } => rg!(rd) = rg!(rs1) & rg!(rs2),
                    FastOp::Or { rd, rs1, rs2 } => rg!(rd) = rg!(rs1) | rg!(rs2),
                    FastOp::Xor { rd, rs1, rs2 } => rg!(rd) = rg!(rs1) ^ rg!(rs2),
                    FastOp::Shl { rd, rs1, rs2 } => rg!(rd) = rg!(rs1) << (rg!(rs2) & 63),
                    FastOp::Shr { rd, rs1, rs2 } => rg!(rd) = rg!(rs1) >> (rg!(rs2) & 63),
                    FastOp::LdProven { rd, base, off } => {
                        let a = effective(rg!(base), off) as usize;
                        rg!(rd) = u64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
                    }
                    FastOp::LdChecked { rd, base, off } => {
                        let addr = effective(rg!(base), off);
                        if addr.checked_add(8).is_none() || addr + 8 > data_len {
                            return Err(InterpError::Fault { pc: $cur, addr });
                        }
                        let a = addr as usize;
                        rg!(rd) = u64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
                    }
                    FastOp::LdBProven { rd, base, off } => {
                        rg!(rd) = u64::from(data[effective(rg!(base), off) as usize]);
                    }
                    FastOp::LdBChecked { rd, base, off } => {
                        let addr = effective(rg!(base), off);
                        if addr >= data_len {
                            return Err(InterpError::Fault { pc: $cur, addr });
                        }
                        rg!(rd) = u64::from(data[addr as usize]);
                    }
                    FastOp::StProven { rs, base, off } => {
                        let a = effective(rg!(base), off) as usize;
                        let v = rg!(rs).to_le_bytes();
                        data[a..a + 8].copy_from_slice(&v);
                    }
                    FastOp::StChecked { rs, base, off } => {
                        let addr = effective(rg!(base), off);
                        if addr.checked_add(8).is_none() || addr + 8 > data_len {
                            return Err(InterpError::Fault { pc: $cur, addr });
                        }
                        let a = addr as usize;
                        let v = rg!(rs).to_le_bytes();
                        data[a..a + 8].copy_from_slice(&v);
                    }
                    FastOp::StBProven { rs, base, off } => {
                        let v = rg!(rs) as u8;
                        data[effective(rg!(base), off) as usize] = v;
                    }
                    FastOp::StBChecked { rs, base, off } => {
                        let addr = effective(rg!(base), off);
                        if addr >= data_len {
                            return Err(InterpError::Fault { pc: $cur, addr });
                        }
                        let v = rg!(rs) as u8;
                        data[addr as usize] = v;
                    }
                    FastOp::Beq { rs1, rs2, target } => {
                        if rg!(rs1) == rg!(rs2) {
                            steps += $consumed;
                            pc = target;
                            continue $label;
                        }
                    }
                    FastOp::Bne { rs1, rs2, target } => {
                        if rg!(rs1) != rg!(rs2) {
                            steps += $consumed;
                            pc = target;
                            continue $label;
                        }
                    }
                    FastOp::Bltu { rs1, rs2, target } => {
                        if rg!(rs1) < rg!(rs2) {
                            steps += $consumed;
                            pc = target;
                            continue $label;
                        }
                    }
                    FastOp::Jmp { target } => {
                        steps += $consumed;
                        pc = target;
                        continue $label;
                    }
                    FastOp::JrProven { rs } => {
                        steps += $consumed;
                        pc = rg!(rs) as u32;
                        continue $label;
                    }
                    FastOp::JrChecked { rs } => {
                        let target = rg!(rs);
                        if target >= code_len {
                            return Err(InterpError::BadJump { pc: $cur, target });
                        }
                        steps += $consumed;
                        pc = target as u32;
                        continue $label;
                    }
                    FastOp::MaskDataPow2 { r, mask } => {
                        guard_steps += 1;
                        rg!(r) &= mask;
                    }
                    FastOp::MaskDataMod { r } => {
                        guard_steps += 1;
                        rg!(r) %= data_len;
                    }
                    FastOp::MaskDataZero { r } => {
                        guard_steps += 1;
                        rg!(r) = 0;
                    }
                    FastOp::MaskCodePow2 { r, mask } => {
                        guard_steps += 1;
                        rg!(r) &= mask;
                    }
                    FastOp::MaskCodeMod { r } => {
                        guard_steps += 1;
                        rg!(r) %= code_len;
                    }
                    FastOp::Halt => {
                        return Ok(ExecOutcome {
                            result: regs[0],
                            steps: steps + $consumed,
                            guard_steps,
                        });
                    }
                    FastOp::MovMaskData { rd, rs, mask } => {
                        guard_steps += 1;
                        rg!(rd) = rg!(rs) & mask;
                    }
                    FastOp::MaskStB { src, r, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(r) & mask;
                        rg!(r) = t;
                        data[effective(t, off) as usize] = rg!(src) as u8;
                    }
                    FastOp::MaskSt { src, r, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(r) & mask;
                        rg!(r) = t;
                        let a = effective(t, off) as usize;
                        let v = rg!(src).to_le_bytes();
                        data[a..a + 8].copy_from_slice(&v);
                    }
                    FastOp::MaskLdB { rd, r, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(r) & mask;
                        rg!(r) = t;
                        rg!(rd) = u64::from(data[effective(t, off) as usize]);
                    }
                    FastOp::MaskLd { rd, r, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(r) & mask;
                        rg!(r) = t;
                        let a = effective(t, off) as usize;
                        rg!(rd) =
                            u64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
                    }
                    FastOp::MovMaskStB { src, rd, rs, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(rs) & mask;
                        rg!(rd) = t;
                        data[effective(t, off) as usize] = rg!(src) as u8;
                    }
                    FastOp::MovMaskSt { src, rd, rs, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(rs) & mask;
                        rg!(rd) = t;
                        let a = effective(t, off) as usize;
                        let v = rg!(src).to_le_bytes();
                        data[a..a + 8].copy_from_slice(&v);
                    }
                    FastOp::MovMaskLdB { ld_rd, rd, rs, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(rs) & mask;
                        rg!(rd) = t;
                        rg!(ld_rd) = u64::from(data[effective(t, off) as usize]);
                    }
                    FastOp::MovMaskLd { ld_rd, rd, rs, mask, off } => {
                        guard_steps += 1;
                        let t = rg!(rs) & mask;
                        rg!(rd) = t;
                        let a = effective(t, off) as usize;
                        rg!(ld_rd) =
                            u64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
                    }
                    FastOp::ShrMovMaskStB { src, sd, rs1, rs2, rd, mask, off } => {
                        guard_steps += 1;
                        let s = rg!(rs1) >> (rg!(rs2) & 63);
                        rg!(sd) = s;
                        let t = s & mask;
                        rg!(rd) = t;
                        data[effective(t, off) as usize] = rg!(src) as u8;
                    }
                    FastOp::ShrMovMaskLdB { ld_rd, sd, rs1, rs2, rd, mask, off } => {
                        guard_steps += 1;
                        let s = rg!(rs1) >> (rg!(rs2) & 63);
                        rg!(sd) = s;
                        let t = s & mask;
                        rg!(rd) = t;
                        rg!(ld_rd) = u64::from(data[effective(t, off) as usize]);
                    }
                }
            };
        }

        'outer: loop {
            if u64::from(pc) >= code_len {
                // Fell off the end. The oracle checks fuel before fetch.
                return Err(if steps >= max_steps {
                    InterpError::OutOfSteps
                } else {
                    InterpError::BadJump {
                        pc,
                        target: u64::from(pc),
                    }
                });
            }
            let run = u64::from(prog.run_len[pc as usize]);
            if max_steps - steps >= run {
                // Common case: fuel covers the whole block. Dispatch the
                // fused stream — one dispatch per fused element, one
                // fuel/step update per block.
                let (fs, fl) = prog.fused_span[pc as usize];
                let fblock = &prog.fused[fs as usize..(fs + fl) as usize];
                let mut done: u64 = 0;
                for f in fblock {
                    exec!(f.op, f.pc, done + 1, 'outer);
                    done += u64::from(f.width);
                }
                steps += run;
                pc += run as u32;
            } else {
                // Fuel tail: raw per-instruction execution, so exhaustion
                // lands exactly at the oracle's step boundary.
                let limit = (max_steps - steps) as usize;
                let ops = &prog.ops[pc as usize..pc as usize + run as usize];
                for (i, op) in ops.iter().take(limit).enumerate() {
                    exec!(*op, pc + i as u32, i as u64 + 1, 'outer);
                }
                // Exhausted mid-block; errors carry no step counts, so
                // the tally needs no final update.
                return Err(InterpError::OutOfSteps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=100 = 5050.
        let mut a = Asm::new(0);
        a.li(r(0), 0).li(r(1), 1).li(r(2), 101);
        a.label("loop");
        a.add(r(0), r(0), r(1));
        a.addi(r(1), r(1), 1);
        a.bltu(r(1), r(2), "loop");
        a.halt();
        let p = a.finish().unwrap();
        let out = Interp::new(&p).run(10_000).unwrap();
        assert_eq!(out.result, 5050);
        assert_eq!(out.guard_steps, 0);
    }

    #[test]
    fn memory_roundtrip_and_bounds() {
        let mut a = Asm::new(64);
        a.li(r(1), 16);
        a.li(r(2), 0xABCD);
        a.st(r(2), r(1), 0);
        a.ld(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(Interp::new(&p).run(100).unwrap().result, 0xABCD);
    }

    #[test]
    fn out_of_bounds_load_faults() {
        let mut a = Asm::new(8);
        a.li(r(1), 8); // One past: 8..16 > 8.
        a.ld(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::Fault { addr: 8, .. })
        ));
    }

    #[test]
    fn negative_offset_wraps_and_faults() {
        let mut a = Asm::new(8);
        a.li(r(1), 0);
        a.ldb(r(0), r(1), -1);
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::Fault { .. })
        ));
    }

    #[test]
    fn bad_indirect_jump_is_caught() {
        let mut a = Asm::new(0);
        a.li(r(1), 1_000_000);
        a.jr(r(1));
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::BadJump { .. })
        ));
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut a = Asm::new(0);
        a.li(r(1), 5).li(r(2), 0);
        a.raw(Insn::Divu {
            rd: r(0),
            rs1: r(1),
            rs2: r(2),
        });
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::DivideByZero { pc: 2 })
        ));
    }

    #[test]
    fn step_budget_is_enforced() {
        let mut a = Asm::new(0);
        a.label("spin");
        a.jmp("spin");
        let p = a.finish().unwrap();
        assert_eq!(Interp::new(&p).run(1000), Err(InterpError::OutOfSteps));
    }

    #[test]
    fn mask_data_confines_addresses() {
        let mut a = Asm::new(16);
        a.li(r(1), 1000); // Way out of bounds.
        a.mask_data(r(1)); // Confined to 0..16 → 1000 % 16 = 8.
        a.ldb(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let out = Interp::new(&p).run(100).unwrap();
        assert_eq!(out.guard_steps, 1);
        assert_eq!(out.result, 0);
    }

    #[test]
    fn falling_off_the_end_is_a_bad_jump() {
        let p = Program::new(vec![Insn::Li { rd: r(0), imm: 1 }], 0);
        assert!(matches!(
            Interp::new(&p).run(10),
            Err(InterpError::BadJump { .. })
        ));
    }

    #[test]
    fn input_registers_and_data_loading() {
        let mut a = Asm::new(32);
        // r0 = mem8[r1].
        a.ldb(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.load_data(5, &[42]);
        i.set_reg(r(1), 5);
        assert_eq!(i.run(10).unwrap().result, 42);
    }
}
