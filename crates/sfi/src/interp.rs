//! The bytecode interpreter.
//!
//! Executes a [`Program`] against a private data segment with deterministic
//! step accounting. The interpreter itself enforces memory safety at the
//! *simulation* level (a stray access is an [`InterpError::Fault`], never
//! undefined behaviour) — the point of the SFI/verifier/certification
//! comparison is *when* and *at what cost* each scheme guarantees that a
//! component cannot reach the fault path at all.

use crate::bytecode::{Insn, Program, Reg, NUM_REGS};

/// Execution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// A memory access left the data segment.
    Fault {
        /// Instruction index of the faulting access.
        pc: u32,
        /// Byte address that was attempted.
        addr: u64,
    },
    /// A branch or indirect jump left the program.
    BadJump {
        /// Instruction index of the jump.
        pc: u32,
        /// The attempted target.
        target: u64,
    },
    /// Unsigned division by zero.
    DivideByZero {
        /// Instruction index.
        pc: u32,
    },
    /// The step budget was exhausted before `Halt`.
    OutOfSteps,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Fault { pc, addr } => {
                write!(f, "memory fault at pc {pc}: address {addr:#x}")
            }
            InterpError::BadJump { pc, target } => {
                write!(f, "bad jump at pc {pc}: target {target}")
            }
            InterpError::DivideByZero { pc } => write!(f, "divide by zero at pc {pc}"),
            InterpError::OutOfSteps => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The result of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value of `r0` at `Halt`.
    pub result: u64,
    /// Instructions executed (the run-time cost in VM cycles).
    pub steps: u64,
    /// How many of those steps were guard instructions
    /// (`MaskData`/`MaskCode`) — the measurable SFI overhead.
    pub guard_steps: u64,
}

/// An interpreter instance: registers plus the data segment.
pub struct Interp {
    code: Vec<Insn>,
    regs: [u64; NUM_REGS],
    data: Vec<u8>,
}

impl Interp {
    /// Creates an interpreter for `program` with a zeroed data segment.
    pub fn new(program: &Program) -> Self {
        Interp {
            code: program.code.clone(),
            regs: [0; NUM_REGS],
            data: vec![0; program.data_len as usize],
        }
    }

    /// Pre-loads bytes into the data segment at `offset` (e.g. a packet for
    /// a protocol-processing component).
    ///
    /// # Panics
    ///
    /// Panics if the bytes do not fit — a harness bug.
    pub fn load_data(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads back the data segment (to inspect component output).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Sets an input register before the run.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.0 as usize] = v;
    }

    /// Runs until `Halt`, error, or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<ExecOutcome, InterpError> {
        let mut pc: u32 = 0;
        let mut steps: u64 = 0;
        let mut guard_steps: u64 = 0;
        let code_len = self.code.len() as u64;
        let data_len = self.data.len() as u64;

        macro_rules! reg {
            ($r:expr) => {
                self.regs[$r.0 as usize]
            };
        }

        loop {
            if steps >= max_steps {
                return Err(InterpError::OutOfSteps);
            }
            let insn = match self.code.get(pc as usize) {
                Some(i) => *i,
                None => {
                    return Err(InterpError::BadJump {
                        pc,
                        target: u64::from(pc),
                    });
                }
            };
            steps += 1;
            let mut next = pc + 1;
            match insn {
                Insn::Li { rd, imm } => reg!(rd) = imm as u64,
                Insn::Mov { rd, rs } => reg!(rd) = reg!(rs),
                Insn::Add { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_add(reg!(rs2)),
                Insn::Sub { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_sub(reg!(rs2)),
                Insn::Mul { rd, rs1, rs2 } => reg!(rd) = reg!(rs1).wrapping_mul(reg!(rs2)),
                Insn::Divu { rd, rs1, rs2 } => {
                    let d = reg!(rs2);
                    if d == 0 {
                        return Err(InterpError::DivideByZero { pc });
                    }
                    reg!(rd) = reg!(rs1) / d;
                }
                Insn::And { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) & reg!(rs2),
                Insn::Or { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) | reg!(rs2),
                Insn::Xor { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) ^ reg!(rs2),
                Insn::Shl { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) << (reg!(rs2) & 63),
                Insn::Shr { rd, rs1, rs2 } => reg!(rd) = reg!(rs1) >> (reg!(rs2) & 63),
                Insn::Ld { rd, base, off } => {
                    let addr = effective(reg!(base), off);
                    let a = addr as usize;
                    if addr.checked_add(8).is_none() || addr + 8 > data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    reg!(rd) = u64::from_le_bytes(self.data[a..a + 8].try_into().expect("8 bytes"));
                }
                Insn::LdB { rd, base, off } => {
                    let addr = effective(reg!(base), off);
                    if addr >= data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    reg!(rd) = u64::from(self.data[addr as usize]);
                }
                Insn::St { rs, base, off } => {
                    let addr = effective(reg!(base), off);
                    let a = addr as usize;
                    if addr.checked_add(8).is_none() || addr + 8 > data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    let v = reg!(rs).to_le_bytes();
                    self.data[a..a + 8].copy_from_slice(&v);
                }
                Insn::StB { rs, base, off } => {
                    let addr = effective(reg!(base), off);
                    if addr >= data_len {
                        return Err(InterpError::Fault { pc, addr });
                    }
                    let v = reg!(rs) as u8;
                    self.data[addr as usize] = v;
                }
                Insn::Beq { rs1, rs2, target } => {
                    if reg!(rs1) == reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Bne { rs1, rs2, target } => {
                    if reg!(rs1) != reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Bltu { rs1, rs2, target } => {
                    if reg!(rs1) < reg!(rs2) {
                        next = check_jump(pc, u64::from(target), code_len)?;
                    }
                }
                Insn::Jmp { target } => {
                    next = check_jump(pc, u64::from(target), code_len)?;
                }
                Insn::Jr { rs } => {
                    next = check_jump(pc, reg!(rs), code_len)?;
                }
                Insn::MaskData { r } => {
                    guard_steps += 1;
                    if data_len > 0 {
                        reg!(r) %= data_len;
                    } else {
                        reg!(r) = 0;
                    }
                }
                Insn::MaskCode { r } => {
                    guard_steps += 1;
                    if code_len > 0 {
                        reg!(r) %= code_len;
                    }
                }
                Insn::Halt => {
                    return Ok(ExecOutcome {
                        result: self.regs[0],
                        steps,
                        guard_steps,
                    });
                }
            }
            pc = next;
        }
    }
}

/// Effective address of a base+offset access (wrapping, like hardware).
fn effective(base: u64, off: i32) -> u64 {
    base.wrapping_add(off as i64 as u64)
}

/// Validates a jump target.
fn check_jump(pc: u32, target: u64, code_len: u64) -> Result<u32, InterpError> {
    if target >= code_len {
        Err(InterpError::BadJump { pc, target })
    } else {
        Ok(target as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=100 = 5050.
        let mut a = Asm::new(0);
        a.li(r(0), 0).li(r(1), 1).li(r(2), 101);
        a.label("loop");
        a.add(r(0), r(0), r(1));
        a.addi(r(1), r(1), 1);
        a.bltu(r(1), r(2), "loop");
        a.halt();
        let p = a.finish().unwrap();
        let out = Interp::new(&p).run(10_000).unwrap();
        assert_eq!(out.result, 5050);
        assert_eq!(out.guard_steps, 0);
    }

    #[test]
    fn memory_roundtrip_and_bounds() {
        let mut a = Asm::new(64);
        a.li(r(1), 16);
        a.li(r(2), 0xABCD);
        a.st(r(2), r(1), 0);
        a.ld(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(Interp::new(&p).run(100).unwrap().result, 0xABCD);
    }

    #[test]
    fn out_of_bounds_load_faults() {
        let mut a = Asm::new(8);
        a.li(r(1), 8); // One past: 8..16 > 8.
        a.ld(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::Fault { addr: 8, .. })
        ));
    }

    #[test]
    fn negative_offset_wraps_and_faults() {
        let mut a = Asm::new(8);
        a.li(r(1), 0);
        a.ldb(r(0), r(1), -1);
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::Fault { .. })
        ));
    }

    #[test]
    fn bad_indirect_jump_is_caught() {
        let mut a = Asm::new(0);
        a.li(r(1), 1_000_000);
        a.jr(r(1));
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::BadJump { .. })
        ));
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut a = Asm::new(0);
        a.li(r(1), 5).li(r(2), 0);
        a.raw(Insn::Divu {
            rd: r(0),
            rs1: r(1),
            rs2: r(2),
        });
        a.halt();
        let p = a.finish().unwrap();
        assert!(matches!(
            Interp::new(&p).run(100),
            Err(InterpError::DivideByZero { pc: 2 })
        ));
    }

    #[test]
    fn step_budget_is_enforced() {
        let mut a = Asm::new(0);
        a.label("spin");
        a.jmp("spin");
        let p = a.finish().unwrap();
        assert_eq!(Interp::new(&p).run(1000), Err(InterpError::OutOfSteps));
    }

    #[test]
    fn mask_data_confines_addresses() {
        let mut a = Asm::new(16);
        a.li(r(1), 1000); // Way out of bounds.
        a.mask_data(r(1)); // Confined to 0..16 → 1000 % 16 = 8.
        a.ldb(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let out = Interp::new(&p).run(100).unwrap();
        assert_eq!(out.guard_steps, 1);
        assert_eq!(out.result, 0);
    }

    #[test]
    fn falling_off_the_end_is_a_bad_jump() {
        let p = Program::new(vec![Insn::Li { rd: r(0), imm: 1 }], 0);
        assert!(matches!(
            Interp::new(&p).run(10),
            Err(InterpError::BadJump { .. })
        ));
    }

    #[test]
    fn input_registers_and_data_loading() {
        let mut a = Asm::new(32);
        // r0 = mem8[r1].
        a.ldb(r(0), r(1), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        i.load_data(5, &[42]);
        i.set_reg(r(1), 5);
        assert_eq!(i.run(10).unwrap().result, 42);
    }
}
