//! Parameterised benchmark components.
//!
//! These are the "downloadable components" of the experiments: protocol
//! processing kernels of the sort the paper's motivating applications
//! (fast protocol processing in a shared driver, parallel computation)
//! would push into the kernel protection domain. Each generator comes in a
//! plain variant (only certifiable) and, where meaningful, a *verified*
//! variant written in the idiom the load-time verifier can prove safe —
//! standing in for the output of a type-safe compiler.

use crate::{
    asm::Asm,
    bytecode::{Program, Reg},
};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A byte-wise checksum over a `data_len`-byte buffer, repeated
/// `iterations` times. Raw pointer arithmetic: not verifiable, the
/// certification / SFI candidate. Result: the checksum in `r0`.
pub fn checksum_loop(data_len: u32, iterations: u32) -> Program {
    assert!(data_len > 0);
    let mut a = Asm::new(data_len);
    // r0 = acc, r1 = ptr, r2 = limit, r3 = outer counter, r4 = outer limit.
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.ldb(r(5), r(1), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// The same checksum written in the verified-compiler idiom: every load
/// address is re-masked into the segment, so the load-time verifier
/// accepts it. `data_len` must be a power of two ≥ 8 (compilers pad).
pub fn checksum_loop_verified(data_len: u32, iterations: u32) -> Program {
    assert!(data_len >= 8 && data_len.is_power_of_two());
    let mut a = Asm::new(data_len);
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    // The compiler-emitted guard: confine, then access.
    a.mov(r(6), r(1));
    a.mask_data(r(6));
    a.ldb(r(5), r(6), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// A word-wise checksum in the verified idiom (mask + align-down), showing
/// the verifier's cheaper whole-word guard. `data_len` must be a power of
/// two ≥ 8.
pub fn checksum_words_verified(data_len: u32, iterations: u32) -> Program {
    assert!(data_len >= 8 && data_len.is_power_of_two());
    let mut a = Asm::new(data_len);
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.li(r(7), !7i64); // Alignment mask, hoisted out of the loop.
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.mov(r(6), r(1));
    a.mask_data(r(6));
    a.and(r(6), r(6), r(7));
    a.ld(r(5), r(6), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 8);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// A pure-ALU loop (no memory traffic): SFI adds nothing, the verifier
/// accepts it trivially. `iterations` outer rounds of 4 ALU ops.
pub fn alu_loop(iterations: u32) -> Program {
    let mut a = Asm::new(0);
    a.li(r(0), 1);
    a.li(r(1), 0);
    a.li(r(2), i64::from(iterations));
    a.li(r(5), 3);
    a.label("loop");
    a.mul(r(0), r(0), r(5));
    a.xor(r(0), r(0), r(1));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "loop");
    a.halt();
    a.finish().expect("static labels")
}

/// A store-heavy table initialisation: writes every byte of the segment
/// `iterations` times. Maximum SFI overhead density.
pub fn table_fill(data_len: u32, iterations: u32) -> Program {
    assert!(data_len > 0);
    let mut a = Asm::new(data_len);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.stb(r(1), r(1), 0);
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.mov(r(0), r(3));
    a.halt();
    a.finish().expect("static labels")
}

/// A malicious component: writes outside its segment (simulates packet
/// snooping / kernel-memory scribbling). Used by security tests: SFI must
/// contain it, the verifier must reject it, and an honest certifier must
/// refuse to sign it.
pub fn wild_writer() -> Program {
    let mut a = Asm::new(16);
    a.li(r(1), 0x7FFF_0000);
    a.li(r(2), 0x41);
    a.stb(r(2), r(1), 0);
    a.li(r(0), 1);
    a.halt();
    a.finish().expect("static labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interp::Interp, sandbox::sandbox_rewrite, verifier::verify};

    #[test]
    fn checksum_variants_agree() {
        let data: Vec<u8> = (0..64u8).collect();
        let expected: u64 = data.iter().map(|&b| u64::from(b)).sum();

        let mut plain = Interp::new(&checksum_loop(64, 1));
        plain.load_data(0, &data);
        assert_eq!(plain.run(1_000_000).unwrap().result, expected);

        let mut verified = Interp::new(&checksum_loop_verified(64, 1));
        verified.load_data(0, &data);
        assert_eq!(verified.run(1_000_000).unwrap().result, expected);

        let (sandboxed, _) = sandbox_rewrite(&checksum_loop(64, 1));
        let mut sb = Interp::new(&sandboxed);
        sb.load_data(0, &data);
        assert_eq!(sb.run(1_000_000).unwrap().result, expected);
    }

    #[test]
    fn word_checksum_matches_byte_checksum_on_word_sums() {
        let data = [1u8; 64];
        let mut w = Interp::new(&checksum_words_verified(64, 1));
        w.load_data(0, &data);
        // Eight words, each 0x0101010101010101.
        assert_eq!(
            w.run(1_000_000).unwrap().result,
            0x0101010101010101u64.wrapping_mul(8)
        );
    }

    #[test]
    fn verified_variants_verify_and_plain_do_not() {
        assert!(verify(&checksum_loop_verified(64, 1)).is_ok());
        assert!(verify(&checksum_words_verified(64, 1)).is_ok());
        assert!(verify(&alu_loop(5)).is_ok());
        assert!(verify(&checksum_loop(64, 1)).is_err());
        assert!(verify(&table_fill(64, 1)).is_err());
        assert!(verify(&wild_writer()).is_err());
    }

    #[test]
    fn steps_scale_linearly_with_iterations() {
        let s1 = Interp::new(&alu_loop(10)).run(1 << 20).unwrap().steps;
        let s10 = Interp::new(&alu_loop(100)).run(1 << 20).unwrap().steps;
        // 4 instructions per iteration + constant setup.
        assert!(s10 > s1 * 9 && s10 < s1 * 11, "s1={s1} s10={s10}");
    }

    #[test]
    fn sfi_overhead_on_checksum_is_per_byte() {
        let p = checksum_loop(256, 4);
        let plain = Interp::new(&p);
        let mut plain = plain;
        let base = plain.run(1 << 22).unwrap();
        let (sb, _) = sandbox_rewrite(&p);
        let mut sandboxed = Interp::new(&sb);
        let guarded = sandboxed.run(1 << 22).unwrap();
        // One guard per byte load.
        assert_eq!(guarded.guard_steps, 256 * 4);
        assert_eq!(guarded.steps, base.steps + guarded.guard_steps);
    }

    #[test]
    fn verified_word_loop_beats_byte_loop() {
        // The verified compiler's word-wise guard does ~1/8 the loop
        // iterations: the middle ground between SFI and certified-native.
        let byte = Interp::new(&checksum_loop_verified(1024, 1))
            .run(1 << 22)
            .unwrap()
            .steps;
        let word = Interp::new(&checksum_words_verified(1024, 1))
            .run(1 << 22)
            .unwrap()
            .steps;
        assert!(word * 4 < byte, "word={word} byte={byte}");
    }

    #[test]
    fn wild_writer_faults_unprotected_and_is_contained_by_sfi() {
        assert!(Interp::new(&wild_writer()).run(100).is_err());
        let (sb, _) = sandbox_rewrite(&wild_writer());
        assert!(Interp::new(&sb).run(100).is_ok());
    }
}
