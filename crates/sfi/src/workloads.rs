//! Parameterised benchmark components.
//!
//! These are the "downloadable components" of the experiments: protocol
//! processing kernels of the sort the paper's motivating applications
//! (fast protocol processing in a shared driver, parallel computation)
//! would push into the kernel protection domain. Each generator comes in a
//! plain variant (only certifiable) and, where meaningful, a *verified*
//! variant written in the idiom the load-time verifier can prove safe —
//! standing in for the output of a type-safe compiler.

use crate::{
    asm::Asm,
    bytecode::{Program, Reg},
};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A byte-wise checksum over a `data_len`-byte buffer, repeated
/// `iterations` times. Raw pointer arithmetic: not verifiable, the
/// certification / SFI candidate. Result: the checksum in `r0`.
pub fn checksum_loop(data_len: u32, iterations: u32) -> Program {
    assert!(data_len > 0);
    let mut a = Asm::new(data_len);
    // r0 = acc, r1 = ptr, r2 = limit, r3 = outer counter, r4 = outer limit.
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.ldb(r(5), r(1), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// The same checksum written in the verified-compiler idiom: every load
/// address is re-masked into the segment, so the load-time verifier
/// accepts it. `data_len` must be a power of two ≥ 8 (compilers pad).
pub fn checksum_loop_verified(data_len: u32, iterations: u32) -> Program {
    assert!(data_len >= 8 && data_len.is_power_of_two());
    let mut a = Asm::new(data_len);
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    // The compiler-emitted guard: confine, then access.
    a.mov(r(6), r(1));
    a.mask_data(r(6));
    a.ldb(r(5), r(6), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// A word-wise checksum in the verified idiom (mask + align-down), showing
/// the verifier's cheaper whole-word guard. `data_len` must be a power of
/// two ≥ 8.
pub fn checksum_words_verified(data_len: u32, iterations: u32) -> Program {
    assert!(data_len >= 8 && data_len.is_power_of_two());
    let mut a = Asm::new(data_len);
    a.li(r(0), 0);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.li(r(7), !7i64); // Alignment mask, hoisted out of the loop.
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.mov(r(6), r(1));
    a.mask_data(r(6));
    a.and(r(6), r(6), r(7));
    a.ld(r(5), r(6), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(1), r(1), 8);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.halt();
    a.finish().expect("static labels")
}

/// A pure-ALU loop (no memory traffic): SFI adds nothing, the verifier
/// accepts it trivially. `iterations` outer rounds of 4 ALU ops.
pub fn alu_loop(iterations: u32) -> Program {
    let mut a = Asm::new(0);
    a.li(r(0), 1);
    a.li(r(1), 0);
    a.li(r(2), i64::from(iterations));
    a.li(r(5), 3);
    a.label("loop");
    a.mul(r(0), r(0), r(5));
    a.xor(r(0), r(0), r(1));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "loop");
    a.halt();
    a.finish().expect("static labels")
}

/// A store-heavy table initialisation: writes every byte of the segment
/// `iterations` times. Maximum SFI overhead density.
pub fn table_fill(data_len: u32, iterations: u32) -> Program {
    assert!(data_len > 0);
    let mut a = Asm::new(data_len);
    a.li(r(3), 0);
    a.li(r(4), i64::from(iterations));
    a.label("outer");
    a.li(r(1), 0);
    a.li(r(2), i64::from(data_len));
    a.label("inner");
    a.stb(r(1), r(1), 0);
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(2), "inner");
    a.addi(r(3), r(3), 1);
    a.bltu(r(3), r(4), "outer");
    a.mov(r(0), r(3));
    a.halt();
    a.finish().expect("static labels")
}

/// A protocol-header parser in the verified idiom: loads a length word
/// from a fixed offset, clamps it with an `and`, sums that many payload
/// bytes through a clamped index, and stores the result word at the tail
/// of the segment. Exercises constant-address and bounded-base-plus-offset
/// accesses — idioms only the interval analysis can prove. The 256-byte
/// layout: `[len:8][payload:240][result:8]`.
pub fn header_parse_verified() -> Program {
    let mut a = Asm::new(256);
    a.li(r(9), 0);
    a.ld(r(1), r(9), 0); // Length word at offset 0: constant address.
    a.li(r(2), 127);
    a.and(r(1), r(1), r(2)); // Clamp the attacker-controlled length.
    a.li(r(3), 0); // Index.
    a.li(r(0), 0); // Accumulator.
    a.label("loop");
    a.beq(r(3), r(1), "done");
    a.mov(r(6), r(3));
    a.and(r(6), r(6), r(2)); // Bound the index: r6 in [0, 127].
    a.addi(r(6), r(6), 8); // Payload base: [8, 135] within 256.
    a.ldb(r(5), r(6), 0);
    a.add(r(0), r(0), r(5));
    a.addi(r(3), r(3), 1);
    a.jmp("loop");
    a.label("done");
    a.li(r(9), 248);
    a.st(r(0), r(9), 0); // Result word at the tail: constant address.
    a.halt();
    a.finish().expect("static labels")
}

/// A Bloom-filter insert loop in the verified idiom: one multiplicative
/// hash per element, eight probe bytes (k = 8) extracted by shifting,
/// each probe masked into the 256-byte filter and written. This is the
/// guard-dense extreme of the SFI spectrum — eight mask-plus-store pairs
/// per hash, so nearly half the dynamic instructions are run-time checks
/// the analysis can discharge. The `mov/mask_data/stb` triple (and the
/// `shr/mov/mask_data/stb` probe quad) is exactly the guard idiom the
/// elided engine compiles to a single operation.
pub fn bloom_insert_verified(iterations: u32) -> Program {
    let mut a = Asm::new(256);
    a.li(r(2), 0x9E37_79B9_7F4A_7C15u64 as i64); // Hash state.
    a.li(r(5), 6364136223846793005u64 as i64); // Multiplier (MMIX LCG).
    a.li(r(7), 1442695040888963407u64 as i64); // Increment.
    a.li(r(9), 8); // Probe shift.
    a.li(r(10), 1); // Probe value.
    a.li(r(4), 0); // Element counter.
    a.li(r(3), i64::from(iterations));
    a.label("loop");
    a.mul(r(2), r(2), r(5)); // Next hash.
    a.add(r(2), r(2), r(7));
    a.mov(r(6), r(2)); // Probe 0: low byte.
    a.mask_data(r(6));
    a.stb(r(10), r(6), 0);
    a.shr(r(8), r(2), r(9)); // Probes 1..=7: each further byte.
    a.mov(r(6), r(8));
    a.mask_data(r(6));
    a.stb(r(10), r(6), 0);
    for _ in 2..8 {
        a.shr(r(8), r(8), r(9));
        a.mov(r(6), r(8));
        a.mask_data(r(6));
        a.stb(r(10), r(6), 0);
    }
    a.addi(r(4), r(4), 1);
    a.bltu(r(4), r(3), "loop");
    a.mov(r(0), r(4));
    a.halt();
    a.finish().expect("static labels")
}

/// The benign workload suite: every program a well-behaved "trusted
/// compiler" would emit — each one verifies, runs without trapping, and is
/// lint-clean. CI runs the lint pass over this suite expecting zero
/// diagnostics; the `b12_sfi` bench runs it through both interpreters.
pub fn benign_suite() -> Vec<(&'static str, Program)> {
    vec![
        ("checksum_bytes", checksum_loop_verified(64, 2)),
        ("checksum_words", checksum_words_verified(64, 2)),
        ("alu", alu_loop(16)),
        ("header_parse", header_parse_verified()),
        ("bloom_insert", bloom_insert_verified(128)),
    ]
}

/// A malicious component: writes outside its segment (simulates packet
/// snooping / kernel-memory scribbling). Used by security tests: SFI must
/// contain it, the verifier must reject it, and an honest certifier must
/// refuse to sign it.
pub fn wild_writer() -> Program {
    let mut a = Asm::new(16);
    a.li(r(1), 0x7FFF_0000);
    a.li(r(2), 0x41);
    a.stb(r(2), r(1), 0);
    a.li(r(0), 1);
    a.halt();
    a.finish().expect("static labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interp::Interp, sandbox::sandbox_rewrite, verifier::verify};

    #[test]
    fn checksum_variants_agree() {
        let data: Vec<u8> = (0..64u8).collect();
        let expected: u64 = data.iter().map(|&b| u64::from(b)).sum();

        let mut plain = Interp::new(&checksum_loop(64, 1));
        plain.load_data(0, &data);
        assert_eq!(plain.run(1_000_000).unwrap().result, expected);

        let mut verified = Interp::new(&checksum_loop_verified(64, 1));
        verified.load_data(0, &data);
        assert_eq!(verified.run(1_000_000).unwrap().result, expected);

        let (sandboxed, _) = sandbox_rewrite(&checksum_loop(64, 1));
        let mut sb = Interp::new(&sandboxed);
        sb.load_data(0, &data);
        assert_eq!(sb.run(1_000_000).unwrap().result, expected);
    }

    #[test]
    fn word_checksum_matches_byte_checksum_on_word_sums() {
        let data = [1u8; 64];
        let mut w = Interp::new(&checksum_words_verified(64, 1));
        w.load_data(0, &data);
        // Eight words, each 0x0101010101010101.
        assert_eq!(
            w.run(1_000_000).unwrap().result,
            0x0101010101010101u64.wrapping_mul(8)
        );
    }

    #[test]
    fn verified_variants_verify_and_plain_do_not() {
        assert!(verify(&checksum_loop_verified(64, 1)).is_ok());
        assert!(verify(&checksum_words_verified(64, 1)).is_ok());
        assert!(verify(&alu_loop(5)).is_ok());
        assert!(verify(&checksum_loop(64, 1)).is_err());
        assert!(verify(&table_fill(64, 1)).is_err());
        assert!(verify(&wild_writer()).is_err());
    }

    #[test]
    fn header_parse_sums_declared_payload() {
        let p = header_parse_verified();
        verify(&p).expect("header parser must verify");
        let mut i = Interp::new(&p);
        // len = 4; payload bytes 10, 20, 30, 40 at offset 8.
        i.load_data(0, &4u64.to_le_bytes());
        i.load_data(8, &[10, 20, 30, 40]);
        let out = i.run(1 << 16).unwrap();
        assert_eq!(out.result, 100);
        // Result word stored at the tail.
        assert_eq!(i.data()[248..256], 100u64.to_le_bytes());
    }

    #[test]
    fn bloom_insert_verifies_and_populates_the_filter() {
        let p = bloom_insert_verified(64);
        verify(&p).expect("bloom insert must verify");
        let mut i = Interp::new(&p);
        let out = i.run(1 << 20).unwrap();
        assert_eq!(out.result, 64);
        // Eight guard instructions per element, all counted.
        assert_eq!(out.guard_steps, 8 * 64);
        // 512 probes over 256 slots: the filter must be meaningfully
        // populated (the LCG scatters, it does not hammer one slot).
        let set = i.data().iter().filter(|&&b| b == 1).count();
        assert!(set > 64, "filter barely populated: {set} slots");
    }

    #[test]
    fn header_parse_contains_hostile_length() {
        // A length word far beyond the payload is clamped, not trusted.
        let p = header_parse_verified();
        let mut i = Interp::new(&p);
        i.load_data(0, &u64::MAX.to_le_bytes());
        assert!(i.run(1 << 16).is_ok());
    }

    #[test]
    fn benign_suite_verifies_and_runs() {
        for (name, p) in benign_suite() {
            verify(&p).unwrap_or_else(|e| panic!("{name} failed to verify: {e}"));
            let mut i = Interp::new(&p);
            i.run(1 << 22)
                .unwrap_or_else(|e| panic!("{name} trapped: {e}"));
        }
    }

    #[test]
    fn steps_scale_linearly_with_iterations() {
        let s1 = Interp::new(&alu_loop(10)).run(1 << 20).unwrap().steps;
        let s10 = Interp::new(&alu_loop(100)).run(1 << 20).unwrap().steps;
        // 4 instructions per iteration + constant setup.
        assert!(s10 > s1 * 9 && s10 < s1 * 11, "s1={s1} s10={s10}");
    }

    #[test]
    fn sfi_overhead_on_checksum_is_per_byte() {
        let p = checksum_loop(256, 4);
        let plain = Interp::new(&p);
        let mut plain = plain;
        let base = plain.run(1 << 22).unwrap();
        let (sb, _) = sandbox_rewrite(&p);
        let mut sandboxed = Interp::new(&sb);
        let guarded = sandboxed.run(1 << 22).unwrap();
        // One guard per byte load.
        assert_eq!(guarded.guard_steps, 256 * 4);
        assert_eq!(guarded.steps, base.steps + guarded.guard_steps);
    }

    #[test]
    fn verified_word_loop_beats_byte_loop() {
        // The verified compiler's word-wise guard does ~1/8 the loop
        // iterations: the middle ground between SFI and certified-native.
        let byte = Interp::new(&checksum_loop_verified(1024, 1))
            .run(1 << 22)
            .unwrap()
            .steps;
        let word = Interp::new(&checksum_words_verified(1024, 1))
            .run(1 << 22)
            .unwrap()
            .steps;
        assert!(word * 4 < byte, "word={word} byte={byte}");
    }

    #[test]
    fn wild_writer_faults_unprotected_and_is_contained_by_sfi() {
        assert!(Interp::new(&wild_writer()).run(100).is_err());
        let (sb, _) = sandbox_rewrite(&wild_writer());
        assert!(Interp::new(&sb).run(100).is_ok());
    }
}
