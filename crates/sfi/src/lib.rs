//! Component bytecode and software-protection baselines.
//!
//! The paper positions certification *against* the software protection used
//! by the Exokernel and SPIN: "restricted, type safe languages and
//! sandboxing … to prevent it from causing harm" (section 1), and claims
//! that "verifying a certificate at load-time obviates the need for run
//! time fault checks thus allowing components to be more efficient"
//! (section 5). To measure that claim we need downloadable components with
//! real code in them, so this crate provides:
//!
//! - [`bytecode`] — a small register-machine instruction set; a component's
//!   *image* is its encoded program, which is what certificates digest,
//! - [`asm`] — a tiny assembler for building programs with labels,
//! - [`interp`] — the interpreter, with deterministic step/cycle accounting,
//!   plus the proof-elided fast interpreter described below,
//! - [`sandbox`] — Wahbe-style software fault isolation: rewrites a program
//!   so every memory access and indirect jump is masked into the sandbox
//!   segment (run-time overhead on every access),
//! - [`analysis`] — the static-analysis framework: CFG construction, an
//!   interval + known-bits abstract domain with widening, and the
//!   per-instruction [`analysis::ProofMap`] of discharged facts,
//! - [`verifier`] — a SPIN-style load-time verifier: an acceptance policy
//!   over the analysis that admits a program only if every access is
//!   provably safe (load-time cost, zero run-time overhead, but rejects
//!   programs it cannot prove),
//! - [`workloads`] — parameterised benchmark programs (checksum loops,
//!   memory-walking kernels) shared by tests and benches.
//!
//! # The verify → analyze → prove → elide pipeline
//!
//! The software-protection claim the paper makes — "verifying a
//! certificate at load-time obviates the need for run time fault checks" —
//! is realised here in four stages:
//!
//! 1. **verify**: [`verifier::verify`] rejects any program with a memory
//!    access or indirect jump it cannot prove safe. This is the trust
//!    decision; everything after it is optimisation.
//! 2. **analyze**: [`analysis::analyze`] runs the underlying machinery —
//!    basic blocks and edges ([`analysis::cfg::Cfg`]), then a worklist
//!    fixpoint where every register carries an interval plus known-bit
//!    masks ([`analysis::domain::AbsVal`]), widened at loop heads against
//!    the segment bounds so back edges converge without losing the very
//!    facts the guards establish.
//! 3. **prove**: a final pass over the converged states fills the
//!    [`analysis::ProofMap`]: per instruction, whether the load/store is
//!    in-bounds, the divisor nonzero, the jump target in-range, a branch
//!    one-sided, or the instruction unreachable.
//! 4. **elide**: [`interp::ElidedProgram::compile`] consumes the proof map
//!    and emits a parallel instruction stream in which every discharged
//!    check is *gone* — unchecked loads and stores, unvalidated proven
//!    jumps, strength-reduced masks, and block-batched fuel accounting.
//!    [`interp::ElidedInterp`] executes that stream; the fully-checked
//!    [`Interp`] is kept verbatim as the differential oracle, and the
//!    conformance suite holds them bit-for-bit equal on registers, memory,
//!    traps and fuel.
//!
//! [`analysis::lint`] reuses stages 2–3 for diagnostics instead of speed:
//! unreachable code, dead stores, always-trapping instructions, and
//! unguarded-indirect-jump explanations with register provenance.
//!
//! Certified-native execution (the Paramecium path) runs the *original*
//! program with no checks at all: the trust was established by signature at
//! load time.

pub mod analysis;
pub mod asm;
pub mod bytecode;
pub mod interp;
pub mod sandbox;
pub mod verifier;
pub mod workloads;

pub use asm::Asm;
pub use bytecode::{Insn, Program, Reg};
pub use interp::{ElidedInterp, ElidedProgram, ExecOutcome, Interp, InterpError};
pub use sandbox::sandbox_rewrite;
pub use verifier::{verify, VerifyError};

/// Errors common to loading bytecode images.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The encoded image was malformed.
    Malformed(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Malformed(m) => write!(f, "malformed image: {m}"),
        }
    }
}

impl std::error::Error for ImageError {}
