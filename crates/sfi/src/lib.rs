//! Component bytecode and software-protection baselines.
//!
//! The paper positions certification *against* the software protection used
//! by the Exokernel and SPIN: "restricted, type safe languages and
//! sandboxing … to prevent it from causing harm" (section 1), and claims
//! that "verifying a certificate at load-time obviates the need for run
//! time fault checks thus allowing components to be more efficient"
//! (section 5). To measure that claim we need downloadable components with
//! real code in them, so this crate provides:
//!
//! - [`bytecode`] — a small register-machine instruction set; a component's
//!   *image* is its encoded program, which is what certificates digest,
//! - [`asm`] — a tiny assembler for building programs with labels,
//! - [`interp`] — the interpreter, with deterministic step/cycle accounting,
//! - [`sandbox`] — Wahbe-style software fault isolation: rewrites a program
//!   so every memory access and indirect jump is masked into the sandbox
//!   segment (run-time overhead on every access),
//! - [`verifier`] — a SPIN-style load-time verifier: a linear abstract
//!   interpretation that accepts a program only if every access is provably
//!   safe (load-time cost, zero run-time overhead, but rejects programs it
//!   cannot prove),
//! - [`workloads`] — parameterised benchmark programs (checksum loops,
//!   memory-walking kernels) shared by tests and benches.
//!
//! Certified-native execution (the Paramecium path) runs the *original*
//! program with no checks at all: the trust was established by signature at
//! load time.

pub mod asm;
pub mod bytecode;
pub mod interp;
pub mod sandbox;
pub mod verifier;
pub mod workloads;

pub use asm::Asm;
pub use bytecode::{Insn, Program, Reg};
pub use interp::{ExecOutcome, Interp, InterpError};
pub use sandbox::sandbox_rewrite;
pub use verifier::{verify, VerifyError};

/// Errors common to loading bytecode images.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The encoded image was malformed.
    Malformed(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Malformed(m) => write!(f, "malformed image: {m}"),
        }
    }
}

impl std::error::Error for ImageError {}
