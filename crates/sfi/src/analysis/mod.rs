//! Static analysis over verified bytecode: CFG, abstract interpretation,
//! and a per-instruction proof map.
//!
//! This is the load-time machinery behind the paper's software-protection
//! bet: prove safety *once*, at load time, so the hot path pays nothing at
//! run time. The pipeline is
//!
//! 1. [`cfg::Cfg::build`] — basic blocks, successor/predecessor edges,
//!    reachability;
//! 2. a worklist fixpoint over [`domain::AbsVal`] states (intervals +
//!    known bits per register, widened at loop heads so back edges
//!    converge in a handful of visits);
//! 3. a final facts pass producing the [`ProofMap`]: for each reachable
//!    instruction, which run-time checks are statically discharged —
//!    loads/stores proven in-bounds, divisors proven nonzero, jumps proven
//!    in-range, branches proven one-sided, instructions proven
//!    unreachable or proven to always trap.
//!
//! The [`crate::verifier`] turns missing proofs into load-time rejection;
//! [`crate::interp::ElidedProgram`] turns present proofs into elided
//! run-time checks; [`lint`] turns the same facts into diagnostics.

pub mod cfg;
pub mod domain;
pub mod lint;

use crate::bytecode::{Insn, Program, Reg, NUM_REGS};
use crate::verifier::{VerifyError, VerifyReport};
use cfg::Cfg;
use domain::AbsVal;

/// Definition-site lattice value: which pc last wrote a register.
pub const DEF_ENTRY: u32 = u32::MAX;
/// Several different pcs may have written the register.
pub const DEF_MANY: u32 = u32::MAX - 1;

/// Abstract machine state: one [`AbsVal`] and one definition site per
/// register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsState {
    /// Per-register abstract value.
    pub regs: [AbsVal; NUM_REGS],
    /// Per-register definition site (`DEF_ENTRY`, `DEF_MANY`, or a pc).
    pub defs: [u32; NUM_REGS],
}

impl AbsState {
    fn entry() -> AbsState {
        AbsState {
            regs: [AbsVal::TOP; NUM_REGS],
            defs: [DEF_ENTRY; NUM_REGS],
        }
    }

    fn join(&self, other: &AbsState) -> AbsState {
        let mut out = *self;
        for i in 0..NUM_REGS {
            out.regs[i] = self.regs[i].join(other.regs[i]);
            out.defs[i] = if self.defs[i] == other.defs[i] {
                self.defs[i]
            } else {
                DEF_MANY
            };
        }
        out
    }

    fn widen(&self, next: &AbsState, thresholds: &[u64]) -> AbsState {
        let mut out = *self;
        for i in 0..NUM_REGS {
            out.regs[i] = self.regs[i].widen(next.regs[i], thresholds);
            out.defs[i] = if self.defs[i] == next.defs[i] {
                self.defs[i]
            } else {
                DEF_MANY
            };
        }
        out
    }

    /// Abstract value of a register.
    pub fn reg(&self, r: Reg) -> AbsVal {
        self.regs[r.0 as usize]
    }
}

/// Facts discharged for one instruction (bitflags).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Facts(u16);

impl Facts {
    /// The instruction can execute (some state reaches it).
    pub const REACHABLE: Facts = Facts(1);
    /// Memory access proven in-bounds on every execution.
    pub const MEM_SAFE: Facts = Facts(2);
    /// Divisor proven nonzero on every execution.
    pub const DIV_NONZERO: Facts = Facts(4);
    /// Jump target proven a valid instruction index on every execution.
    pub const JUMP_SAFE: Facts = Facts(8);
    /// Conditional branch proven to always take its target.
    pub const ALWAYS_TAKEN: Facts = Facts(16);
    /// Conditional branch proven to never take its target.
    pub const NEVER_TAKEN: Facts = Facts(32);
    /// The instruction traps on every execution.
    pub const ALWAYS_TRAPS: Facts = Facts(64);

    /// Set union.
    #[must_use]
    pub fn with(self, other: Facts) -> Facts {
        Facts(self.0 | other.0)
    }

    /// True if every flag of `other` is present.
    pub fn has(self, other: Facts) -> bool {
        self.0 & other.0 == other.0
    }
}

/// The per-instruction proof map: what the analysis discharged.
#[derive(Clone, Debug)]
pub struct ProofMap {
    facts: Vec<Facts>,
}

impl ProofMap {
    /// Facts for instruction `pc`.
    pub fn at(&self, pc: u32) -> Facts {
        self.facts[pc as usize]
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the program had no instructions.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Counts instructions carrying `fact`.
    pub fn count(&self, fact: Facts) -> usize {
        self.facts.iter().filter(|f| f.has(fact)).count()
    }
}

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Per-instruction discharged facts.
    pub proofs: ProofMap,
    /// Abstract state *before* each reachable instruction.
    pub pc_states: Vec<Option<AbsState>>,
    /// Load-time cost statistics.
    pub report: VerifyReport,
    data_len: u32,
    code_len: u32,
}

impl Analysis {
    /// Declared data-segment size of the analyzed program.
    pub fn data_len(&self) -> u32 {
        self.data_len
    }

    /// Instruction count of the analyzed program.
    pub fn code_len(&self) -> u32 {
        self.code_len
    }

    /// The verifier's accept/reject decision over the proof map: every
    /// reachable memory access must be proven in-bounds and every
    /// reachable indirect jump must be proven in-range or through a known
    /// constant (a constant target at worst traps, contained, at run
    /// time — the same containment argument as falling off the end).
    pub fn verdict(&self, program: &Program) -> Result<(), VerifyError> {
        for pc in self.cfg.reachable_pcs() {
            let f = self.proofs.at(pc);
            if !f.has(Facts::REACHABLE) {
                continue; // Pruned by a decided branch.
            }
            match program.code[pc as usize] {
                Insn::Ld { .. } | Insn::LdB { .. } | Insn::St { .. } | Insn::StB { .. }
                    if !f.has(Facts::MEM_SAFE) =>
                {
                    return Err(VerifyError::UnsafeMemoryAccess { pc });
                }
                Insn::Jr { rs } => {
                    let known = self.pc_states[pc as usize]
                        .as_ref()
                        .is_some_and(|s| s.reg(rs).as_const().is_some());
                    if !f.has(Facts::JUMP_SAFE) && !known {
                        return Err(VerifyError::UnguardedIndirectJump { pc });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// How a memory access relates to the data segment in a given state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemVerdict {
    /// In-bounds on every execution.
    Safe,
    /// Out-of-bounds on every execution.
    AlwaysTraps,
    /// Not provable either way.
    Unknown,
}

/// Classifies `base + off .. base + off + size` against `data_len`.
fn classify_access(base: AbsVal, off: i32, size: u64, data_len: u64) -> MemVerdict {
    if off >= 0 {
        let delta = off as u64 + size; // <= i32::MAX + 8, never overflows.
        match (base.lo.checked_add(delta), base.hi.checked_add(delta)) {
            (Some(_), Some(hi_end)) if hi_end <= data_len => MemVerdict::Safe,
            (Some(lo_end), Some(_)) if lo_end > data_len => MemVerdict::AlwaysTraps,
            _ => MemVerdict::Unknown,
        }
    } else {
        let m = off.unsigned_abs() as u64;
        if base.lo >= m {
            // No member wraps below zero.
            if base.hi - m + size <= data_len {
                MemVerdict::Safe
            } else if base.lo - m + size > data_len {
                MemVerdict::AlwaysTraps
            } else {
                MemVerdict::Unknown
            }
        } else if base.hi < m {
            // Every member wraps to the top of the address space — far
            // beyond any 32-bit data segment.
            MemVerdict::AlwaysTraps
        } else {
            MemVerdict::Unknown
        }
    }
}

/// Statically decides a conditional branch, if the state allows.
fn decide_branch(insn: &Insn, state: &AbsState) -> Option<bool> {
    let (a, b, kind) = match *insn {
        Insn::Beq { rs1, rs2, .. } => (state.reg(rs1), state.reg(rs2), 0u8),
        Insn::Bne { rs1, rs2, .. } => (state.reg(rs1), state.reg(rs2), 1),
        Insn::Bltu { rs1, rs2, .. } => (state.reg(rs1), state.reg(rs2), 2),
        _ => return None,
    };
    // Can the two values be equal / unequal / ordered?
    let disjoint = a.hi < b.lo || b.hi < a.lo || (a.ones & b.zeros) | (b.ones & a.zeros) != 0;
    let both_same_const = matches!((a.as_const(), b.as_const()), (Some(x), Some(y)) if x == y);
    match kind {
        0 => {
            // Beq: taken iff equal.
            if both_same_const {
                Some(true)
            } else if disjoint {
                Some(false)
            } else {
                None
            }
        }
        1 => {
            // Bne: taken iff unequal.
            if both_same_const {
                Some(false)
            } else if disjoint {
                Some(true)
            } else {
                None
            }
        }
        _ => {
            // Bltu: taken iff a < b.
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// Applies one instruction's abstract transfer to `state`.
fn transfer(insn: &Insn, pc: u32, state: &mut AbsState, data_len: u64, code_len: u64) {
    let get = |state: &AbsState, r: Reg| state.regs[r.0 as usize];
    let set = |state: &mut AbsState, r: Reg, v: AbsVal| {
        state.regs[r.0 as usize] = v;
        state.defs[r.0 as usize] = pc;
    };
    match *insn {
        Insn::Li { rd, imm } => set(state, rd, AbsVal::constant(imm as u64)),
        Insn::Mov { rd, rs } => {
            let v = get(state, rs);
            set(state, rd, v);
        }
        Insn::Add { rd, rs1, rs2 } => {
            let v = get(state, rs1).add(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Sub { rd, rs1, rs2 } => {
            let v = get(state, rs1).sub(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Mul { rd, rs1, rs2 } => {
            let v = get(state, rs1).mul(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Divu { rd, rs1, rs2 } => {
            let v = get(state, rs1).divu(get(state, rs2));
            set(state, rd, v);
        }
        Insn::And { rd, rs1, rs2 } => {
            let v = get(state, rs1).and(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Or { rd, rs1, rs2 } => {
            let v = get(state, rs1).or(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Xor { rd, rs1, rs2 } => {
            let v = get(state, rs1).xor(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Shl { rd, rs1, rs2 } => {
            let v = get(state, rs1).shl(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Shr { rd, rs1, rs2 } => {
            let v = get(state, rs1).shr(get(state, rs2));
            set(state, rd, v);
        }
        Insn::Ld { rd, .. } => set(state, rd, AbsVal::TOP),
        Insn::LdB { rd, .. } => set(state, rd, AbsVal::range(0, 255)),
        Insn::St { .. } | Insn::StB { .. } => {}
        Insn::MaskData { r } => {
            let v = if data_len > 0 {
                AbsVal::range(0, data_len - 1)
            } else {
                AbsVal::constant(0)
            };
            set(state, r, v);
        }
        Insn::MaskCode { r } => {
            // code_len >= 1 whenever an instruction executes.
            let v = AbsVal::range(0, code_len.saturating_sub(1));
            set(state, r, v);
        }
        Insn::Beq { .. }
        | Insn::Bne { .. }
        | Insn::Bltu { .. }
        | Insn::Jmp { .. }
        | Insn::Jr { .. }
        | Insn::Halt => {}
    }
}

/// Computes the facts for one instruction in `state`.
fn facts_for(insn: &Insn, state: &AbsState, data_len: u64, code_len: u64) -> Facts {
    let mut f = Facts::REACHABLE;
    let mem =
        |base: Reg, off: i32, size: u64| classify_access(state.reg(base), off, size, data_len);
    match *insn {
        Insn::Ld { base, off, .. } | Insn::St { base, off, .. } => match mem(base, off, 8) {
            MemVerdict::Safe => f = f.with(Facts::MEM_SAFE),
            MemVerdict::AlwaysTraps => f = f.with(Facts::ALWAYS_TRAPS),
            MemVerdict::Unknown => {}
        },
        Insn::LdB { base, off, .. } | Insn::StB { base, off, .. } => match mem(base, off, 1) {
            MemVerdict::Safe => f = f.with(Facts::MEM_SAFE),
            MemVerdict::AlwaysTraps => f = f.with(Facts::ALWAYS_TRAPS),
            MemVerdict::Unknown => {}
        },
        Insn::Divu { rs2, .. } => {
            let d = state.reg(rs2);
            if d.lo >= 1 {
                f = f.with(Facts::DIV_NONZERO);
            } else if d.as_const() == Some(0) {
                f = f.with(Facts::ALWAYS_TRAPS);
            }
        }
        Insn::Jr { rs } => {
            let t = state.reg(rs);
            if t.hi < code_len {
                f = f.with(Facts::JUMP_SAFE);
            } else if t.lo >= code_len {
                f = f.with(Facts::ALWAYS_TRAPS);
            }
        }
        // Static branch and jump targets were range-checked up front.
        Insn::Jmp { .. } => f = f.with(Facts::JUMP_SAFE),
        Insn::Beq { .. } | Insn::Bne { .. } | Insn::Bltu { .. } => {
            f = f.with(Facts::JUMP_SAFE);
            match decide_branch(insn, state) {
                Some(true) => f = f.with(Facts::ALWAYS_TAKEN),
                Some(false) => f = f.with(Facts::NEVER_TAKEN),
                None => {}
            }
        }
        _ => {}
    }
    f
}

/// Runs the full analysis: CFG, abstract-interpretation fixpoint, proof
/// map. Fails only on structural problems (out-of-range static branch
/// targets) or a blown iteration budget.
pub fn analyze(program: &Program) -> Result<Analysis, VerifyError> {
    let budget = (program.code.len() as u64 + 1) * 64;
    analyze_with_budget(program, budget)
}

/// [`analyze`] with an explicit evaluation budget (exposed for tests).
pub fn analyze_with_budget(program: &Program, budget: u64) -> Result<Analysis, VerifyError> {
    let code = &program.code;
    let code_len = code.len() as u32;
    let data_len = u64::from(program.data_len);

    // Pass 0: static branch targets.
    for (pc, insn) in code.iter().enumerate() {
        let target = match insn {
            Insn::Beq { target, .. }
            | Insn::Bne { target, .. }
            | Insn::Bltu { target, .. }
            | Insn::Jmp { target } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            if t >= code_len {
                return Err(VerifyError::BadBranchTarget {
                    pc: pc as u32,
                    target: t,
                });
            }
        }
    }

    let cfg = Cfg::build(program);
    let mut report = VerifyReport::default();
    if code.is_empty() {
        return Ok(Analysis {
            cfg,
            proofs: ProofMap { facts: Vec::new() },
            pc_states: Vec::new(),
            report,
            data_len: program.data_len,
            code_len,
        });
    }

    // Widening thresholds: the segment bounds, so a masked value stays
    // provably in-segment across a back edge instead of blowing to MAX.
    let mut thresholds: Vec<u64> = vec![
        data_len.saturating_sub(8),
        data_len.saturating_sub(1),
        data_len,
        u64::from(code_len) - 1,
        u64::from(code_len),
        255,
        u64::MAX,
    ];
    thresholds.sort_unstable();
    thresholds.dedup();

    let nb = cfg.blocks.len();
    let mut entry: Vec<Option<AbsState>> = vec![None; nb];
    let mut join_count: Vec<u32> = vec![0; nb];
    entry[0] = Some(AbsState::entry());
    let mut worklist: Vec<u32> = vec![0];

    // Fixpoint over block entry states.
    while let Some(b) = worklist.pop() {
        report.iterations += 1;
        let mut state = entry[b as usize].expect("worklist entries have states");
        let block = &cfg.blocks[b as usize];
        let mut decided: Option<bool> = None;
        for pc in block.start..block.end {
            report.evaluations += 1;
            if report.evaluations > budget {
                return Err(VerifyError::TooComplex {
                    pc,
                    evaluations: report.evaluations,
                });
            }
            let insn = &code[pc as usize];
            if pc + 1 == block.end {
                decided = decide_branch(insn, &state);
            }
            transfer(insn, pc, &mut state, data_len, u64::from(code_len));
        }

        // Propagate along live edges.
        let last = &code[(block.end - 1) as usize];
        let mut targets: Vec<u32> = Vec::new();
        match (last, decided) {
            (Insn::Halt, _) => {}
            (Insn::Beq { target, .. }, Some(true))
            | (Insn::Bne { target, .. }, Some(true))
            | (Insn::Bltu { target, .. }, Some(true)) => targets.push(*target),
            (Insn::Beq { .. }, Some(false))
            | (Insn::Bne { .. }, Some(false))
            | (Insn::Bltu { .. }, Some(false)) => targets.push(block.end),
            _ => {
                for &s in &block.succs {
                    targets.push(cfg.blocks[s as usize].start);
                }
                // Fall-through edge for non-control instructions at block
                // ends is already in succs; nothing else to add.
            }
        }
        for t in targets {
            if t >= code_len {
                continue; // Falling off the end: a contained run-time trap.
            }
            let tb = cfg.block_of[t as usize] as usize;
            debug_assert_eq!(cfg.blocks[tb].start, t, "edges land on block leaders");
            let merged = match &entry[tb] {
                None => state,
                Some(old) => {
                    let widen = cfg.is_loop_head(tb as u32) && join_count[tb] >= 2;
                    if widen {
                        old.widen(&state, &thresholds)
                    } else {
                        old.join(&state)
                    }
                }
            };
            if entry[tb].as_ref() != Some(&merged) {
                entry[tb] = Some(merged);
                join_count[tb] += 1;
                if !worklist.contains(&(tb as u32)) {
                    worklist.push(tb as u32);
                }
            }
        }
    }

    // Final pass: per-instruction states and facts at the fixpoint.
    let mut pc_states: Vec<Option<AbsState>> = vec![None; code.len()];
    let mut facts = vec![Facts::default(); code.len()];
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(mut state) = entry[b] else { continue };
        for pc in block.start..block.end {
            report.evaluations += 1;
            let insn = &code[pc as usize];
            facts[pc as usize] = facts_for(insn, &state, data_len, u64::from(code_len));
            pc_states[pc as usize] = Some(state);
            transfer(insn, pc, &mut state, data_len, u64::from(code_len));
        }
    }

    Ok(Analysis {
        cfg,
        proofs: ProofMap { facts },
        pc_states,
        report,
        data_len: program.data_len,
        code_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn masked_loop_keeps_bounds_across_back_edge() {
        let p = crate::workloads::checksum_loop_verified(64, 2);
        let a = analyze(&p).unwrap();
        assert!(a.verdict(&p).is_ok());
        // Every memory access carries a proof.
        for (pc, insn) in p.code.iter().enumerate() {
            if matches!(insn, Insn::LdB { .. }) {
                assert!(
                    a.proofs.at(pc as u32).has(Facts::MEM_SAFE),
                    "no proof at pc {pc}"
                );
            }
        }
    }

    #[test]
    fn proofs_cover_divisors_and_jumps() {
        let mut asm = Asm::new(0);
        asm.li(r(1), 10).li(r(2), 5);
        asm.raw(Insn::Divu {
            rd: r(0),
            rs1: r(1),
            rs2: r(2),
        });
        asm.halt();
        let p = asm.finish().unwrap();
        let a = analyze(&p).unwrap();
        assert!(a.proofs.at(2).has(Facts::DIV_NONZERO));
    }

    #[test]
    fn decided_branch_prunes_dead_edge() {
        let mut asm = Asm::new(0);
        asm.li(r(1), 3).li(r(2), 3);
        asm.bne(r(1), r(2), "dead");
        asm.li(r(0), 1);
        asm.halt();
        asm.label("dead");
        asm.li(r(0), 99);
        asm.halt();
        let p = asm.finish().unwrap();
        let a = analyze(&p).unwrap();
        assert!(a.proofs.at(2).has(Facts::NEVER_TAKEN));
        // The dead target never received a state.
        assert!(a.pc_states[5].is_none());
        assert!(!a.proofs.at(5).has(Facts::REACHABLE));
    }

    #[test]
    fn always_trapping_store_is_flagged_not_proven() {
        let p = crate::workloads::wild_writer();
        let a = analyze(&p).unwrap();
        // The wild store: pc 2 in wild_writer.
        assert!(a.proofs.at(2).has(Facts::ALWAYS_TRAPS));
        assert!(!a.proofs.at(2).has(Facts::MEM_SAFE));
        assert!(a.verdict(&p).is_err());
    }

    #[test]
    fn too_complex_carries_location_and_count() {
        let p = crate::workloads::checksum_loop_verified(64, 2);
        let err = analyze_with_budget(&p, 3).unwrap_err();
        match err {
            VerifyError::TooComplex { evaluations, .. } => assert_eq!(evaluations, 4),
            other => panic!("expected TooComplex, got {other:?}"),
        }
    }

    #[test]
    fn defs_track_single_and_multiple_writers() {
        let mut asm = Asm::new(0);
        asm.li(r(1), 1); // pc 0
        asm.beq(r(0), r(0), "b"); // always taken, but r0 is top: not decided
        asm.li(r(1), 2); // pc 2
        asm.label("b");
        asm.mov(r(2), r(1)); // pc 3: r1 def is MANY (pc 0 or pc 2)
        asm.halt();
        let p = asm.finish().unwrap();
        let a = analyze(&p).unwrap();
        let st = a.pc_states[3].unwrap();
        assert_eq!(st.defs[1], DEF_MANY);
        let st0 = a.pc_states[1].unwrap();
        assert_eq!(st0.defs[1], 0);
    }
}
