//! Bytecode diagnostics on top of the analysis.
//!
//! The same CFG and proof map that power check elision double as an audit
//! surface (the VMI observation from PAPERS.md: analysis artifacts are
//! also diagnostics). The lint pass reports:
//!
//! - **unreachable code** — instructions no abstract state reaches, via
//!   CFG reachability plus decided-branch pruning;
//! - **dead stores** — register writes never read on any path (backward
//!   liveness over the CFG; `Halt` publishes `r0`);
//! - **always-trapping instructions** — accesses proven out-of-bounds on
//!   every execution, constant zero divisors, constant out-of-range
//!   indirect jumps;
//! - **unguarded indirect jumps** — with register provenance: where the
//!   offending register was last defined.
//!
//! A well-formed compiler output produces zero diagnostics; CI lints every
//! benign workload.

use crate::bytecode::{Insn, Program, Reg, NUM_REGS};
use crate::verifier::VerifyError;

use super::{analyze, Analysis, Facts, DEF_ENTRY, DEF_MANY};

/// The category of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// No execution reaches this instruction.
    UnreachableCode,
    /// A register write that is never read.
    DeadStore,
    /// The instruction traps on every execution that reaches it.
    AlwaysTraps,
    /// An indirect jump through a register the analysis cannot bound.
    UnguardedIndirectJump,
}

/// One diagnostic, anchored at an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index the diagnostic is anchored at.
    pub pc: u32,
    /// Category.
    pub kind: LintKind,
    /// Human-readable explanation (includes provenance where relevant).
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc {}: {:?}: {}", self.pc, self.kind, self.message)
    }
}

/// Registers an instruction reads.
fn uses(insn: &Insn) -> u16 {
    let bit = |r: Reg| 1u16 << (r.0 as usize % NUM_REGS);
    match *insn {
        Insn::Li { .. } => 0,
        Insn::Mov { rs, .. } => bit(rs),
        Insn::Add { rs1, rs2, .. }
        | Insn::Sub { rs1, rs2, .. }
        | Insn::Mul { rs1, rs2, .. }
        | Insn::Divu { rs1, rs2, .. }
        | Insn::And { rs1, rs2, .. }
        | Insn::Or { rs1, rs2, .. }
        | Insn::Xor { rs1, rs2, .. }
        | Insn::Shl { rs1, rs2, .. }
        | Insn::Shr { rs1, rs2, .. }
        | Insn::Beq { rs1, rs2, .. }
        | Insn::Bne { rs1, rs2, .. }
        | Insn::Bltu { rs1, rs2, .. } => bit(rs1) | bit(rs2),
        Insn::Ld { base, .. } | Insn::LdB { base, .. } => bit(base),
        Insn::St { rs, base, .. } | Insn::StB { rs, base, .. } => bit(rs) | bit(base),
        Insn::Jmp { .. } => 0,
        Insn::Jr { rs } => bit(rs),
        Insn::MaskData { r } | Insn::MaskCode { r } => bit(r),
        // Halt publishes r0 as the component's result.
        Insn::Halt => 1,
    }
}

/// Register an instruction writes, if any.
fn def(insn: &Insn) -> Option<Reg> {
    match *insn {
        Insn::Li { rd, .. }
        | Insn::Mov { rd, .. }
        | Insn::Add { rd, .. }
        | Insn::Sub { rd, .. }
        | Insn::Mul { rd, .. }
        | Insn::Divu { rd, .. }
        | Insn::And { rd, .. }
        | Insn::Or { rd, .. }
        | Insn::Xor { rd, .. }
        | Insn::Shl { rd, .. }
        | Insn::Shr { rd, .. }
        | Insn::Ld { rd, .. }
        | Insn::LdB { rd, .. } => Some(rd),
        Insn::MaskData { r } | Insn::MaskCode { r } => Some(r),
        _ => None,
    }
}

/// Renders where a register was last defined, for provenance messages.
fn provenance(def_site: u32) -> String {
    match def_site {
        DEF_ENTRY => "an input: never defined by the component".to_owned(),
        DEF_MANY => "defined at multiple sites".to_owned(),
        pc => format!("last defined at pc {pc}"),
    }
}

/// Lints `program`, running the analysis first. Fails only where the
/// analysis itself fails (bad static branch target, blown budget).
pub fn lint(program: &Program) -> Result<Vec<Diagnostic>, VerifyError> {
    let a = analyze(program)?;
    Ok(lint_with(program, &a))
}

/// Lints `program` against an already-computed analysis.
pub fn lint_with(program: &Program, a: &Analysis) -> Vec<Diagnostic> {
    let code = &program.code;
    let mut out: Vec<Diagnostic> = Vec::new();
    if code.is_empty() {
        return out;
    }

    // Unreachable code: instructions with no abstract state, reported as
    // maximal contiguous ranges.
    let mut pc = 0usize;
    while pc < code.len() {
        if a.pc_states[pc].is_none() {
            let start = pc;
            while pc < code.len() && a.pc_states[pc].is_none() {
                pc += 1;
            }
            let end = pc - 1;
            let range = if start == end {
                format!("instruction {start}")
            } else {
                format!("instructions {start}..={end}")
            };
            out.push(Diagnostic {
                pc: start as u32,
                kind: LintKind::UnreachableCode,
                message: format!("{range} can never execute"),
            });
        } else {
            pc += 1;
        }
    }

    // Backward liveness over the CFG for dead-store detection.
    let nb = a.cfg.blocks.len();
    let mut live_in = vec![0u16; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let block = &a.cfg.blocks[b];
            let mut live: u16 = block
                .succs
                .iter()
                .fold(0, |acc, &s| acc | live_in[s as usize]);
            for p in (block.start..block.end).rev() {
                let insn = &code[p as usize];
                if let Some(rd) = def(insn) {
                    live &= !(1u16 << (rd.0 as usize % NUM_REGS));
                }
                live |= uses(insn);
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }

    // Walk reachable blocks backward, flagging writes to dead registers.
    for block in &a.cfg.blocks {
        if a.pc_states[block.start as usize].is_none() {
            continue; // Covered by the unreachable diagnostic.
        }
        let mut live: u16 = block
            .succs
            .iter()
            .fold(0, |acc, &s| acc | live_in[s as usize]);
        let mut dead_here: Vec<Diagnostic> = Vec::new();
        for p in (block.start..block.end).rev() {
            let insn = &code[p as usize];
            if let Some(rd) = def(insn) {
                let bit = 1u16 << (rd.0 as usize % NUM_REGS);
                if live & bit == 0 {
                    dead_here.push(Diagnostic {
                        pc: p,
                        kind: LintKind::DeadStore,
                        message: format!("value written to r{} is never read", rd.0),
                    });
                }
                live &= !bit;
            }
            live |= uses(insn);
        }
        out.extend(dead_here.into_iter().rev());
    }

    // Always-trapping instructions and unguarded indirect jumps, straight
    // from the proof map.
    for (p, insn) in code.iter().enumerate() {
        let f = a.proofs.at(p as u32);
        if !f.has(Facts::REACHABLE) {
            continue;
        }
        if f.has(Facts::ALWAYS_TRAPS) {
            let what = match insn {
                Insn::Ld { .. } | Insn::LdB { .. } => "load is out of bounds",
                Insn::St { .. } | Insn::StB { .. } => "store is out of bounds",
                Insn::Divu { .. } => "divisor is always zero",
                Insn::Jr { .. } => "jump target is outside the program",
                _ => "instruction traps",
            };
            out.push(Diagnostic {
                pc: p as u32,
                kind: LintKind::AlwaysTraps,
                message: format!("{what} on every execution"),
            });
        }
        if let Insn::Jr { rs } = insn {
            let state = a.pc_states[p].as_ref().expect("reachable pc has a state");
            let bounded = f.has(Facts::JUMP_SAFE) || state.reg(*rs).as_const().is_some();
            if !bounded {
                out.push(Diagnostic {
                    pc: p as u32,
                    kind: LintKind::UnguardedIndirectJump,
                    message: format!(
                        "indirect jump through unbounded r{} ({})",
                        rs.0,
                        provenance(state.defs[rs.0 as usize % NUM_REGS])
                    ),
                });
            }
        }
    }

    out.sort_by_key(|d| d.pc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let p = crate::workloads::checksum_loop_verified(64, 2);
        assert_eq!(lint(&p).unwrap(), vec![]);
    }

    #[test]
    fn unreachable_code_is_ranged() {
        let mut a = Asm::new(0);
        a.li(r(0), 1);
        a.halt();
        a.li(r(0), 2); // Dead.
        a.li(r(0), 3); // Dead.
        a.halt(); // Dead.
        let p = a.finish().unwrap();
        let diags = lint(&p).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::UnreachableCode);
        assert_eq!(diags[0].pc, 2);
        assert!(diags[0].message.contains("2..=4"), "{}", diags[0].message);
    }

    #[test]
    fn dead_store_is_flagged() {
        let mut a = Asm::new(0);
        a.li(r(1), 42); // Never read.
        a.li(r(0), 7);
        a.halt();
        let p = a.finish().unwrap();
        let diags = lint(&p).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::DeadStore);
        assert_eq!(diags[0].pc, 0);
        assert!(diags[0].message.contains("r1"), "{}", diags[0].message);
    }

    #[test]
    fn overwritten_register_is_a_dead_store() {
        let mut a = Asm::new(0);
        a.li(r(0), 1); // Overwritten before any read.
        a.li(r(0), 2);
        a.halt();
        let diags = lint(&a.finish().unwrap()).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pc, 0);
        assert_eq!(diags[0].kind, LintKind::DeadStore);
    }

    #[test]
    fn loop_carried_values_are_not_dead() {
        // r0 accumulates across the back edge; no false positive.
        let p = crate::workloads::alu_loop(3);
        assert_eq!(lint(&p).unwrap(), vec![]);
    }

    #[test]
    fn wild_writer_always_traps() {
        let diags = lint(&crate::workloads::wild_writer()).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.kind == LintKind::AlwaysTraps && d.pc == 2));
    }

    #[test]
    fn unguarded_jump_reports_provenance() {
        // Through an entry register.
        let mut a = Asm::new(0);
        a.jr(r(3));
        a.halt();
        let diags = lint(&a.finish().unwrap()).unwrap();
        let d = diags
            .iter()
            .find(|d| d.kind == LintKind::UnguardedIndirectJump)
            .expect("diagnostic");
        assert!(d.message.contains("r3"), "{}", d.message);
        assert!(d.message.contains("input"), "{}", d.message);

        // Through a register defined in the program (but unbounded).
        let mut a = Asm::new(64);
        a.ld(r(2), r(1), 0); // Rejected anyway, but lint still explains.
        a.mask_data(r(1));
        a.ldb(r(2), r(1), 0); // r2 unbounded (loaded byte is [0,255], fine)…
        a.add(r(2), r(2), r(2));
        a.jr(r(2));
        a.halt();
        let p = a.finish().unwrap();
        let diags = lint(&p).unwrap();
        let d = diags
            .iter()
            .find(|d| d.kind == LintKind::UnguardedIndirectJump);
        // r2 = byte+byte in [0,510]; program len is 6 < 510, so unbounded.
        let d = d.expect("diagnostic");
        assert!(d.message.contains("last defined at pc 3"), "{}", d.message);
    }

    #[test]
    fn divide_by_constant_zero_always_traps() {
        let mut a = Asm::new(0);
        a.li(r(1), 9).li(r(2), 0);
        a.raw(Insn::Divu {
            rd: r(0),
            rs1: r(1),
            rs2: r(2),
        });
        a.halt();
        let diags = lint(&a.finish().unwrap()).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.kind == LintKind::AlwaysTraps && d.pc == 2));
    }

    #[test]
    fn every_benign_workload_is_lint_clean() {
        for (name, p) in crate::workloads::benign_suite() {
            let diags = lint(&p).unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
            assert!(diags.is_empty(), "{name}: {:?}", diags);
        }
    }
}
