//! Explicit control-flow graph over verified bytecode.
//!
//! Basic blocks are maximal straight-line instruction runs; edges follow
//! branch targets, fall-throughs, and indirect jumps. Because [`Insn::Jr`]
//! may (when code-masked) land on *any* instruction, a program containing
//! an indirect jump makes every instruction a block leader — the graph
//! degenerates gracefully to per-instruction granularity instead of
//! guessing targets.

use crate::bytecode::{Insn, Program};

/// One basic block: instructions `start..end` (instruction indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block ids.
    pub succs: Vec<u32>,
    /// Predecessor block ids.
    pub preds: Vec<u32>,
}

/// The control-flow graph of a program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in ascending `start` order; block 0 (if any) is the entry.
    pub blocks: Vec<Block>,
    /// Map from instruction index to its block id.
    pub block_of: Vec<u32>,
    /// Per-block: reachable from the entry along CFG edges?
    pub reachable: Vec<bool>,
}

/// True for instructions that end a basic block.
pub fn is_terminator(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Beq { .. }
            | Insn::Bne { .. }
            | Insn::Bltu { .. }
            | Insn::Jmp { .. }
            | Insn::Jr { .. }
            | Insn::Halt
    )
}

impl Cfg {
    /// Builds the CFG. Branch targets must already be validated (the
    /// analysis rejects out-of-range static targets before building).
    pub fn build(program: &Program) -> Cfg {
        let code = &program.code;
        let n = code.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
            };
        }

        // Leaders: entry, every static branch target, every instruction
        // after a terminator — and, if any indirect jump exists, every
        // instruction (a code-masked register can reach all of them).
        let has_jr = code.iter().any(|i| matches!(i, Insn::Jr { .. }));
        let mut leader = vec![false; n];
        leader[0] = true;
        if has_jr {
            leader.iter_mut().for_each(|l| *l = true);
        } else {
            for (pc, insn) in code.iter().enumerate() {
                match insn {
                    Insn::Beq { target, .. }
                    | Insn::Bne { target, .. }
                    | Insn::Bltu { target, .. }
                    | Insn::Jmp { target } => {
                        if (*target as usize) < n {
                            leader[*target as usize] = true;
                        }
                        if pc + 1 < n {
                            leader[pc + 1] = true;
                        }
                    }
                    Insn::Halt if pc + 1 < n => leader[pc + 1] = true,
                    _ => {}
                }
            }
        }

        // Carve blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len() as u32;
            let block_ends = pc + 1 == n || is_terminator(&code[pc]) || leader[pc + 1];
            if block_ends {
                blocks.push(Block {
                    start: start as u32,
                    end: (pc + 1) as u32,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc + 1;
            }
        }

        // Edges.
        let nb = blocks.len();
        for b in 0..nb {
            let last = blocks[b].end - 1;
            let mut succs: Vec<u32> = Vec::new();
            let push = |t: u32, succs: &mut Vec<u32>| {
                if (t as usize) < n {
                    let s = block_of[t as usize];
                    if !succs.contains(&s) {
                        succs.push(s);
                    }
                }
            };
            match code[last as usize] {
                Insn::Jmp { target } => push(target, &mut succs),
                Insn::Beq { target, .. } | Insn::Bne { target, .. } | Insn::Bltu { target, .. } => {
                    push(target, &mut succs);
                    push(last + 1, &mut succs);
                }
                Insn::Jr { .. } => {
                    // Any instruction is a potential target; with `has_jr`
                    // every instruction is its own block leader.
                    for t in 0..n as u32 {
                        push(t, &mut succs);
                    }
                }
                Insn::Halt => {}
                _ => push(last + 1, &mut succs), // Fall-through (or off the end).
            }
            for &s in &succs {
                blocks[s as usize].preds.push(b as u32);
            }
            blocks[b].succs = succs;
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; nb];
        let mut stack = vec![0u32];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b as usize].succs {
                if !reachable[s as usize] {
                    reachable[s as usize] = true;
                    stack.push(s);
                }
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
        }
    }

    /// True if `block` has an incoming back edge (a predecessor that does
    /// not strictly precede it in layout order) — the widening points.
    pub fn is_loop_head(&self, block: u32) -> bool {
        self.blocks[block as usize]
            .preds
            .iter()
            .any(|&p| p >= block)
    }

    /// Iterates the instruction indices of reachable blocks in layout
    /// order.
    pub fn reachable_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(b, _)| self.reachable[*b])
            .flat_map(|(_, blk)| blk.start..blk.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::bytecode::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new(0);
        a.li(r(0), 1).li(r(1), 2).halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(cfg.reachable[0]);
    }

    #[test]
    fn loop_has_back_edge_and_loop_head() {
        let mut a = Asm::new(0);
        a.li(r(0), 0).li(r(1), 10);
        a.label("loop");
        a.addi(r(0), r(0), 1);
        a.bltu(r(0), r(1), "loop");
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        // Blocks: [li,li] [addi(li+add),bltu] [halt].
        assert_eq!(cfg.blocks.len(), 3);
        let head = cfg.block_of[2];
        assert!(cfg.is_loop_head(head));
        assert!(!cfg.is_loop_head(0));
        // The loop block's successors: itself and the halt block.
        let loop_block = &cfg.blocks[head as usize];
        assert!(loop_block.succs.contains(&head));
        assert!(cfg.reachable.iter().all(|&b| b));
    }

    #[test]
    fn code_after_halt_is_unreachable() {
        let mut a = Asm::new(0);
        a.li(r(0), 1);
        a.halt();
        a.li(r(0), 99); // Dead.
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        assert_eq!(cfg.blocks.len(), 2);
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1]);
        assert_eq!(cfg.reachable_pcs().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn jr_degenerates_to_single_instruction_blocks() {
        let mut a = Asm::new(0);
        a.raw(Insn::MaskCode { r: r(1) });
        a.jr(r(1));
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        assert_eq!(cfg.blocks.len(), 3);
        // The Jr block reaches every block.
        let jr_block = &cfg.blocks[cfg.block_of[1] as usize];
        assert_eq!(jr_block.succs.len(), 3);
        assert!(cfg.reachable.iter().all(|&b| b));
    }

    #[test]
    fn branch_targets_split_blocks() {
        let mut a = Asm::new(0);
        a.li(r(0), 0);
        a.jmp("target");
        a.li(r(0), 1); // Unreachable block.
        a.label("target");
        a.li(r(0), 2);
        a.halt();
        let cfg = Cfg::build(&a.finish().unwrap());
        assert_eq!(cfg.blocks.len(), 3);
        assert!(!cfg.reachable[cfg.block_of[2] as usize]);
        assert!(cfg.reachable[cfg.block_of[3] as usize]);
    }
}
