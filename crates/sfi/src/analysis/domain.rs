//! The abstract domain: unsigned intervals refined by known bits.
//!
//! One [`AbsVal`] approximates the set of concrete `u64` values a register
//! may hold: every member `v` satisfies `lo <= v <= hi`, `v & zeros == 0`
//! and `v & ones == ones`. The two views reinforce each other — a
//! mask-then-align idiom is exact in the bits view, a `MaskData` guard is
//! exact in the interval view, and [`AbsVal::normalize`] moves information
//! between them (e.g. rounding `hi` down to the known alignment).
//!
//! This replaces the seed's five-value lattice (`Known`/`Masked`/
//! `MaskedAligned`/`CodeMasked`/`Unknown`): every fact the old domain
//! could express is an interval+bits fact, and the arithmetic transfer
//! functions keep facts the old domain destroyed (constant folding across
//! joins, small constant offsets on masked bases).

/// Abstract value of one register: an unsigned interval plus known bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsVal {
    /// Smallest possible value (inclusive).
    pub lo: u64,
    /// Largest possible value (inclusive).
    pub hi: u64,
    /// Bits proven `0` in every possible value.
    pub zeros: u64,
    /// Bits proven `1` in every possible value.
    pub ones: u64,
}

// Transfer functions are named after the instruction mnemonics they
// model (`add`, `shr`, …), not operator overloads — they are abstract,
// wrapping, and deliberately lossy, so the `std::ops` traits would
// promise the wrong algebra.
#[allow(clippy::should_implement_trait)]
impl AbsVal {
    /// The top element: any value at all.
    pub const TOP: AbsVal = AbsVal {
        lo: 0,
        hi: u64::MAX,
        zeros: 0,
        ones: 0,
    };

    /// A compile-time constant.
    pub fn constant(v: u64) -> AbsVal {
        AbsVal {
            lo: v,
            hi: v,
            zeros: !v,
            ones: v,
        }
    }

    /// Any value in `lo..=hi` (bits derived from the range).
    pub fn range(lo: u64, hi: u64) -> AbsVal {
        debug_assert!(lo <= hi);
        AbsVal {
            lo,
            hi,
            zeros: 0,
            ones: 0,
        }
        .normalize()
    }

    /// True if this is a single known constant.
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True if `v` is a member of the abstracted set.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi && v & self.zeros == 0 && v & self.ones == self.ones
    }

    /// Propagates information between the interval and bits views.
    ///
    /// Sound only on non-empty inputs (which is all the analysis ever
    /// produces: transfer functions over-approximate reachable states).
    #[must_use]
    pub fn normalize(mut self) -> AbsVal {
        // Bits above the range's most significant bit are zero.
        if self.hi < u64::MAX {
            let width = 64 - self.hi.leading_zeros();
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            self.zeros |= !mask;
        }
        // Bits bound the range.
        self.lo = self.lo.max(self.ones);
        self.hi = self.hi.min(!self.zeros);
        // A contiguous run of known-zero low bits is an alignment: round
        // the interval inward to the nearest aligned values.
        let align_bits = (!self.zeros).trailing_zeros();
        if align_bits > 0 && align_bits < 64 {
            let step = 1u64 << align_bits;
            self.hi &= !(step - 1);
            self.lo = match self.lo % step {
                0 => self.lo,
                rem => self.lo.saturating_add(step - rem),
            };
        }
        if self.lo == self.hi {
            self.zeros = !self.lo;
            self.ones = self.lo;
        }
        debug_assert!(self.lo <= self.hi, "normalized an empty AbsVal: {self:?}");
        debug_assert_eq!(self.zeros & self.ones, 0);
        self
    }

    /// Least upper bound: the join over two control-flow paths.
    #[must_use]
    pub fn join(self, other: AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
        .normalize()
    }

    /// Widening: jump to a coarse bound so loop fixpoints terminate fast.
    ///
    /// The bits component is a finite lattice (at most 64 drops per side)
    /// and needs no widening; the interval is widened to the nearest of a
    /// few `thresholds` (the analysis passes the segment bounds, so masked
    /// values stay provably in-segment across back edges).
    #[must_use]
    pub fn widen(self, next: AbsVal, thresholds: &[u64]) -> AbsVal {
        let joined = self.join(next);
        let lo = if joined.lo < self.lo { 0 } else { self.lo };
        let hi = if joined.hi > self.hi {
            thresholds
                .iter()
                .copied()
                .filter(|&t| t >= joined.hi)
                .min()
                .unwrap_or(u64::MAX)
        } else {
            self.hi
        };
        AbsVal {
            lo,
            hi,
            zeros: joined.zeros,
            ones: joined.ones,
        }
        .normalize()
    }

    // ----- transfer functions (must over-approximate the interpreter) ----

    /// `a + b` (wrapping).
    #[must_use]
    pub fn add(self, rhs: AbsVal) -> AbsVal {
        if let (Some(a), Some(b)) = (self.as_const(), rhs.as_const()) {
            return AbsVal::constant(a.wrapping_add(b));
        }
        match (self.lo.checked_add(rhs.lo), self.hi.checked_add(rhs.hi)) {
            (Some(lo), Some(hi)) => AbsVal::range(lo, hi),
            _ => AbsVal::TOP, // May wrap: anything.
        }
    }

    /// `a - b` (wrapping).
    #[must_use]
    pub fn sub(self, rhs: AbsVal) -> AbsVal {
        if let (Some(a), Some(b)) = (self.as_const(), rhs.as_const()) {
            return AbsVal::constant(a.wrapping_sub(b));
        }
        if self.lo >= rhs.hi {
            // No borrow possible on any member pair.
            AbsVal::range(self.lo - rhs.hi, self.hi - rhs.lo)
        } else {
            AbsVal::TOP
        }
    }

    /// `a * b` (wrapping).
    #[must_use]
    pub fn mul(self, rhs: AbsVal) -> AbsVal {
        if let (Some(a), Some(b)) = (self.as_const(), rhs.as_const()) {
            return AbsVal::constant(a.wrapping_mul(b));
        }
        match self.hi.checked_mul(rhs.hi) {
            Some(hi) => AbsVal::range(self.lo.saturating_mul(rhs.lo), hi),
            None => AbsVal::TOP,
        }
    }

    /// `a / b` — the abstract result *assuming the division executed*
    /// (a zero divisor traps in the interpreter and produces no value).
    #[must_use]
    pub fn divu(self, rhs: AbsVal) -> AbsVal {
        let div_lo = rhs.lo.max(1);
        let div_hi = rhs.hi.max(1);
        AbsVal::range(self.lo / div_hi, self.hi / div_lo)
    }

    /// `a & b`.
    #[must_use]
    pub fn and(self, rhs: AbsVal) -> AbsVal {
        AbsVal {
            lo: 0,
            hi: self.hi.min(rhs.hi),
            zeros: self.zeros | rhs.zeros,
            ones: self.ones & rhs.ones,
        }
        .normalize()
    }

    /// `a | b`.
    #[must_use]
    pub fn or(self, rhs: AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.max(rhs.lo),
            hi: ones_envelope(self.hi) | ones_envelope(rhs.hi),
            zeros: self.zeros & rhs.zeros,
            ones: self.ones | rhs.ones,
        }
        .normalize()
    }

    /// `a ^ b`.
    #[must_use]
    pub fn xor(self, rhs: AbsVal) -> AbsVal {
        AbsVal {
            lo: 0,
            hi: ones_envelope(self.hi) | ones_envelope(rhs.hi),
            zeros: (self.zeros & rhs.zeros) | (self.ones & rhs.ones),
            ones: (self.zeros & rhs.ones) | (self.ones & rhs.zeros),
        }
        .normalize()
    }

    /// `a << (b & 63)`.
    #[must_use]
    pub fn shl(self, rhs: AbsVal) -> AbsVal {
        match rhs.as_const() {
            Some(k) => {
                let k = (k & 63) as u32;
                match (self.as_const(), self.hi.checked_shl(k)) {
                    (Some(a), _) => AbsVal::constant(a << k),
                    (None, Some(hi)) if self.hi.leading_zeros() >= k => AbsVal {
                        lo: self.lo << k,
                        hi,
                        zeros: (self.zeros << k) | ((1u64 << k) - 1),
                        ones: self.ones << k,
                    }
                    .normalize(),
                    _ => AbsVal::TOP,
                }
            }
            None => AbsVal::TOP,
        }
    }

    /// `a >> (b & 63)` (logical).
    #[must_use]
    pub fn shr(self, rhs: AbsVal) -> AbsVal {
        match rhs.as_const() {
            Some(k) => {
                let k = (k & 63) as u32;
                AbsVal {
                    lo: self.lo >> k,
                    hi: self.hi >> k,
                    zeros: (self.zeros >> k) | !(u64::MAX >> k),
                    ones: self.ones >> k,
                }
                .normalize()
            }
            None => AbsVal::range(0, self.hi),
        }
    }
}

/// Smallest all-ones value `>= x` (the tight power-of-two envelope used to
/// bound `|`/`^` results: `a | b <= ones_envelope(a) | ones_envelope(b)`).
fn ones_envelope(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        u64::MAX >> x.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_exactly() {
        let a = AbsVal::constant(7);
        let b = AbsVal::constant(5);
        assert_eq!(a.add(b).as_const(), Some(12));
        assert_eq!(a.sub(b).as_const(), Some(2));
        assert_eq!(b.sub(a).as_const(), Some(5u64.wrapping_sub(7)));
        assert_eq!(a.mul(b).as_const(), Some(35));
        assert_eq!(a.and(b).as_const(), Some(5));
        assert_eq!(a.or(b).as_const(), Some(7));
        assert_eq!(a.xor(b).as_const(), Some(2));
        assert_eq!(a.divu(b).as_const(), Some(1));
        assert_eq!(a.shl(AbsVal::constant(2)).as_const(), Some(28));
        assert_eq!(a.shr(AbsVal::constant(1)).as_const(), Some(3));
    }

    #[test]
    fn join_of_constants_is_their_interval() {
        let j = AbsVal::constant(8).join(AbsVal::constant(16));
        assert_eq!((j.lo, j.hi), (8, 16));
        assert!(j.contains(8) && j.contains(16));
        // Bits: 8 = 0b01000, 16 = 0b10000 share no ones; low 3 bits zero.
        assert_eq!(j.ones, 0);
        assert_eq!(j.zeros & 7, 7);
    }

    #[test]
    fn align_down_rounds_the_interval() {
        // [0, 23] masked with !7 — possible values {0, 8, 16}: the old
        // MaskedAligned fact, recovered by normalize's alignment rounding.
        let masked = AbsVal::range(0, 23).and(AbsVal::constant(!7));
        assert_eq!(masked.hi, 16);
        assert_eq!(masked.lo, 0);
        assert!(masked.contains(8));
        assert!(!masked.contains(9));
    }

    #[test]
    fn widen_hits_segment_thresholds() {
        let dl = 100u64;
        let thresholds = [dl - 1, dl, u64::MAX];
        // First the bits view clamps to the power-of-two envelope…
        let w = AbsVal::range(0, 40).widen(AbsVal::range(0, 41), &thresholds);
        assert_eq!((w.lo, w.hi), (0, 63));
        // …then growth past the envelope lands on the segment threshold…
        let w2 = w.widen(AbsVal::range(0, 64), &thresholds);
        assert_eq!((w2.lo, w2.hi), (0, dl - 1));
        // …which is stable.
        let w3 = w2.widen(AbsVal::range(0, 99), &thresholds);
        assert_eq!(w3, w2);
    }

    #[test]
    fn overflowing_ops_go_to_top() {
        let big = AbsVal::range(1, u64::MAX);
        assert_eq!(big.add(AbsVal::range(0, 1)), AbsVal::TOP);
        assert_eq!(big.mul(AbsVal::range(0, 2)), AbsVal::TOP);
        assert_eq!(AbsVal::range(0, 5).sub(AbsVal::range(0, 1)), AbsVal::TOP);
    }

    #[test]
    fn soundness_fuzz_binops() {
        // Abstract results must contain every concrete result of member
        // pairs — across all binops, for a spread of generated intervals.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..2000 {
            let a1 = next() % 257;
            let a2 = next() % 257;
            let b1 = next() % 257;
            let b2 = next() % 257;
            let av = AbsVal::constant(a1).join(AbsVal::constant(a2));
            let bv = AbsVal::constant(b1).join(AbsVal::constant(b2));
            for (ca, cb) in [(a1, b1), (a1, b2), (a2, b1), (a2, b2)] {
                assert!(av.add(bv).contains(ca.wrapping_add(cb)), "add {ca} {cb}");
                assert!(av.sub(bv).contains(ca.wrapping_sub(cb)), "sub {ca} {cb}");
                assert!(av.mul(bv).contains(ca.wrapping_mul(cb)), "mul {ca} {cb}");
                assert!(av.and(bv).contains(ca & cb), "and {ca} {cb}");
                assert!(av.or(bv).contains(ca | cb), "or {ca} {cb}");
                assert!(av.xor(bv).contains(ca ^ cb), "xor {ca} {cb}");
                assert!(av.shl(bv).contains(ca << (cb & 63)), "shl {ca} {cb}");
                assert!(av.shr(bv).contains(ca >> (cb & 63)), "shr {ca} {cb}");
                if let Some(q) = ca.checked_div(cb) {
                    assert!(av.divu(bv).contains(q), "divu {ca} {cb}");
                }
            }
        }
    }

    #[test]
    fn join_and_widen_are_upper_bounds() {
        let a = AbsVal::range(8, 16);
        let b = AbsVal::range(32, 40);
        let j = a.join(b);
        for v in [8, 16, 32, 40] {
            assert!(j.contains(v));
        }
        let w = a.widen(b, &[63, u64::MAX]);
        for v in [8, 16, 32, 40] {
            assert!(w.contains(v));
        }
    }
}
