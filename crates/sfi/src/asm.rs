//! A tiny assembler with labels.
//!
//! Branch targets in [`Insn`] are absolute instruction indices; the
//! assembler lets programs be written with symbolic labels that are patched
//! at `finish` time.

use std::collections::HashMap;

use crate::bytecode::{Insn, Program, Reg};

/// A forward-referencing assembler.
///
/// # Examples
///
/// ```
/// use paramecium_sfi::{Asm, Reg};
///
/// // r0 = sum of 0..10
/// let mut a = Asm::new(0);
/// let (r0, r1, r2) = (Reg::new(0), Reg::new(1), Reg::new(2));
/// a.li(r0, 0).li(r1, 0).li(r2, 10);
/// a.label("loop");
/// a.add(r0, r0, r1);
/// a.addi(r1, r1, 1);
/// a.bltu(r1, r2, "loop");
/// a.halt();
/// let prog = a.finish().unwrap();
/// let out = paramecium_sfi::Interp::new(&prog).run(10_000).unwrap();
/// assert_eq!(out.result, 45);
/// ```
pub struct Asm {
    code: Vec<Insn>,
    labels: HashMap<String, u32>,
    /// (instruction index, label) pairs awaiting patching.
    fixups: Vec<(usize, String)>,
    data_len: u32,
    /// Scratch register reserved for `addi`/`subi` immediates.
    scratch: Reg,
}

impl Asm {
    /// Starts assembling a program with a data segment of `data_len` bytes.
    pub fn new(data_len: u32) -> Self {
        Asm {
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data_len,
            scratch: Reg::new(15),
        }
    }

    /// Current instruction index.
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_owned(), self.here());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, insn: Insn) -> &mut Self {
        self.code.push(insn);
        self
    }

    /// `rd <- imm`
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.raw(Insn::Li { rd, imm })
    }

    /// `rd <- rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.raw(Insn::Mov { rd, rs })
    }

    /// `rd <- rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Add { rd, rs1, rs2 })
    }

    /// `rd <- rs + imm` (uses the scratch register r15).
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        let scratch = self.scratch;
        self.li(scratch, imm).add(rd, rs, scratch)
    }

    /// `rd <- rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Sub { rd, rs1, rs2 })
    }

    /// `rd <- rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Mul { rd, rs1, rs2 })
    }

    /// `rd <- rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::And { rd, rs1, rs2 })
    }

    /// `rd <- rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Xor { rd, rs1, rs2 })
    }

    /// `rd <- rs1 << (rs2 & 63)`
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Shl { rd, rs1, rs2 })
    }

    /// `rd <- rs1 >> (rs2 & 63)` (logical)
    pub fn shr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.raw(Insn::Shr { rd, rs1, rs2 })
    }

    /// `rd <- mem64[base + off]`
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i32) -> &mut Self {
        self.raw(Insn::Ld { rd, base, off })
    }

    /// `rd <- mem8[base + off]`
    pub fn ldb(&mut self, rd: Reg, base: Reg, off: i32) -> &mut Self {
        self.raw(Insn::LdB { rd, base, off })
    }

    /// `mem64[base + off] <- rs`
    pub fn st(&mut self, rs: Reg, base: Reg, off: i32) -> &mut Self {
        self.raw(Insn::St { rs, base, off })
    }

    /// `mem8[base + off] <- rs`
    pub fn stb(&mut self, rs: Reg, base: Reg, off: i32) -> &mut Self {
        self.raw(Insn::StB { rs, base, off })
    }

    fn branch(&mut self, insn: Insn, label: &str) -> &mut Self {
        self.fixups.push((self.code.len(), label.to_owned()));
        self.code.push(insn);
        self
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(
            Insn::Beq {
                rs1,
                rs2,
                target: u32::MAX,
            },
            label,
        )
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(
            Insn::Bne {
                rs1,
                rs2,
                target: u32::MAX,
            },
            label,
        )
    }

    /// Branch if less-than (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(
            Insn::Bltu {
                rs1,
                rs2,
                target: u32::MAX,
            },
            label,
        )
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.branch(Insn::Jmp { target: u32::MAX }, label)
    }

    /// Indirect jump.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.raw(Insn::Jr { rs })
    }

    /// Explicit data mask (cooperative sandboxing).
    pub fn mask_data(&mut self, r: Reg) -> &mut Self {
        self.raw(Insn::MaskData { r })
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Insn::Halt)
    }

    /// Resolves labels and produces the program.
    pub fn finish(mut self) -> Result<Program, String> {
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| format!("undefined label `{label}`"))?;
            match &mut self.code[*idx] {
                Insn::Beq { target: t, .. }
                | Insn::Bne { target: t, .. }
                | Insn::Bltu { target: t, .. }
                | Insn::Jmp { target: t } => *t = target,
                other => return Err(format!("fixup on non-branch {other:?}")),
            }
        }
        Ok(Program::new(self.code, self.data_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new(0);
        let r0 = Reg::new(0);
        a.li(r0, 1);
        a.jmp("end"); // Forward reference.
        a.label("unreached");
        a.li(r0, 99);
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.code[1], Insn::Jmp { target: 3 });
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.jmp("nowhere");
        assert!(a.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new(0);
        a.label("x");
        a.label("x");
    }

    #[test]
    fn addi_uses_scratch() {
        let mut a = Asm::new(0);
        let r0 = Reg::new(0);
        a.li(r0, 5).addi(r0, r0, 3).halt();
        let p = a.finish().unwrap();
        assert_eq!(p.len(), 4); // li, li(scratch), add, halt.
    }
}
