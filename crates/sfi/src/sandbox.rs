//! Software fault isolation by binary rewriting.
//!
//! Models Wahbe et al., *Efficient Software-based Fault Isolation* (SOSP
//! '93) — the paper's reference \[11\] and the Exokernel's protection story.
//! The rewriter inserts a guard instruction before every memory access and
//! every indirect jump, confining the effective address into the
//! component's own segment. The guards execute on *every* dynamic instance
//! of the access: that per-access run-time cost is exactly what Paramecium's
//! load-time certification claims to avoid.
//!
//! As in the original SFI work, the transformation must be applied to a
//! register the program cannot then re-dirty before the access, so guards
//! are inserted immediately before each unsafe instruction, and branch
//! targets are remapped to the rewritten layout.

use std::collections::HashMap;

use crate::bytecode::{Insn, Program, Reg};

/// Statistics about one rewrite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SandboxStats {
    /// Guard instructions inserted.
    pub guards_inserted: usize,
    /// Original instruction count.
    pub original_len: usize,
    /// Rewritten instruction count.
    pub rewritten_len: usize,
}

/// Rewrites `program` so every memory access and indirect jump is preceded
/// by a masking guard. Returns the sandboxed program and rewrite stats.
///
/// The rewrite is the *load-time* cost of SFI (linear in program size);
/// the inserted guards are its *run-time* cost (linear in instructions
/// executed).
pub fn sandbox_rewrite(program: &Program) -> (Program, SandboxStats) {
    let n = program.code.len();
    // First pass: how many guards precede each original instruction, so we
    // can build the old→new index map.
    let needs_guard = |insn: &Insn| -> Option<Reg> {
        match insn {
            Insn::Ld { base, .. }
            | Insn::LdB { base, .. }
            | Insn::St { base, .. }
            | Insn::StB { base, .. } => Some(*base),
            Insn::Jr { rs } => Some(*rs),
            _ => None,
        }
    };

    let mut new_index = HashMap::with_capacity(n);
    let mut cursor = 0u32;
    for (i, insn) in program.code.iter().enumerate() {
        // A branch to a guarded instruction must land on the *guard*, never
        // between guard and access — otherwise a loop back-edge would
        // bypass the mask and re-open the sandbox.
        new_index.insert(i as u32, cursor);
        if needs_guard(insn).is_some() {
            cursor += 1; // The guard goes first.
        }
        cursor += 1;
    }

    // Second pass: emit guards + remapped instructions.
    let mut out = Vec::with_capacity(cursor as usize);
    let mut guards = 0usize;
    let remap = |t: u32| -> u32 {
        // Branches to one-past-the-end are preserved as such (they will
        // fault at run time either way; the rewriter must not panic).
        new_index.get(&t).copied().unwrap_or(cursor)
    };
    for insn in &program.code {
        if let Some(r) = needs_guard(insn) {
            let guard = match insn {
                Insn::Jr { .. } => Insn::MaskCode { r },
                _ => Insn::MaskData { r },
            };
            out.push(guard);
            guards += 1;
        }
        let rewritten = match *insn {
            Insn::Beq { rs1, rs2, target } => Insn::Beq {
                rs1,
                rs2,
                target: remap(target),
            },
            Insn::Bne { rs1, rs2, target } => Insn::Bne {
                rs1,
                rs2,
                target: remap(target),
            },
            Insn::Bltu { rs1, rs2, target } => Insn::Bltu {
                rs1,
                rs2,
                target: remap(target),
            },
            Insn::Jmp { target } => Insn::Jmp {
                target: remap(target),
            },
            // Immediate offsets are left intact: as in Wahbe et al., small
            // compiler-generated offsets are absorbed by *guard zones*
            // around the segment — in this model, the interpreter's bounds
            // check plays the guard-zone trap, so an offset past the masked
            // base is contained, never a kernel compromise.
            other => other,
        };
        out.push(rewritten);
    }

    let stats = SandboxStats {
        guards_inserted: guards,
        original_len: n,
        rewritten_len: out.len(),
    };
    (Program::new(out, program.data_len), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{asm::Asm, interp::Interp};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A malicious component: reads far outside its segment.
    fn wild_reader() -> Program {
        let mut a = Asm::new(16);
        a.li(r(1), 0xDEAD_0000);
        a.ldb(r(0), r(1), 0);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn unsandboxed_wild_access_faults() {
        let p = wild_reader();
        assert!(Interp::new(&p).run(100).is_err());
    }

    #[test]
    fn sandboxed_wild_access_is_confined() {
        let (sb, stats) = sandbox_rewrite(&wild_reader());
        assert_eq!(stats.guards_inserted, 1);
        assert_eq!(stats.rewritten_len, stats.original_len + 1);
        // The access now lands inside the 16-byte segment instead of
        // faulting: the component is *contained*, not killed.
        let out = Interp::new(&sb).run(100).unwrap();
        assert_eq!(out.guard_steps, 1);
    }

    #[test]
    fn branch_targets_are_remapped() {
        // Loop with a store inside: guard insertion shifts indices.
        let mut a = Asm::new(64);
        a.li(r(0), 0).li(r(1), 0).li(r(2), 8);
        a.label("loop");
        a.stb(r(1), r(1), 0);
        a.addi(r(1), r(1), 1);
        a.bltu(r(1), r(2), "loop");
        a.mov(r(0), r(1));
        a.halt();
        let p = a.finish().unwrap();
        let plain = Interp::new(&p).run(1000).unwrap();
        let (sb, _) = sandbox_rewrite(&p);
        let sandboxed = Interp::new(&sb).run(1000).unwrap();
        // Same result, more steps (the guards).
        assert_eq!(plain.result, sandboxed.result);
        assert!(sandboxed.steps > plain.steps);
        assert_eq!(sandboxed.guard_steps, 8); // One per store iteration.
    }

    #[test]
    fn indirect_jumps_get_code_masks() {
        let mut a = Asm::new(0);
        a.li(r(1), 1 << 40); // Insane target.
        a.jr(r(1));
        a.halt();
        let p = a.finish().unwrap();
        assert!(Interp::new(&p).run(100).is_err());
        let (sb, stats) = sandbox_rewrite(&p);
        assert_eq!(stats.guards_inserted, 1);
        // Masked into range: the program no longer escapes (it may loop,
        // so bound the steps and accept either a clean halt or OutOfSteps —
        // but never a BadJump).
        match Interp::new(&sb).run(100) {
            Ok(_) | Err(crate::interp::InterpError::OutOfSteps) => {}
            Err(e) => panic!("sandboxed program escaped: {e}"),
        }
    }

    #[test]
    fn overhead_scales_with_memory_density() {
        // A memory-heavy loop gains proportionally more instructions than
        // an ALU-only loop.
        let mem_heavy = crate::workloads::checksum_loop(64, 100);
        let alu_only = crate::workloads::alu_loop(100);
        let (_, mem_stats) = sandbox_rewrite(&mem_heavy);
        let (_, alu_stats) = sandbox_rewrite(&alu_only);
        let mem_growth = mem_stats.rewritten_len as f64 / mem_stats.original_len as f64;
        let alu_growth = alu_stats.rewritten_len as f64 / alu_stats.original_len as f64;
        assert!(mem_growth > alu_growth);
    }

    #[test]
    fn rewriting_is_idempotent_in_effect() {
        // Sandboxing an already-sandboxed program adds no *new* guards for
        // the guard instructions themselves (they are not memory ops).
        let (sb1, s1) = sandbox_rewrite(&wild_reader());
        let (_, s2) = sandbox_rewrite(&sb1);
        assert_eq!(s1.guards_inserted, s2.guards_inserted);
    }
}
