//! Load-time static verification.
//!
//! Models the SPIN approach: "the ability to down-load application code,
//! written in a special type-safe language, into the kernel protection
//! domain" (paper, section 5). A type-safe compiler emits code that is safe
//! *by construction*; the kernel re-checks that claim with a linear
//! abstract interpretation at load time. Verified programs run with only
//! the guards the compiler itself emitted (which it can hoist and
//! coarsen), unlike SFI rewriting which guards every single access.
//!
//! The verifier is deliberately conservative: it proves memory safety for
//! the idioms our "trusted compiler" (see [`crate::workloads`]) generates
//! and rejects anything else — exactly the trade-off the paper ascribes to
//! software protection ("restricted, type safe languages").

use crate::bytecode::{Insn, Program, Reg, NUM_REGS};

/// Why verification rejected a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A static branch target is outside the program.
    BadBranchTarget {
        /// Instruction index of the branch.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A memory access could not be proven in-bounds.
    UnsafeMemoryAccess {
        /// Instruction index of the access.
        pc: u32,
    },
    /// An indirect jump whose target register is not code-masked.
    UnguardedIndirectJump {
        /// Instruction index of the jump.
        pc: u32,
    },
    /// The dataflow analysis did not converge within budget.
    TooComplex,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadBranchTarget { pc, target } => {
                write!(f, "branch at pc {pc} targets {target}, outside the program")
            }
            VerifyError::UnsafeMemoryAccess { pc } => {
                write!(f, "cannot prove memory access at pc {pc} in-bounds")
            }
            VerifyError::UnguardedIndirectJump { pc } => {
                write!(f, "indirect jump at pc {pc} through unmasked register")
            }
            VerifyError::TooComplex => write!(f, "analysis exceeded its iteration budget"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verification statistics — the measurable load-time cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Instruction-state evaluations performed (linear-ish in program
    /// size; this is what the load-time cost model charges).
    pub evaluations: u64,
    /// Number of worklist passes until fixpoint.
    pub iterations: u64,
}

/// Abstract value of one register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Av {
    /// A compile-time constant.
    Known(u64),
    /// Provably `< data_len` (result of `MaskData`).
    Masked,
    /// Provably `< data_len`, 8-aligned; with `data_len % 8 == 0` this
    /// bounds the value by `data_len - 8`.
    MaskedAligned,
    /// Provably a valid instruction index (result of `MaskCode`).
    CodeMasked,
    /// Anything.
    Unknown,
}

impl Av {
    fn join(self, other: Av) -> Av {
        use Av::*;
        match (self, other) {
            (Known(a), Known(b)) if a == b => Known(a),
            (Masked, Masked) => Masked,
            (MaskedAligned, MaskedAligned) => MaskedAligned,
            (MaskedAligned, Masked) | (Masked, MaskedAligned) => Masked,
            (CodeMasked, CodeMasked) => CodeMasked,
            _ => Unknown,
        }
    }
}

type State = [Av; NUM_REGS];

fn join_states(a: &State, b: &State) -> State {
    let mut out = [Av::Unknown; NUM_REGS];
    for i in 0..NUM_REGS {
        out[i] = a[i].join(b[i]);
    }
    out
}

/// Verifies `program`, returning load-time cost statistics on success.
pub fn verify(program: &Program) -> Result<VerifyReport, VerifyError> {
    let code = &program.code;
    let code_len = code.len() as u32;
    let data_len = u64::from(program.data_len);

    // Pass 0: static branch targets.
    for (pc, insn) in code.iter().enumerate() {
        let pc = pc as u32;
        let target = match insn {
            Insn::Beq { target, .. }
            | Insn::Bne { target, .. }
            | Insn::Bltu { target, .. }
            | Insn::Jmp { target } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            if t >= code_len {
                return Err(VerifyError::BadBranchTarget { pc, target: t });
            }
        }
    }

    // Dataflow fixpoint. Entry state: inputs are arbitrary.
    let mut states: Vec<Option<State>> = vec![None; code.len()];
    if code.is_empty() {
        return Ok(VerifyReport::default());
    }
    states[0] = Some([Av::Unknown; NUM_REGS]);
    let mut worklist: Vec<u32> = vec![0];
    let mut report = VerifyReport::default();
    // Lattice height is tiny; this budget is generous and guarantees
    // termination even on adversarial inputs.
    let budget = (code.len() as u64 + 1) * 64;

    while let Some(pc) = worklist.pop() {
        report.evaluations += 1;
        if report.evaluations > budget {
            return Err(VerifyError::TooComplex);
        }
        let state = states[pc as usize].expect("state exists for worklist entries");
        let insn = code[pc as usize];
        check_insn(pc, &insn, &state, data_len)?;
        let mut next_state = state;
        apply_transfer(&insn, &mut next_state, data_len);

        let push =
            |target: u32, st: State, states: &mut Vec<Option<State>>, worklist: &mut Vec<u32>| {
                if target >= code_len {
                    // Falling off the end: a run-time BadJump, but not a kernel
                    // safety violation — the interpreter contains it.
                    return;
                }
                let slot = &mut states[target as usize];
                let merged = match slot {
                    Some(old) => join_states(old, &st),
                    None => st,
                };
                if slot.as_ref() != Some(&merged) {
                    *slot = Some(merged);
                    worklist.push(target);
                }
            };

        match insn {
            Insn::Halt => {}
            Insn::Jmp { target } => push(target, next_state, &mut states, &mut worklist),
            Insn::Jr { .. } => {
                // Verified indirect jumps may go to any instruction: merge
                // into every possible target. (Our compiler only emits Jr
                // for small jump tables, so this stays cheap in practice.)
                for t in 0..code_len {
                    push(t, next_state, &mut states, &mut worklist);
                }
            }
            Insn::Beq { target, .. } | Insn::Bne { target, .. } | Insn::Bltu { target, .. } => {
                push(target, next_state, &mut states, &mut worklist);
                push(pc + 1, next_state, &mut states, &mut worklist);
            }
            _ => push(pc + 1, next_state, &mut states, &mut worklist),
        }
        report.iterations += 1;
    }
    Ok(report)
}

/// Rejects instructions whose safety is not provable in `state`.
fn check_insn(pc: u32, insn: &Insn, state: &State, data_len: u64) -> Result<(), VerifyError> {
    let av = |r: Reg| state[r.0 as usize];
    let check_access = |base: Reg, off: i32, size: u64| -> Result<(), VerifyError> {
        let ok = match av(base) {
            Av::Known(a) => {
                let eff = a.wrapping_add(off as i64 as u64);
                eff.checked_add(size).is_some_and(|end| end <= data_len)
            }
            Av::Masked => size == 1 && off == 0 && data_len > 0,
            Av::MaskedAligned => {
                data_len.is_multiple_of(8) && data_len >= 8 && off >= 0 && (off as u64) + size <= 8
            }
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(VerifyError::UnsafeMemoryAccess { pc })
        }
    };
    match *insn {
        Insn::Ld { base, off, .. } => check_access(base, off, 8),
        Insn::LdB { base, off, .. } => check_access(base, off, 1),
        Insn::St { base, off, .. } => check_access(base, off, 8),
        Insn::StB { base, off, .. } => check_access(base, off, 1),
        Insn::Jr { rs } => match av(rs) {
            Av::CodeMasked | Av::Known(_) => Ok(()),
            _ => Err(VerifyError::UnguardedIndirectJump { pc }),
        },
        _ => Ok(()),
    }
}

/// Abstract transfer function.
fn apply_transfer(insn: &Insn, state: &mut State, _data_len: u64) {
    let get = |state: &State, r: Reg| state[r.0 as usize];
    let set = |state: &mut State, r: Reg, v: Av| state[r.0 as usize] = v;
    match *insn {
        Insn::Li { rd, imm } => set(state, rd, Av::Known(imm as u64)),
        Insn::Mov { rd, rs } => {
            let v = get(state, rs);
            set(state, rd, v);
        }
        // Always widen to `Masked`, even for constants: constant-folding
        // here would make the first loop iteration's state `Known` and the
        // back-edge's state `Masked`, whose join is `Unknown` — losing the
        // very fact the guard established.
        Insn::MaskData { r } => set(state, r, Av::Masked),
        Insn::MaskCode { r } => set(state, r, Av::CodeMasked),
        Insn::And { rd, rs1, rs2 } => {
            let v = match (get(state, rs1), get(state, rs2)) {
                (Av::Known(a), Av::Known(b)) => Av::Known(a & b),
                // Masking a segment-bounded value with !7 aligns it down:
                // the verified-compiler idiom for whole-word access.
                (Av::Masked | Av::MaskedAligned, Av::Known(k))
                | (Av::Known(k), Av::Masked | Av::MaskedAligned)
                    if k == !7u64 =>
                {
                    Av::MaskedAligned
                }
                _ => Av::Unknown,
            };
            set(state, rd, v);
        }
        Insn::Add { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, u64::wrapping_add),
        Insn::Sub { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, u64::wrapping_sub),
        Insn::Mul { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, u64::wrapping_mul),
        Insn::Divu { rd, rs1, rs2 } => {
            binop(state, rd, rs1, rs2, |a, b| a.checked_div(b).unwrap_or(0))
        }
        Insn::Or { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, |a, b| a | b),
        Insn::Xor { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, |a, b| a ^ b),
        Insn::Shl { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, |a, b| a << (b & 63)),
        Insn::Shr { rd, rs1, rs2 } => binop(state, rd, rs1, rs2, |a, b| a >> (b & 63)),
        Insn::Ld { rd, .. } | Insn::LdB { rd, .. } => set(state, rd, Av::Unknown),
        Insn::St { .. } | Insn::StB { .. } => {}
        Insn::Beq { .. }
        | Insn::Bne { .. }
        | Insn::Bltu { .. }
        | Insn::Jmp { .. }
        | Insn::Jr { .. }
        | Insn::Halt => {}
    }
}

fn binop(state: &mut State, rd: Reg, rs1: Reg, rs2: Reg, f: impl Fn(u64, u64) -> u64) {
    let v = match (state[rs1.0 as usize], state[rs2.0 as usize]) {
        (Av::Known(a), Av::Known(b)) => Av::Known(f(a, b)),
        _ => Av::Unknown,
    };
    state[rd.0 as usize] = v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{asm::Asm, interp::Interp};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn pure_alu_program_verifies() {
        let p = crate::workloads::alu_loop(10);
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn constant_address_access_verifies() {
        let mut a = Asm::new(64);
        a.li(r(1), 32);
        a.ld(r(0), r(1), 16); // 32+16+8 = 56 <= 64.
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn constant_address_overflow_rejected() {
        let mut a = Asm::new(64);
        a.li(r(1), 60);
        a.ld(r(0), r(1), 0); // 60+8 > 64.
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnsafeMemoryAccess { pc: 1 })
        );
    }

    #[test]
    fn unknown_address_rejected_without_mask() {
        let mut a = Asm::new(64);
        // r1 comes in as an argument: unknown.
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnsafeMemoryAccess { pc: 0 })
        );
    }

    #[test]
    fn masked_byte_access_verifies() {
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn masked_word_access_needs_alignment() {
        // Masked (unaligned) word access is rejected…
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.ld(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_err());

        // …but the mask-then-align idiom is accepted.
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.li(r(2), !7i64);
        a.and(r(1), r(1), r(2));
        a.ld(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn mask_invalidated_by_arithmetic() {
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.addi(r(1), r(1), 1); // No longer provably bounded.
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_err());
    }

    #[test]
    fn bad_branch_target_rejected() {
        let p = crate::bytecode::Program::new(vec![crate::bytecode::Insn::Jmp { target: 99 }], 0);
        assert_eq!(
            verify(&p),
            Err(VerifyError::BadBranchTarget { pc: 0, target: 99 })
        );
    }

    #[test]
    fn unguarded_indirect_jump_rejected() {
        let mut a = Asm::new(0);
        a.jr(r(1));
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnguardedIndirectJump { pc: 0 })
        );
    }

    #[test]
    fn code_masked_indirect_jump_verifies() {
        let mut a = Asm::new(0);
        a.raw(crate::bytecode::Insn::MaskCode { r: r(1) });
        a.jr(r(1));
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn loop_with_join_converges() {
        // A loop whose body re-masks each iteration: requires a fixpoint
        // over the back edge.
        let p = crate::workloads::checksum_loop_verified(64, 4);
        let report = verify(&p).expect("verified workload must verify");
        assert!(report.iterations > 0);
        // And it actually runs correctly.
        let mut i = Interp::new(&p);
        i.load_data(0, &[1u8; 64]);
        assert!(i.run(1_000_000).is_ok());
    }

    #[test]
    fn verified_program_never_faults_at_runtime() {
        // The meta-property: anything the verifier accepts runs without
        // memory faults for arbitrary inputs.
        let p = crate::workloads::checksum_loop_verified(64, 8);
        verify(&p).unwrap();
        for seed in 0..16u64 {
            let mut i = Interp::new(&p);
            let data: Vec<u8> = (0..64).map(|x| (x as u64 * seed) as u8).collect();
            i.load_data(0, &data);
            i.set_reg(r(1), seed.wrapping_mul(0x9E3779B97F4A7C15));
            match i.run(1_000_000) {
                Ok(_) | Err(crate::interp::InterpError::OutOfSteps) => {}
                Err(e) => panic!("verified program faulted: {e}"),
            }
        }
    }

    #[test]
    fn malicious_wild_writer_rejected() {
        assert!(verify(&crate::workloads::wild_writer()).is_err());
    }

    #[test]
    fn empty_program_verifies_trivially() {
        let p = crate::bytecode::Program::new(vec![], 0);
        assert!(verify(&p).is_ok());
    }
}
