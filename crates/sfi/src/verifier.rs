//! Load-time static verification.
//!
//! Models the SPIN approach: "the ability to down-load application code,
//! written in a special type-safe language, into the kernel protection
//! domain" (paper, section 5). A type-safe compiler emits code that is safe
//! *by construction*; the kernel re-checks that claim with an abstract
//! interpretation at load time. Verified programs run with only the guards
//! the compiler itself emitted (which it can hoist and coarsen), unlike
//! SFI rewriting which guards every single access.
//!
//! Since the analysis rework, `verify` is a thin acceptance policy over
//! [`crate::analysis`]: the heavy lifting — CFG construction, an interval +
//! known-bits fixpoint, the per-instruction [`crate::analysis::ProofMap`] —
//! lives there, and this module merely demands that every reachable memory
//! access and indirect jump carry a proof. The verifier is still
//! deliberately conservative: it proves memory safety for the idioms our
//! "trusted compiler" (see [`crate::workloads`]) generates and rejects
//! anything else — exactly the trade-off the paper ascribes to software
//! protection ("restricted, type safe languages").

use crate::analysis;
use crate::bytecode::Program;

/// Why verification rejected a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A static branch target is outside the program.
    BadBranchTarget {
        /// Instruction index of the branch.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A memory access could not be proven in-bounds.
    UnsafeMemoryAccess {
        /// Instruction index of the access.
        pc: u32,
    },
    /// An indirect jump whose target register is neither bounded nor
    /// constant.
    UnguardedIndirectJump {
        /// Instruction index of the jump.
        pc: u32,
    },
    /// The dataflow analysis did not converge within budget.
    TooComplex {
        /// Instruction being evaluated when the budget blew.
        pc: u32,
        /// Evaluations performed up to that point.
        evaluations: u64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadBranchTarget { pc, target } => {
                write!(f, "branch at pc {pc} targets {target}, outside the program")
            }
            VerifyError::UnsafeMemoryAccess { pc } => {
                write!(f, "cannot prove memory access at pc {pc} in-bounds")
            }
            VerifyError::UnguardedIndirectJump { pc } => {
                write!(f, "indirect jump at pc {pc} through unbounded register")
            }
            VerifyError::TooComplex { pc, evaluations } => write!(
                f,
                "analysis exceeded its budget at pc {pc} after {evaluations} evaluations"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verification statistics — the measurable load-time cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Instruction-state evaluations performed (linear-ish in program
    /// size; this is what the load-time cost model charges).
    pub evaluations: u64,
    /// Number of worklist passes until fixpoint.
    pub iterations: u64,
}

/// Verifies `program`, returning load-time cost statistics on success.
///
/// Equivalent to [`analysis::analyze`] followed by
/// [`analysis::Analysis::verdict`]; use the analysis directly when the
/// [`analysis::ProofMap`] itself is wanted (check elision, linting).
pub fn verify(program: &Program) -> Result<VerifyReport, VerifyError> {
    let a = analysis::analyze(program)?;
    a.verdict(program)?;
    Ok(a.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Reg;
    use crate::{asm::Asm, interp::Interp};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn pure_alu_program_verifies() {
        let p = crate::workloads::alu_loop(10);
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn constant_address_access_verifies() {
        let mut a = Asm::new(64);
        a.li(r(1), 32);
        a.ld(r(0), r(1), 16); // 32+16+8 = 56 <= 64.
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn constant_address_overflow_rejected() {
        let mut a = Asm::new(64);
        a.li(r(1), 60);
        a.ld(r(0), r(1), 0); // 60+8 > 64.
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnsafeMemoryAccess { pc: 1 })
        );
    }

    #[test]
    fn unknown_address_rejected_without_mask() {
        let mut a = Asm::new(64);
        // r1 comes in as an argument: unknown.
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnsafeMemoryAccess { pc: 0 })
        );
    }

    #[test]
    fn masked_byte_access_verifies() {
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn masked_word_access_needs_alignment() {
        // Masked (unaligned) word access is rejected…
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.ld(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_err());

        // …but the mask-then-align idiom is accepted.
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.li(r(2), !7i64);
        a.and(r(1), r(1), r(2));
        a.ld(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn mask_invalidated_by_arithmetic() {
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.addi(r(1), r(1), 1); // [1, 64]: byte 64 would be out of bounds.
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_err());
    }

    // The old 5-value lattice (`Known/Masked/MaskedAligned/...`) rejected
    // every program in this block; the interval + known-bits domain proves
    // them. They pin the precision gained by the analysis rework.

    #[test]
    fn and_bounded_base_with_offset_now_verifies() {
        // An `and`-bounded base plus a constant offset. The old lattice
        // required `off == 0` for masked accesses and only understood the
        // literal `& !7` idiom.
        let mut a = Asm::new(64);
        a.li(r(2), 15);
        a.and(r(1), r(1), r(2)); // r1 in [0, 15].
        a.ldb(r(0), r(1), 7); // 15+7+1 = 23 <= 64.
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn and_bounded_word_access_in_padded_segment_now_verifies() {
        // A word access off a bounded base needs no alignment when the
        // segment leaves slack: [0,15] + 8 bytes ends at 23 <= 64.
        let mut a = Asm::new(64);
        a.li(r(2), 15);
        a.and(r(1), r(1), r(2));
        a.ld(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn shift_bounded_base_now_verifies() {
        // A mask-then-shift-derived bound: r1 in [0,63] >> 3 = [0,7].
        let mut a = Asm::new(64);
        a.mask_data(r(1));
        a.li(r(2), 3);
        a.raw(crate::bytecode::Insn::Shr {
            rd: r(1),
            rs1: r(1),
            rs2: r(2),
        });
        a.ld(r(0), r(1), 0); // 7+8 = 15 <= 64.
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn arithmetic_after_mask_within_slack_now_verifies() {
        // Adding to a masked base stays provable while the interval still
        // fits: [0,63] + 8 = [8,71], and 71+1 = 72 <= 128.
        let mut a = Asm::new(128);
        a.li(r(2), 63);
        a.and(r(1), r(1), r(2));
        a.addi(r(1), r(1), 8);
        a.ldb(r(0), r(1), 0);
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn too_complex_reports_pc_and_evaluations() {
        let p = crate::workloads::checksum_loop_verified(64, 2);
        let err = analysis::analyze_with_budget(&p, 2).unwrap_err();
        let VerifyError::TooComplex { pc, evaluations } = err else {
            panic!("expected TooComplex");
        };
        assert_eq!(evaluations, 3);
        let msg = VerifyError::TooComplex { pc, evaluations }.to_string();
        assert!(msg.contains("pc"), "{msg}");
        assert!(msg.contains("3 evaluations"), "{msg}");
    }

    #[test]
    fn bad_branch_target_rejected() {
        let p = crate::bytecode::Program::new(vec![crate::bytecode::Insn::Jmp { target: 99 }], 0);
        assert_eq!(
            verify(&p),
            Err(VerifyError::BadBranchTarget { pc: 0, target: 99 })
        );
    }

    #[test]
    fn unguarded_indirect_jump_rejected() {
        let mut a = Asm::new(0);
        a.jr(r(1));
        a.halt();
        assert_eq!(
            verify(&a.finish().unwrap()),
            Err(VerifyError::UnguardedIndirectJump { pc: 0 })
        );
    }

    #[test]
    fn code_masked_indirect_jump_verifies() {
        let mut a = Asm::new(0);
        a.raw(crate::bytecode::Insn::MaskCode { r: r(1) });
        a.jr(r(1));
        a.halt();
        assert!(verify(&a.finish().unwrap()).is_ok());
    }

    #[test]
    fn loop_with_join_converges() {
        // A loop whose body re-masks each iteration: requires a fixpoint
        // over the back edge.
        let p = crate::workloads::checksum_loop_verified(64, 4);
        let report = verify(&p).expect("verified workload must verify");
        assert!(report.iterations > 0);
        // And it actually runs correctly.
        let mut i = Interp::new(&p);
        i.load_data(0, &[1u8; 64]);
        assert!(i.run(1_000_000).is_ok());
    }

    #[test]
    fn verified_program_never_faults_at_runtime() {
        // The meta-property: anything the verifier accepts runs without
        // memory faults for arbitrary inputs.
        let p = crate::workloads::checksum_loop_verified(64, 8);
        verify(&p).unwrap();
        for seed in 0..16u64 {
            let mut i = Interp::new(&p);
            let data: Vec<u8> = (0..64).map(|x| (x as u64 * seed) as u8).collect();
            i.load_data(0, &data);
            i.set_reg(r(1), seed.wrapping_mul(0x9E3779B97F4A7C15));
            match i.run(1_000_000) {
                Ok(_) | Err(crate::interp::InterpError::OutOfSteps) => {}
                Err(e) => panic!("verified program faulted: {e}"),
            }
        }
    }

    #[test]
    fn malicious_wild_writer_rejected() {
        assert!(verify(&crate::workloads::wild_writer()).is_err());
    }

    #[test]
    fn empty_program_verifies_trivially() {
        let p = crate::bytecode::Program::new(vec![], 0);
        assert!(verify(&p).is_ok());
    }
}
