//! The component instruction set.
//!
//! A deliberately small register machine: 16 general-purpose 64-bit
//! registers, a private data segment, absolute branch targets. Rich enough
//! to express the paper's motivating workloads (protocol processing,
//! checksums, table walks) and for sandboxing/verification to be
//! non-trivial, small enough to stay auditable.

use crate::ImageError;

/// A register index (0..=15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

impl Reg {
    /// Checked constructor.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < NUM_REGS, "register r{i} out of range");
        Reg(i)
    }
}

/// One instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insn {
    /// `rd <- imm`
    Li { rd: Reg, imm: i64 },
    /// `rd <- rs`
    Mov { rd: Reg, rs: Reg },
    /// `rd <- rs1 + rs2` (wrapping)
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 - rs2` (wrapping)
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 * rs2` (wrapping)
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 / rs2` (unsigned; traps on zero divisor)
    Divu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 & rs2`
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 | rs2`
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 ^ rs2`
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 << (rs2 & 63)`
    Shl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 >> (rs2 & 63)` (logical)
    Shr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- mem64[rs + off]`
    Ld { rd: Reg, base: Reg, off: i32 },
    /// `rd <- mem8[rs + off]` (zero-extended)
    LdB { rd: Reg, base: Reg, off: i32 },
    /// `mem64[base + off] <- rs`
    St { rs: Reg, base: Reg, off: i32 },
    /// `mem8[base + off] <- low byte of rs`
    StB { rs: Reg, base: Reg, off: i32 },
    /// Branch to `target` if `rs1 == rs2`.
    Beq { rs1: Reg, rs2: Reg, target: u32 },
    /// Branch to `target` if `rs1 != rs2`.
    Bne { rs1: Reg, rs2: Reg, target: u32 },
    /// Branch to `target` if `rs1 < rs2` (unsigned).
    Bltu { rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Indirect jump to the address in `rs` (instruction index).
    Jr { rs: Reg },
    /// Mask `r` into the data segment: `r <- base + (r mod len)`.
    ///
    /// This is the SFI guard instruction the sandboxer inserts; source
    /// programs may also use it directly (a "cooperatively sandboxed"
    /// program that the verifier can accept).
    MaskData { r: Reg },
    /// Mask `r` into valid code range: `r <- r mod program_len`.
    MaskCode { r: Reg },
    /// Stop; `r0` is the result value.
    Halt,
}

/// A component program: instructions plus its declared data-segment size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The instructions.
    pub code: Vec<Insn>,
    /// Size of the private data segment in bytes.
    pub data_len: u32,
}

impl Program {
    /// Creates a program.
    pub fn new(code: Vec<Insn>, data_len: u32) -> Self {
        Program { code, data_len }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Encodes the program into its *image*: the byte string that gets
    /// digested and signed by certificates.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.code.len() * 10);
        out.extend_from_slice(b"PBC1"); // Paramecium ByteCode v1.
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        for insn in &self.code {
            encode_insn(insn, &mut out);
        }
        out
    }

    /// Decodes an image back into a program.
    pub fn decode(image: &[u8]) -> Result<Self, ImageError> {
        let err = |m: &str| ImageError::Malformed(m.into());
        if image.get(..4) != Some(b"PBC1".as_slice()) {
            return Err(err("bad magic"));
        }
        let data_len = u32::from_le_bytes(
            image
                .get(4..8)
                .ok_or_else(|| err("truncated header"))?
                .try_into()
                .expect("4"),
        );
        let count = u32::from_le_bytes(
            image
                .get(8..12)
                .ok_or_else(|| err("truncated header"))?
                .try_into()
                .expect("4"),
        ) as usize;
        let mut pos = 12;
        let mut code = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            code.push(decode_insn(image, &mut pos)?);
        }
        if pos != image.len() {
            return Err(err("trailing bytes"));
        }
        Ok(Program { code, data_len })
    }
}

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    out.push(r.0);
}

fn encode_insn(insn: &Insn, out: &mut Vec<u8>) {
    use Insn::*;
    match insn {
        Li { rd, imm } => {
            out.push(0);
            put_reg(out, *rd);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Mov { rd, rs } => {
            out.push(1);
            put_reg(out, *rd);
            put_reg(out, *rs);
        }
        Add { rd, rs1, rs2 } => put3(out, 2, *rd, *rs1, *rs2),
        Sub { rd, rs1, rs2 } => put3(out, 3, *rd, *rs1, *rs2),
        Mul { rd, rs1, rs2 } => put3(out, 4, *rd, *rs1, *rs2),
        Divu { rd, rs1, rs2 } => put3(out, 5, *rd, *rs1, *rs2),
        And { rd, rs1, rs2 } => put3(out, 6, *rd, *rs1, *rs2),
        Or { rd, rs1, rs2 } => put3(out, 7, *rd, *rs1, *rs2),
        Xor { rd, rs1, rs2 } => put3(out, 8, *rd, *rs1, *rs2),
        Shl { rd, rs1, rs2 } => put3(out, 9, *rd, *rs1, *rs2),
        Shr { rd, rs1, rs2 } => put3(out, 10, *rd, *rs1, *rs2),
        Ld { rd, base, off } => put_mem(out, 11, *rd, *base, *off),
        LdB { rd, base, off } => put_mem(out, 12, *rd, *base, *off),
        St { rs, base, off } => put_mem(out, 13, *rs, *base, *off),
        StB { rs, base, off } => put_mem(out, 14, *rs, *base, *off),
        Beq { rs1, rs2, target } => put_branch(out, 15, *rs1, *rs2, *target),
        Bne { rs1, rs2, target } => put_branch(out, 16, *rs1, *rs2, *target),
        Bltu { rs1, rs2, target } => put_branch(out, 17, *rs1, *rs2, *target),
        Jmp { target } => {
            out.push(18);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Jr { rs } => {
            out.push(19);
            put_reg(out, *rs);
        }
        MaskData { r } => {
            out.push(20);
            put_reg(out, *r);
        }
        MaskCode { r } => {
            out.push(21);
            put_reg(out, *r);
        }
        Halt => out.push(22),
    }
}

fn put3(out: &mut Vec<u8>, op: u8, a: Reg, b: Reg, c: Reg) {
    out.push(op);
    out.push(a.0);
    out.push(b.0);
    out.push(c.0);
}

fn put_mem(out: &mut Vec<u8>, op: u8, r: Reg, base: Reg, off: i32) {
    out.push(op);
    out.push(r.0);
    out.push(base.0);
    out.extend_from_slice(&off.to_le_bytes());
}

fn put_branch(out: &mut Vec<u8>, op: u8, a: Reg, b: Reg, target: u32) {
    out.push(op);
    out.push(a.0);
    out.push(b.0);
    out.extend_from_slice(&target.to_le_bytes());
}

fn decode_insn(buf: &[u8], pos: &mut usize) -> Result<Insn, ImageError> {
    use Insn::*;
    let err = || ImageError::Malformed("truncated instruction".into());
    let op = *buf.get(*pos).ok_or_else(err)?;
    *pos += 1;
    let reg = |pos: &mut usize| -> Result<Reg, ImageError> {
        let v = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        if (v as usize) >= NUM_REGS {
            return Err(ImageError::Malformed(format!("register r{v} out of range")));
        }
        Ok(Reg(v))
    };
    fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], ImageError> {
        let s = buf
            .get(*pos..*pos + N)
            .ok_or_else(|| ImageError::Malformed("truncated instruction".into()))?;
        *pos += N;
        Ok(s.try_into().expect("length checked"))
    }
    Ok(match op {
        0 => {
            let rd = reg(pos)?;
            Li {
                rd,
                imm: i64::from_le_bytes(take::<8>(buf, pos)?),
            }
        }
        1 => Mov {
            rd: reg(pos)?,
            rs: reg(pos)?,
        },
        2..=10 => {
            let (rd, rs1, rs2) = (reg(pos)?, reg(pos)?, reg(pos)?);
            match op {
                2 => Add { rd, rs1, rs2 },
                3 => Sub { rd, rs1, rs2 },
                4 => Mul { rd, rs1, rs2 },
                5 => Divu { rd, rs1, rs2 },
                6 => And { rd, rs1, rs2 },
                7 => Or { rd, rs1, rs2 },
                8 => Xor { rd, rs1, rs2 },
                9 => Shl { rd, rs1, rs2 },
                _ => Shr { rd, rs1, rs2 },
            }
        }
        11..=14 => {
            let (r, base) = (reg(pos)?, reg(pos)?);
            let off = i32::from_le_bytes(take::<4>(buf, pos)?);
            match op {
                11 => Ld { rd: r, base, off },
                12 => LdB { rd: r, base, off },
                13 => St { rs: r, base, off },
                _ => StB { rs: r, base, off },
            }
        }
        15..=17 => {
            let (rs1, rs2) = (reg(pos)?, reg(pos)?);
            let target = u32::from_le_bytes(take::<4>(buf, pos)?);
            match op {
                15 => Beq { rs1, rs2, target },
                16 => Bne { rs1, rs2, target },
                _ => Bltu { rs1, rs2, target },
            }
        }
        18 => Jmp {
            target: u32::from_le_bytes(take::<4>(buf, pos)?),
        },
        19 => Jr { rs: reg(pos)? },
        20 => MaskData { r: reg(pos)? },
        21 => MaskCode { r: reg(pos)? },
        22 => Halt,
        other => return Err(ImageError::Malformed(format!("unknown opcode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn sample() -> Program {
        Program::new(
            vec![
                Insn::Li { rd: r(0), imm: -7 },
                Insn::Li {
                    rd: r(1),
                    imm: i64::MAX,
                },
                Insn::Mov { rd: r(2), rs: r(1) },
                Insn::Add {
                    rd: r(0),
                    rs1: r(1),
                    rs2: r(2),
                },
                Insn::Divu {
                    rd: r(3),
                    rs1: r(0),
                    rs2: r(1),
                },
                Insn::Ld {
                    rd: r(4),
                    base: r(5),
                    off: -16,
                },
                Insn::StB {
                    rs: r(4),
                    base: r(5),
                    off: 1024,
                },
                Insn::Beq {
                    rs1: r(0),
                    rs2: r(1),
                    target: 9,
                },
                Insn::Jmp { target: 0 },
                Insn::Jr { rs: r(6) },
                Insn::MaskData { r: r(5) },
                Insn::MaskCode { r: r(6) },
                Insn::Halt,
            ],
            4096,
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let image = p.encode();
        assert_eq!(Program::decode(&image).unwrap(), p);
    }

    #[test]
    fn decode_rejects_truncation() {
        let image = sample().encode();
        for cut in 0..image.len() {
            assert!(Program::decode(&image[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_trailing() {
        let mut image = sample().encode();
        image[0] ^= 1;
        assert!(Program::decode(&image).is_err());
        let mut image = sample().encode();
        image.push(0);
        assert!(Program::decode(&image).is_err());
    }

    #[test]
    fn decode_rejects_bad_register() {
        // Li with register 16.
        let mut image = Vec::new();
        image.extend_from_slice(b"PBC1");
        image.extend_from_slice(&0u32.to_le_bytes());
        image.extend_from_slice(&1u32.to_le_bytes());
        image.push(0); // Li opcode.
        image.push(16); // Bad register.
        image.extend_from_slice(&0i64.to_le_bytes());
        assert!(Program::decode(&image).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_constructor_checks_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn image_identity_is_content_identity() {
        // Two structurally equal programs encode identically — this is what
        // makes digest-based certificates meaningful.
        assert_eq!(sample().encode(), sample().encode());
        let mut other = sample();
        other.data_len += 1;
        assert_ne!(sample().encode(), other.encode());
    }
}
