//! The nucleus: boot, domains, binding, loading.
//!
//! The nucleus is itself an object *composition* (paper, section 2: "the
//! Paramecium kernel is a composition, composed of objects that manage
//! interrupts, user contexts, etc."), statically composed at boot. Its
//! four service objects are registered under `/nucleus/…`, so user domains
//! reach kernel services through exactly the same bind-and-proxy mechanism
//! as any other cross-domain object — there is no separate syscall layer.

use std::{collections::BTreeMap, sync::Arc};

use parking_lot::{Mutex, RwLock};

use paramecium_cert::{certificate::Right, store::CertStore};
use paramecium_crypto::keys::PublicKey;
use paramecium_machine::{cost::Cycles, trap::TrapKind, Machine};
use paramecium_obj::{compose::CompositionBuilder, ObjRef, ObjectBuilder, TypeTag, Value};
use paramecium_sfi::bytecode::Program;

use crate::{
    certsvc::CertService,
    directory::{NameSpace, NsEntry},
    domain::{Domain, DomainId, KERNEL_DOMAIN},
    events::EventService,
    loader::{make_bytecode_object, soften, LoadOptions, LoadReport, Placement, Protection},
    memsvc::MemService,
    proxy::{make_proxy, ProxyCtx, ProxyStats},
    repository::{ComponentKind, Repository},
    CoreError, CoreResult,
};

/// Default VM step budget for loaded bytecode components.
pub const DEFAULT_STEP_BUDGET: u64 = 1 << 28;

/// The assembled Paramecium nucleus.
pub struct Nucleus {
    machine: Arc<Mutex<Machine>>,
    /// Processor event management.
    pub events: Arc<EventService>,
    /// Memory management.
    pub mem: Arc<MemService>,
    /// Certification service.
    pub certsvc: Arc<CertService>,
    /// The component repository.
    pub repository: Arc<Repository>,
    root_ns: Arc<NameSpace>,
    domains: RwLock<BTreeMap<u16, Arc<Domain>>>,
    proxy_stats: Arc<ProxyStats>,
    /// The kernel composition object (also at `/nucleus`).
    pub kernel_object: ObjRef,
    /// Step budget applied to loaded bytecode components.
    pub step_budget: u64,
    /// On-line certifier, if enabled (paper §4: "this does not exclude
    /// on-line certification by the kernel").
    online: RwLock<Option<OnlineCertifier>>,
}

/// A certifier resident in the kernel, minting certificates at load time
/// for components that arrive without one.
struct OnlineCertifier {
    certifier: Box<dyn paramecium_cert::Certifier>,
    chain: Vec<paramecium_cert::DelegationCert>,
}

impl Nucleus {
    /// Boots a nucleus on a fresh default machine, trusting `root_key`
    /// for certification.
    pub fn boot(root_key: PublicKey) -> CoreResult<Arc<Nucleus>> {
        Self::boot_on(Arc::new(Mutex::new(Machine::new())), root_key)
    }

    /// Boots on an existing machine (custom cost model or sizing).
    pub fn boot_on(machine: Arc<Mutex<Machine>>, root_key: PublicKey) -> CoreResult<Arc<Nucleus>> {
        let events = Arc::new(EventService::new());
        let mem = Arc::new(MemService::new(machine.clone()));
        let certsvc = Arc::new(CertService::new(machine.clone(), CertStore::new(root_key)));
        let repository = Arc::new(Repository::new());
        let root_ns = NameSpace::root();

        // Static composition of the kernel from its service objects.
        let events_obj = events_object(&events);
        let mem_obj = memory_object(&mem);
        let dir_obj = directory_object(&root_ns);
        let cert_obj = cert_object(&certsvc);
        let kernel_object = CompositionBuilder::new("paramecium-kernel")
            .child("events", events_obj.clone())
            .child("memory", mem_obj.clone())
            .child("directory", dir_obj.clone())
            .child("certification", cert_obj.clone())
            .export("events", "events")
            .export("memory", "memory")
            .export("directory", "directory")
            .export("certification", "certification")
            .build()?;

        let nucleus = Arc::new(Nucleus {
            machine,
            events,
            mem,
            certsvc,
            repository,
            root_ns: root_ns.clone(),
            domains: RwLock::new(BTreeMap::new()),
            proxy_stats: Arc::new(ProxyStats::default()),
            kernel_object: kernel_object.clone(),
            step_budget: DEFAULT_STEP_BUDGET,
            online: RwLock::new(None),
        });

        // The kernel domain sees the root name space directly.
        let kernel_domain = Domain::new(KERNEL_DOMAIN, "kernel", root_ns.clone());
        nucleus
            .domains
            .write()
            .insert(KERNEL_DOMAIN.0, kernel_domain);

        // Wire the page-fault vector to the memory service's per-page
        // handlers — the mechanism cross-domain proxies ride on.
        let mem_for_faults = nucleus.mem.clone();
        nucleus.events.register(
            TrapKind::PageFault.vector(),
            KERNEL_DOMAIN,
            Arc::new(move |trap| {
                if let Some(fault) = &trap.fault {
                    mem_for_faults.handle_fault(fault);
                }
            }),
        )?;

        // Register the kernel and its services in the name space.
        for (path, obj) in [
            ("/nucleus", kernel_object),
            ("/nucleus/events", events_obj),
            ("/nucleus/memory", mem_obj),
            ("/nucleus/directory", dir_obj),
            ("/nucleus/certification", cert_obj),
        ] {
            nucleus.root_ns.register(
                path,
                NsEntry {
                    obj,
                    home: KERNEL_DOMAIN,
                },
            )?;
        }
        Ok(nucleus)
    }

    /// The machine the nucleus runs on.
    pub fn machine(&self) -> &Arc<Mutex<Machine>> {
        &self.machine
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.machine.lock().now()
    }

    /// The root name space (the kernel domain's view).
    pub fn root_namespace(&self) -> &Arc<NameSpace> {
        &self.root_ns
    }

    /// Cross-domain traffic counters.
    pub fn proxy_stats(&self) -> &Arc<ProxyStats> {
        &self.proxy_stats
    }

    /// Advances simulated time and delivers any device interrupts raised.
    /// Returns the number of interrupts delivered.
    pub fn poll(&self, cycles: Cycles) -> usize {
        self.machine.lock().tick(cycles);
        self.events.drain_interrupts(&self.machine)
    }

    /// Creates a protection domain whose name space inherits from
    /// `parent`'s, seeded with `overrides` (the paper's local
    /// reconfiguration mechanism).
    pub fn create_domain(
        &self,
        name: impl Into<String>,
        parent: DomainId,
        overrides: impl IntoIterator<Item = (String, NsEntry)>,
    ) -> CoreResult<Arc<Domain>> {
        let parent_ns = self
            .domain(parent)
            .ok_or(CoreError::NoSuchDomain(parent.0))?
            .namespace
            .clone();
        let ctx = self.machine.lock().mmu.create_context();
        let id = DomainId::from(ctx);
        let ns = NameSpace::child_of(&parent_ns, overrides);
        let domain = Domain::new(id, name, ns);
        self.domains.write().insert(id.0, domain.clone());
        Ok(domain)
    }

    /// Looks up a domain record.
    pub fn domain(&self, id: DomainId) -> Option<Arc<Domain>> {
        self.domains.read().get(&id.0).cloned()
    }

    /// All live domains.
    pub fn domains(&self) -> Vec<Arc<Domain>> {
        self.domains.read().values().cloned().collect()
    }

    /// Destroys a domain: its MMU context, pages (respecting sharing) and
    /// record. The kernel domain cannot be destroyed.
    pub fn destroy_domain(&self, id: DomainId) -> CoreResult<()> {
        if id.is_kernel() {
            return Err(CoreError::Policy("cannot destroy the kernel domain".into()));
        }
        self.domains
            .write()
            .remove(&id.0)
            .ok_or(CoreError::NoSuchDomain(id.0))?;
        self.mem.destroy_domain(id)?;
        Ok(())
    }

    /// Registers an object at `path` in `domain`'s name space with that
    /// domain as its home.
    pub fn register(&self, domain: DomainId, path: &str, obj: ObjRef) -> CoreResult<()> {
        let d = self
            .domain(domain)
            .ok_or(CoreError::NoSuchDomain(domain.0))?;
        d.namespace.register(path, NsEntry { obj, home: domain })
    }

    /// Registers an object living in `home` into the **root** name space,
    /// making it visible to every domain (which import it through proxies
    /// unless they are `home` itself). This is how a user domain exports a
    /// service — e.g. a packet filter the kernel-side stack will call.
    pub fn register_shared(&self, home: DomainId, path: &str, obj: ObjRef) -> CoreResult<()> {
        if self.domain(home).is_none() {
            return Err(CoreError::NoSuchDomain(home.0));
        }
        self.root_ns.register(path, NsEntry { obj, home })
    }

    /// Replaces the binding at `path` with an interposing agent living in
    /// `agent_home`. Returns the previous object handle (which the agent
    /// typically wraps).
    pub fn interpose(&self, agent_home: DomainId, path: &str, agent: ObjRef) -> CoreResult<ObjRef> {
        let d = self
            .domain(agent_home)
            .ok_or(CoreError::NoSuchDomain(agent_home.0))?;
        let old = d.namespace.replace(
            path,
            NsEntry {
                obj: agent,
                home: agent_home,
            },
        )?;
        Ok(old.obj)
    }

    /// Binds to the object at `path` from `from`'s point of view.
    ///
    /// Same-domain bindings return the object handle directly; bindings to
    /// an object in another protection domain return a proxy (the import
    /// "causes a proxy to appear").
    pub fn bind(&self, from: DomainId, path: &str) -> CoreResult<ObjRef> {
        let d = self.domain(from).ok_or(CoreError::NoSuchDomain(from.0))?;
        let entry = d.namespace.lookup(path)?;
        {
            // A bind is a name-space walk plus handle fabrication.
            let mut m = self.machine.lock();
            let cost = m.cost.indirect_call;
            m.charge(cost);
        }
        if entry.home == from {
            Ok(entry.obj)
        } else {
            Ok(make_proxy(&self.proxy_ctx(), entry.obj, entry.home, from))
        }
    }

    /// Installs an on-line certifier: a certifier resident in the kernel
    /// that is consulted at load time for kernel-bound bytecode arriving
    /// without a certificate. Its key must be empowered by `chain`
    /// (delegations from the root). The certification *effort* is charged
    /// to simulated time — on-line certification happens on the kernel's
    /// clock, unlike the usual off-line flow.
    pub fn enable_online_certification(
        &self,
        certifier: Box<dyn paramecium_cert::Certifier>,
        chain: Vec<paramecium_cert::DelegationCert>,
    ) {
        *self.online.write() = Some(OnlineCertifier { certifier, chain });
    }

    /// Disables on-line certification.
    pub fn disable_online_certification(&self) {
        *self.online.write() = None;
    }

    /// Attempts on-line certification of `image`, charging the effort.
    fn try_online_certify(
        &self,
        component: &str,
        image: &[u8],
    ) -> Option<paramecium_cert::Certificate> {
        let guard = self.online.read();
        let online = guard.as_ref()?;
        let outcome = online
            .certifier
            .try_certify(component, image, &[Right::RunKernel]);
        self.machine.lock().charge(online.certifier.last_effort());
        match outcome {
            paramecium_cert::CertifyOutcome::Certified(cert) => Some(cert),
            paramecium_cert::CertifyOutcome::Declined { .. } => None,
        }
    }

    /// The context bundle proxies need.
    pub fn proxy_ctx(&self) -> ProxyCtx {
        ProxyCtx {
            machine: self.machine.clone(),
            events: self.events.clone(),
            mem: self.mem.clone(),
            stats: self.proxy_stats.clone(),
        }
    }

    /// Loads a component from the repository according to `options`,
    /// registers it in the name space, and reports what happened.
    ///
    /// Kernel placement of a *certified* component runs it native; of
    /// uncertified *bytecode*, falls back to load-time verification or SFI
    /// (if allowed); of uncertified *native* code, is refused — there is
    /// no way to contain it.
    pub fn load(&self, component: &str, options: &LoadOptions) -> CoreResult<LoadReport> {
        let kind = self.repository.get(component)?;
        let image = kind.image().to_vec();
        let t0 = self.now();

        let (domain, protection, obj) = match options.placement {
            Placement::Kernel => match kind {
                ComponentKind::Native { factory, .. } => {
                    self.certsvc.validate_for(&image, Right::RunKernel)?;
                    (KERNEL_DOMAIN, Protection::CertifiedNative, factory()?)
                }
                ComponentKind::Bytecode { image: bc } => {
                    let program = Program::decode(&bc)
                        .map_err(|e| CoreError::Policy(format!("bad image: {e}")))?;
                    // A certificate that validates for RunKernel wins; a
                    // missing or insufficient one falls through to on-line
                    // certification, then software protection. Strict mode
                    // surfaces the certificate error instead.
                    let cert_check = if !options.force_sandbox && self.certsvc.is_certified(&bc) {
                        Some(self.certsvc.validate_for(&bc, Right::RunKernel))
                    } else {
                        None
                    };
                    if options.force_sandbox {
                        let (rewritten, stats) = paramecium_sfi::sandbox::sandbox_rewrite(&program);
                        self.machine
                            .lock()
                            .charge((stats.original_len + stats.rewritten_len) as Cycles * 2);
                        let obj = make_bytecode_object(
                            component,
                            rewritten,
                            Protection::Sandboxed,
                            self.machine.clone(),
                            self.step_budget,
                        );
                        (KERNEL_DOMAIN, Protection::Sandboxed, obj)
                    } else if matches!(cert_check, Some(Ok(_))) {
                        let obj = make_bytecode_object(
                            component,
                            program,
                            Protection::CertifiedNative,
                            self.machine.clone(),
                            self.step_budget,
                        );
                        (KERNEL_DOMAIN, Protection::CertifiedNative, obj)
                    } else if !options.allow_software_protection && self.online.read().is_none() {
                        // Strict: report the precise certificate problem.
                        return Err(match cert_check {
                            Some(Err(e)) => e,
                            _ => CoreError::Cert(paramecium_cert::CertError::NotCertified),
                        });
                    } else if let Some(cert) = self.try_online_certify(component, &bc) {
                        // The kernel certified it on-line: install the
                        // minted certificate and run native. Subsequent
                        // loads of the same image hit the normal
                        // (cached) certificate path.
                        self.certsvc.install(
                            cert,
                            self.online.read().as_ref().expect("set").chain.clone(),
                        );
                        self.certsvc.validate_for(&bc, Right::RunKernel)?;
                        let obj = make_bytecode_object(
                            component,
                            program,
                            Protection::CertifiedNative,
                            self.machine.clone(),
                            self.step_budget,
                        );
                        (KERNEL_DOMAIN, Protection::CertifiedNative, obj)
                    } else if options.allow_software_protection {
                        let cost_model = self.machine.lock().cost.clone();
                        let (program, protection, cost) = soften(program, &cost_model);
                        self.machine.lock().charge(cost);
                        let obj = make_bytecode_object(
                            component,
                            program,
                            protection,
                            self.machine.clone(),
                            self.step_budget,
                        );
                        (KERNEL_DOMAIN, protection, obj)
                    } else {
                        return Err(CoreError::Cert(paramecium_cert::CertError::NotCertified));
                    }
                }
            },
            Placement::Domain(d) => {
                if self.domain(d).is_none() {
                    return Err(CoreError::NoSuchDomain(d.0));
                }
                if options.require_user_cert {
                    self.certsvc.validate_for(&image, Right::RunUser)?;
                }
                let obj = match kind {
                    ComponentKind::Native { factory, .. } => factory()?,
                    ComponentKind::Bytecode { image: bc } => {
                        let program = Program::decode(&bc)
                            .map_err(|e| CoreError::Policy(format!("bad image: {e}")))?;
                        make_bytecode_object(
                            component,
                            program,
                            Protection::Hardware,
                            self.machine.clone(),
                            self.step_budget,
                        )
                    }
                };
                (d, Protection::Hardware, obj)
            }
        };

        self.register(domain, &options.register_as, obj)?;
        if let Some(d) = self.domain(domain) {
            d.note_loaded(&options.register_as);
        }
        Ok(LoadReport {
            path: options.register_as.clone(),
            domain,
            protection,
            load_cycles: self.now() - t0,
        })
    }
}

/// Wraps the event service as an object (introspection interface).
fn events_object(events: &Arc<EventService>) -> ObjRef {
    let e1 = events.clone();
    let e2 = events.clone();
    ObjectBuilder::new("nucleus-events")
        .interface("events", |i| {
            i.method("stats", &[TypeTag::Int], TypeTag::List, move |_, args| {
                let v = args[0].as_int()? as u32;
                let s = e1.stats(v);
                Ok(Value::List(vec![
                    Value::Int(s.delivered as i64),
                    Value::Int(s.unhandled as i64),
                ]))
            })
            .method(
                "callbacks",
                &[TypeTag::Int],
                TypeTag::Int,
                move |_, args| {
                    let v = args[0].as_int()? as u32;
                    Ok(Value::Int(e2.callback_count(v) as i64))
                },
            )
        })
        .build()
}

/// Wraps the memory service as an object.
fn memory_object(mem: &Arc<MemService>) -> ObjRef {
    let m = mem.clone();
    ObjectBuilder::new("nucleus-memory")
        .interface("memory", |i| {
            i.method("stats", &[], TypeTag::List, move |_, _| {
                let s = m.stats();
                Ok(Value::List(vec![
                    Value::Int(s.pages_allocated as i64),
                    Value::Int(s.pages_shared as i64),
                    Value::Int(s.faults_handled as i64),
                    Value::Int(s.faults_unhandled as i64),
                ]))
            })
        })
        .build()
}

/// Wraps the directory service (root name space) as an object.
fn directory_object(ns: &Arc<NameSpace>) -> ObjRef {
    let n1 = ns.clone();
    let n2 = ns.clone();
    ObjectBuilder::new("nucleus-directory")
        .interface("directory", |i| {
            i.method("list", &[TypeTag::Str], TypeTag::List, move |_, args| {
                let prefix = args[0].as_str()?;
                Ok(Value::List(
                    n1.list(prefix).into_iter().map(Value::Str).collect(),
                ))
            })
            .method(
                "registered",
                &[TypeTag::Str],
                TypeTag::Bool,
                move |_, args| Ok(Value::Bool(n2.lookup(args[0].as_str()?).is_ok())),
            )
        })
        .build()
}

/// Wraps the certification service as an object.
fn cert_object(certsvc: &Arc<CertService>) -> ObjRef {
    let c1 = certsvc.clone();
    let c2 = certsvc.clone();
    ObjectBuilder::new("nucleus-certification")
        .interface("certification", |i| {
            i.method(
                "is_certified",
                &[TypeTag::Bytes],
                TypeTag::Bool,
                move |_, args| Ok(Value::Bool(c1.is_certified(args[0].as_bytes()?))),
            )
            .method("stats", &[], TypeTag::List, move |_, _| {
                let s = c2.stats();
                Ok(Value::List(vec![
                    Value::Int(s.full_validations as i64),
                    Value::Int(s.cache_hits as i64),
                    Value::Int(s.signature_checks as i64),
                ]))
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramecium_cert::{authority::Authority, certificate::CertifyMethod};
    use paramecium_sfi::workloads;
    use rand::{rngs::StdRng, SeedableRng};

    fn root_authority() -> Authority {
        Authority::new("root", &mut StdRng::seed_from_u64(1), 512)
    }

    fn booted() -> (Arc<Nucleus>, Authority) {
        let root = root_authority();
        (Nucleus::boot(root.public().clone()).unwrap(), root)
    }

    #[test]
    fn boot_registers_nucleus_services() {
        let (n, _) = booted();
        let names = n.root_namespace().list("/nucleus");
        assert_eq!(
            names,
            vec![
                "/nucleus",
                "/nucleus/certification",
                "/nucleus/directory",
                "/nucleus/events",
                "/nucleus/memory"
            ]
        );
        // The kernel object is a composition exporting service interfaces.
        let k = n.bind(KERNEL_DOMAIN, "/nucleus").unwrap();
        let r = k.invoke("memory", "stats", &[]).unwrap();
        assert!(matches!(r, Value::List(_)));
    }

    #[test]
    fn same_domain_bind_is_direct() {
        let (n, _) = booted();
        let obj = n.bind(KERNEL_DOMAIN, "/nucleus/events").unwrap();
        assert_eq!(obj.class(), "nucleus-events");
    }

    #[test]
    fn cross_domain_bind_is_a_proxy() {
        let (n, _) = booted();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        let obj = n.bind(app.id, "/nucleus/events").unwrap();
        assert!(obj.class().starts_with("proxy<"));
        // And it works: a syscall-style invocation through the proxy.
        let r = obj.invoke("events", "callbacks", &[Value::Int(1)]).unwrap();
        assert_eq!(r, Value::Int(1)); // The page-fault handler from boot.
        assert_eq!(n.proxy_stats().crossings(), 1);
    }

    #[test]
    fn domains_inherit_and_override_namespace() {
        let (n, _) = booted();
        let svc = ObjectBuilder::new("real-svc").build();
        n.register(KERNEL_DOMAIN, "/svc/thing", svc).unwrap();
        let fake = ObjectBuilder::new("fake-svc").build();
        let app = n
            .create_domain(
                "app",
                KERNEL_DOMAIN,
                [(
                    "/svc/thing".to_owned(),
                    NsEntry {
                        obj: fake,
                        home: KERNEL_DOMAIN,
                    },
                )],
            )
            .unwrap();
        // The app sees its override; the kernel sees the original.
        let from_app = n.bind(app.id, "/svc/thing").unwrap();
        assert_eq!(from_app.class(), "proxy<fake-svc>");
        let from_kernel = n.bind(KERNEL_DOMAIN, "/svc/thing").unwrap();
        assert_eq!(from_kernel.class(), "real-svc");
    }

    #[test]
    fn load_certified_bytecode_into_kernel_native() {
        let (n, root) = booted();
        let image = n
            .repository
            .add_bytecode("csum", &workloads::checksum_loop(64, 1));
        let cert = root
            .certify(
                "csum",
                &image,
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        n.certsvc.install(cert, vec![]);
        let report = n
            .load("csum", &LoadOptions::kernel("/kernel/csum"))
            .unwrap();
        assert_eq!(report.protection, Protection::CertifiedNative);
        assert_eq!(report.domain, KERNEL_DOMAIN);
        assert!(report.load_cycles >= crate::certsvc::DEFAULT_SIG_CHECK_COST);
        // Runs natively (no guard steps).
        let obj = n.bind(KERNEL_DOMAIN, "/kernel/csum").unwrap();
        let r = obj
            .invoke(
                "component",
                "run",
                &[
                    Value::Bytes(bytes::Bytes::from(vec![1u8; 64])),
                    Value::Int(0),
                ],
            )
            .unwrap();
        assert_eq!(r, Value::Int(64));
    }

    #[test]
    fn uncertified_bytecode_falls_back_to_software_protection() {
        let (n, _) = booted();
        n.repository
            .add_bytecode("raw", &workloads::checksum_loop(64, 1));
        let report = n.load("raw", &LoadOptions::kernel("/kernel/raw")).unwrap();
        assert_eq!(report.protection, Protection::Sandboxed);

        n.repository
            .add_bytecode("nice", &workloads::checksum_loop_verified(64, 1));
        let report = n
            .load("nice", &LoadOptions::kernel("/kernel/nice"))
            .unwrap();
        assert_eq!(report.protection, Protection::Verified);
    }

    #[test]
    fn online_certification_mints_and_caches_certificates() {
        let (n, root) = booted();
        // The kernel hosts a compiler certifier empowered by the root.
        let online_authority =
            paramecium_cert::Authority::new("kernel-online", &mut StdRng::seed_from_u64(33), 512);
        let chain = vec![root
            .delegate(
                "kernel-online",
                online_authority.public(),
                vec![Right::RunKernel],
            )
            .unwrap()];
        n.enable_online_certification(
            Box::new(paramecium_cert::CompilerCertifier::new(online_authority)),
            chain,
        );

        // Verifiable code arrives uncertified: the kernel certifies it
        // on-line and runs it native.
        n.repository
            .add_bytecode("hot", &workloads::checksum_loop_verified(64, 1));
        let report = n.load("hot", &LoadOptions::kernel("/kernel/hot")).unwrap();
        assert_eq!(report.protection, Protection::CertifiedNative);
        let first_cost = report.load_cycles;

        // A second load of the same image hits the certificate cache.
        let report = n.load("hot", &LoadOptions::kernel("/kernel/hot2")).unwrap();
        assert_eq!(report.protection, Protection::CertifiedNative);
        assert!(report.load_cycles < first_cost);

        // Unverifiable code is declined on-line and falls back to SFI.
        n.repository
            .add_bytecode("raw", &workloads::checksum_loop(64, 1));
        let report = n.load("raw", &LoadOptions::kernel("/kernel/raw")).unwrap();
        assert_eq!(report.protection, Protection::Sandboxed);

        n.disable_online_certification();
        n.repository
            .add_bytecode("later", &workloads::checksum_loop_verified(128, 1));
        let report = n
            .load("later", &LoadOptions::kernel("/kernel/later"))
            .unwrap();
        assert_eq!(report.protection, Protection::Verified);
    }

    #[test]
    fn strict_kernel_load_requires_certificate() {
        let (n, _) = booted();
        n.repository
            .add_bytecode("raw", &workloads::checksum_loop(64, 1));
        let err = n
            .load("raw", &LoadOptions::kernel("/kernel/raw").strict())
            .unwrap_err();
        assert!(matches!(err, CoreError::Cert(_)));
    }

    #[test]
    fn uncertified_native_never_enters_kernel() {
        let (n, _) = booted();
        n.repository.add_native(
            "driver",
            "1.0",
            Arc::new(|| Ok(ObjectBuilder::new("driver").build())),
        );
        // Even with software protection allowed: native code cannot be
        // sandboxed.
        let err = n
            .load("driver", &LoadOptions::kernel("/kernel/driver"))
            .unwrap_err();
        assert!(matches!(err, CoreError::Cert(_)));
    }

    #[test]
    fn user_placement_needs_no_certificate() {
        let (n, _) = booted();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        n.repository
            .add_bytecode("raw", &workloads::checksum_loop(64, 1));
        let report = n
            .load("raw", &LoadOptions::user(app.id, "/app/raw"))
            .unwrap();
        assert_eq!(report.protection, Protection::Hardware);
        assert_eq!(report.domain, app.id);
        assert_eq!(app.loaded_paths(), vec!["/app/raw"]);
    }

    #[test]
    fn interpose_replaces_shared_binding() {
        let (n, _) = booted();
        let svc = ObjectBuilder::new("svc")
            .interface("svc", |i| {
                i.method("who", &[], TypeTag::Str, |_, _| {
                    Ok(Value::Str("real".into()))
                })
            })
            .build();
        n.register(KERNEL_DOMAIN, "/shared/svc", svc).unwrap();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();

        let target = n.bind(KERNEL_DOMAIN, "/shared/svc").unwrap();
        let agent = paramecium_obj::InterposerBuilder::new(target)
            .override_method("svc", "who", |_, _| Ok(Value::Str("agent".into())))
            .build();
        let old = n.interpose(KERNEL_DOMAIN, "/shared/svc", agent).unwrap();
        assert_eq!(old.class(), "svc");

        // Every domain now sees the agent.
        let from_app = n.bind(app.id, "/shared/svc").unwrap();
        assert_eq!(
            from_app.invoke("svc", "who", &[]).unwrap(),
            Value::Str("agent".into())
        );
    }

    #[test]
    fn destroy_domain_releases_resources() {
        let (n, _) = booted();
        let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
        n.mem
            .alloc(app.id, 4, paramecium_machine::mmu::Perms::RW)
            .unwrap();
        let frames_before = n.machine().lock().phys.allocated_frames();
        assert_eq!(frames_before, 4);
        n.destroy_domain(app.id).unwrap();
        assert_eq!(n.machine().lock().phys.allocated_frames(), 0);
        assert!(n.domain(app.id).is_none());
        assert!(n.destroy_domain(app.id).is_err());
        assert!(n.destroy_domain(KERNEL_DOMAIN).is_err());
    }

    #[test]
    fn poll_delivers_timer_interrupts() {
        let (n, _) = booted();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let h = hits.clone();
        n.events
            .register(
                paramecium_machine::trap::IRQ_VECTOR_BASE
                    + paramecium_machine::dev::timer::TIMER_IRQ,
                KERNEL_DOMAIN,
                Arc::new(move |_| {
                    h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }),
            )
            .unwrap();
        {
            let mut m = n.machine().lock();
            m.io_write("timer", paramecium_machine::dev::timer::regs::PERIOD, 100)
                .unwrap();
            m.io_write("timer", paramecium_machine::dev::timer::regs::CTRL, 1)
                .unwrap();
        }
        n.poll(10); // Arms.
        n.poll(250); // Fires at least twice.
        assert!(hits.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }
}
