//! The directory service: a hierarchical name space for object instances.
//!
//! "Each object has its own instance name and is registered in a
//! hierarchical name space together with its object handle. … The main
//! advantage of using a name space for object instances is its ability to
//! be reconfigured." (paper, section 2).
//!
//! Name spaces form a tree: a child inherits everything from its parent
//! but may carry *overrides* — local bindings consulted before the parent
//! — which is how an application controls exactly which component
//! implementations it imports. Interposing on a *shared* service instead
//! replaces the entry in the name space where it was registered, affecting
//! every future lookup.

use std::{collections::BTreeMap, sync::Arc};

use parking_lot::RwLock;

use paramecium_obj::ObjRef;

use crate::{domain::DomainId, CoreError, CoreResult};

/// One name-space binding.
#[derive(Clone)]
pub struct NsEntry {
    /// The object handle.
    pub obj: ObjRef,
    /// The protection domain the object lives in. Lookups from other
    /// domains import through a proxy.
    pub home: DomainId,
}

impl std::fmt::Debug for NsEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsEntry")
            .field("class", &self.obj.class())
            .field("home", &self.home)
            .finish()
    }
}

/// Lookup statistics (for the name-space experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NsStats {
    /// Lookups answered by a local entry or override.
    pub local_hits: u64,
    /// Lookups that walked to a parent.
    pub parent_walks: u64,
    /// Failed lookups.
    pub misses: u64,
}

/// A (possibly child) name space.
pub struct NameSpace {
    parent: Option<Arc<NameSpace>>,
    entries: RwLock<BTreeMap<String, NsEntry>>,
    stats: RwLock<NsStats>,
}

/// Checks and canonicalises a path: absolute, no empty or dot segments.
pub fn check_path(path: &str) -> CoreResult<&str> {
    if !path.starts_with('/') || path.len() < 2 {
        return Err(CoreError::Name(format!(
            "path `{path}` must be absolute and non-root"
        )));
    }
    if path.ends_with('/') {
        return Err(CoreError::Name(format!(
            "path `{path}` has a trailing slash"
        )));
    }
    for seg in path[1..].split('/') {
        if seg.is_empty() || seg == "." || seg == ".." {
            return Err(CoreError::Name(format!(
                "path `{path}` has segment `{seg}`"
            )));
        }
    }
    Ok(path)
}

impl NameSpace {
    /// Creates the root name space.
    pub fn root() -> Arc<Self> {
        Arc::new(NameSpace {
            parent: None,
            entries: RwLock::new(BTreeMap::new()),
            stats: RwLock::new(NsStats::default()),
        })
    }

    /// Creates a child name space inheriting from `parent`, seeded with
    /// `overrides` — the paper's mechanism for an object to "locally
    /// reconfigure its name space: that is, control the child objects it
    /// will import".
    pub fn child_of(
        parent: &Arc<NameSpace>,
        overrides: impl IntoIterator<Item = (String, NsEntry)>,
    ) -> Arc<Self> {
        Arc::new(NameSpace {
            parent: Some(parent.clone()),
            entries: RwLock::new(overrides.into_iter().collect()),
            stats: RwLock::new(NsStats::default()),
        })
    }

    /// Registers an object at `path` in *this* name space.
    ///
    /// Fails if the path is already bound here (use
    /// [`NameSpace::replace`] for interposition).
    pub fn register(&self, path: &str, entry: NsEntry) -> CoreResult<()> {
        check_path(path)?;
        let mut entries = self.entries.write();
        if entries.contains_key(path) {
            return Err(CoreError::Name(format!("`{path}` is already registered")));
        }
        entry.obj.set_instance_name(Some(path.to_owned()));
        entries.insert(path.to_owned(), entry);
        Ok(())
    }

    /// Replaces the binding at `path`, returning the previous entry. This
    /// is the interposition primitive: "replace the object handle in the
    /// name space. All further lookups … will result in a reference to the
    /// interposing agent."
    ///
    /// The replacement happens in the name space that actually holds the
    /// binding (possibly a parent), so it is visible to every inheritor.
    pub fn replace(&self, path: &str, entry: NsEntry) -> CoreResult<NsEntry> {
        check_path(path)?;
        let mut ns = self;
        loop {
            {
                let mut entries = ns.entries.write();
                if let Some(slot) = entries.get_mut(path) {
                    entry.obj.set_instance_name(Some(path.to_owned()));
                    return Ok(std::mem::replace(slot, entry));
                }
            }
            match &ns.parent {
                Some(p) => ns = p,
                None => return Err(CoreError::Name(format!("`{path}` is not registered"))),
            }
        }
    }

    /// Removes the binding at `path` from this name space (not parents).
    pub fn unregister(&self, path: &str) -> CoreResult<NsEntry> {
        check_path(path)?;
        let entry = self
            .entries
            .write()
            .remove(path)
            .ok_or_else(|| CoreError::Name(format!("`{path}` is not registered here")))?;
        entry.obj.set_instance_name(None);
        Ok(entry)
    }

    /// Looks up `path`, consulting local entries (overrides) first, then
    /// the parent chain.
    pub fn lookup(&self, path: &str) -> CoreResult<NsEntry> {
        check_path(path)?;
        let mut walked = false;
        let mut ns = self;
        loop {
            if let Some(e) = ns.entries.read().get(path) {
                let mut stats = self.stats.write();
                if walked {
                    stats.parent_walks += 1;
                } else {
                    stats.local_hits += 1;
                }
                return Ok(e.clone());
            }
            match &ns.parent {
                Some(p) => {
                    walked = true;
                    ns = p;
                }
                None => {
                    self.stats.write().misses += 1;
                    return Err(CoreError::Name(format!("`{path}` not found")));
                }
            }
        }
    }

    /// Lists all paths visible from this name space under `prefix`
    /// (child entries shadow parent entries with the same path).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut seen = BTreeMap::new();
        let mut chain = Vec::new();
        let mut ns = Some(self);
        while let Some(n) = ns {
            chain.push(n);
            ns = n.parent.as_deref();
        }
        // Parents first so children shadow.
        for n in chain.iter().rev() {
            for (path, entry) in n.entries.read().iter() {
                if path.starts_with(prefix) {
                    seen.insert(path.clone(), entry.home);
                }
            }
        }
        seen.into_keys().collect()
    }

    /// Lookup statistics for *this* name space.
    pub fn stats(&self) -> NsStats {
        *self.stats.read()
    }

    /// Number of entries bound directly in this name space.
    pub fn local_len(&self) -> usize {
        self.entries.read().len()
    }
}

impl std::fmt::Debug for NameSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameSpace")
            .field("local_entries", &self.local_len())
            .field("has_parent", &self.parent.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::KERNEL_DOMAIN;
    use paramecium_obj::ObjectBuilder;

    fn obj(class: &str) -> ObjRef {
        ObjectBuilder::new(class).build()
    }

    fn entry(class: &str) -> NsEntry {
        NsEntry {
            obj: obj(class),
            home: KERNEL_DOMAIN,
        }
    }

    #[test]
    fn register_lookup_roundtrip() {
        let ns = NameSpace::root();
        ns.register("/dev/nic", entry("nic")).unwrap();
        let e = ns.lookup("/dev/nic").unwrap();
        assert_eq!(e.obj.class(), "nic");
        assert_eq!(e.obj.instance_name().as_deref(), Some("/dev/nic"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let ns = NameSpace::root();
        ns.register("/x", entry("a")).unwrap();
        assert!(ns.register("/x", entry("b")).is_err());
    }

    #[test]
    fn path_validation() {
        let ns = NameSpace::root();
        for bad in ["", "/", "relative", "/a//b", "/a/", "/a/./b", "/a/../b"] {
            assert!(ns.register(bad, entry("x")).is_err(), "path {bad:?}");
        }
        assert!(ns.register("/a/b/c", entry("x")).is_ok());
    }

    #[test]
    fn unregister_removes_and_clears_name() {
        let ns = NameSpace::root();
        ns.register("/svc", entry("s")).unwrap();
        let e = ns.unregister("/svc").unwrap();
        assert_eq!(e.obj.instance_name(), None);
        assert!(ns.lookup("/svc").is_err());
        assert!(ns.unregister("/svc").is_err());
    }

    #[test]
    fn children_inherit_from_parent() {
        let root = NameSpace::root();
        root.register("/shared/network", entry("nic")).unwrap();
        let child = NameSpace::child_of(&root, []);
        assert_eq!(child.lookup("/shared/network").unwrap().obj.class(), "nic");
        let s = child.stats();
        assert_eq!(s.parent_walks, 1);
        assert_eq!(s.local_hits, 0);
    }

    #[test]
    fn overrides_shadow_parent() {
        let root = NameSpace::root();
        root.register("/lib/alloc", entry("default-alloc")).unwrap();
        let child = NameSpace::child_of(
            &root,
            [(
                "/lib/alloc".to_owned(),
                NsEntry {
                    obj: obj("debug-alloc"),
                    home: KERNEL_DOMAIN,
                },
            )],
        );
        assert_eq!(
            child.lookup("/lib/alloc").unwrap().obj.class(),
            "debug-alloc"
        );
        // The parent view is untouched.
        assert_eq!(
            root.lookup("/lib/alloc").unwrap().obj.class(),
            "default-alloc"
        );
    }

    #[test]
    fn replace_rebinds_in_owning_namespace() {
        let root = NameSpace::root();
        root.register("/shared/network", entry("nic")).unwrap();
        let child = NameSpace::child_of(&root, []);
        // Interpose from the child: the *root* binding is replaced, so
        // every other inheritor sees the agent.
        let old = child
            .replace(
                "/shared/network",
                NsEntry {
                    obj: obj("monitor"),
                    home: KERNEL_DOMAIN,
                },
            )
            .unwrap();
        assert_eq!(old.obj.class(), "nic");
        let sibling = NameSpace::child_of(&root, []);
        assert_eq!(
            sibling.lookup("/shared/network").unwrap().obj.class(),
            "monitor"
        );
    }

    #[test]
    fn replace_missing_fails() {
        let ns = NameSpace::root();
        assert!(ns.replace("/ghost", entry("x")).is_err());
    }

    #[test]
    fn list_merges_and_shadows() {
        let root = NameSpace::root();
        root.register("/a/one", entry("p1")).unwrap();
        root.register("/a/two", entry("p2")).unwrap();
        root.register("/b/three", entry("p3")).unwrap();
        let child = NameSpace::child_of(
            &root,
            [(
                "/a/one".to_owned(),
                NsEntry {
                    obj: obj("override"),
                    home: KERNEL_DOMAIN,
                },
            )],
        );
        child.register("/a/four", entry("c1")).unwrap();
        assert_eq!(child.list("/a"), vec!["/a/four", "/a/one", "/a/two"]);
        assert_eq!(
            child.list("/"),
            vec!["/a/four", "/a/one", "/a/two", "/b/three"]
        );
        assert_eq!(child.lookup("/a/one").unwrap().obj.class(), "override");
    }

    #[test]
    fn miss_statistics_count() {
        let ns = NameSpace::root();
        assert!(ns.lookup("/nope").is_err());
        assert_eq!(ns.stats().misses, 1);
    }

    #[test]
    fn deep_namespace_chain_resolves() {
        let root = NameSpace::root();
        root.register("/deep/svc", entry("svc")).unwrap();
        let mut ns = root.clone();
        for _ in 0..8 {
            ns = NameSpace::child_of(&ns, []);
        }
        assert_eq!(ns.lookup("/deep/svc").unwrap().obj.class(), "svc");
    }
}
