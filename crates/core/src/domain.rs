//! Protection domains.
//!
//! A protection domain *is* an MMU context plus a name-space view. The
//! nucleus's four services all use the domain as their unit of granularity.

use std::sync::Arc;

use parking_lot::RwLock;

use paramecium_machine::mmu::ContextId;

use crate::directory::NameSpace;

/// Identifier of a protection domain. Numerically equal to the MMU context
/// number backing the domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u16);

/// The kernel protection domain (MMU context 0).
pub const KERNEL_DOMAIN: DomainId = DomainId(0);

impl DomainId {
    /// The MMU context backing this domain.
    pub fn context(self) -> ContextId {
        ContextId(self.0)
    }

    /// True for the kernel domain.
    pub fn is_kernel(self) -> bool {
        self == KERNEL_DOMAIN
    }
}

impl From<ContextId> for DomainId {
    fn from(c: ContextId) -> Self {
        DomainId(c.0)
    }
}

/// A protection domain: context, name-space view, and bookkeeping.
pub struct Domain {
    /// Domain identifier (== MMU context).
    pub id: DomainId,
    /// Human-readable name, e.g. `"kernel"` or `"app:fft"`.
    pub name: String,
    /// The domain's view of the object name space (possibly with local
    /// overrides; inherited from the creating domain).
    pub namespace: Arc<NameSpace>,
    /// Instance paths of components loaded into this domain.
    pub loaded: RwLock<Vec<String>>,
}

impl Domain {
    /// Creates a domain record.
    pub fn new(id: DomainId, name: impl Into<String>, namespace: Arc<NameSpace>) -> Arc<Self> {
        Arc::new(Domain {
            id,
            name: name.into(),
            namespace,
            loaded: RwLock::new(Vec::new()),
        })
    }

    /// Records that a component instance was loaded here.
    pub fn note_loaded(&self, path: &str) {
        self.loaded.write().push(path.to_owned());
    }

    /// Instance paths loaded into this domain.
    pub fn loaded_paths(&self) -> Vec<String> {
        self.loaded.read().clone()
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_ids_map_to_contexts() {
        assert_eq!(DomainId(3).context(), ContextId(3));
        assert_eq!(DomainId::from(ContextId(7)), DomainId(7));
        assert!(KERNEL_DOMAIN.is_kernel());
        assert!(!DomainId(1).is_kernel());
    }

    #[test]
    fn loaded_paths_accumulate() {
        let d = Domain::new(DomainId(1), "app", NameSpace::root());
        d.note_loaded("/app/fft");
        d.note_loaded("/app/alloc");
        assert_eq!(d.loaded_paths(), vec!["/app/fft", "/app/alloc"]);
    }
}
