//! The memory management service.
//!
//! "The management of virtual and physical pages, and MMU contexts, is done
//! by the memory management service. Pages can be allocated exclusively or
//! shared among different protection domains. Individual virtual pages can
//! have fault call-backs associated with them. … The memory management
//! service also provides I/O space allocation." (paper, section 3).

use std::{collections::HashMap, sync::Arc};

use parking_lot::{Mutex, RwLock};

use paramecium_machine::{
    io::{IoRegionId, IoSharing},
    mmu::{Fault, Perms, PAGE_SIZE},
    phys::FrameId,
    Machine, MachineError,
};

use crate::{domain::DomainId, CoreError, CoreResult};

/// A per-page fault call-back.
pub type FaultHandler = Arc<dyn Fn(&Fault) + Send + Sync>;

/// Where user mappings start in each domain (below is reserved for the
/// component text the loader maps).
const USER_VADDR_BASE: u64 = 0x0010_0000;

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Pages allocated (exclusive + shared).
    pub pages_allocated: u64,
    /// Pages shared into additional domains.
    pub pages_shared: u64,
    /// Faults routed to a registered handler.
    pub faults_handled: u64,
    /// Faults with no handler.
    pub faults_unhandled: u64,
}

/// The memory service.
pub struct MemService {
    machine: Arc<Mutex<Machine>>,
    next_vaddr: Mutex<HashMap<u16, u64>>,
    /// Reference count per physical frame (frames may back several
    /// domains' pages).
    frame_refs: Mutex<HashMap<FrameId, usize>>,
    fault_handlers: RwLock<HashMap<(u16, u64), FaultHandler>>,
    stats: Mutex<MemStats>,
}

impl MemService {
    /// Creates the service over a machine.
    pub fn new(machine: Arc<Mutex<Machine>>) -> Self {
        MemService {
            machine,
            next_vaddr: Mutex::new(HashMap::new()),
            frame_refs: Mutex::new(HashMap::new()),
            fault_handlers: RwLock::new(HashMap::new()),
            stats: Mutex::new(MemStats::default()),
        }
    }

    /// The machine this service manages (shared with the nucleus).
    pub fn machine(&self) -> &Arc<Mutex<Machine>> {
        &self.machine
    }

    /// Reserves a contiguous virtual range in `domain` without mapping it.
    pub fn reserve_vaddr(&self, domain: DomainId, pages: usize) -> u64 {
        let mut next = self.next_vaddr.lock();
        let slot = next.entry(domain.0).or_insert(USER_VADDR_BASE);
        let base = *slot;
        *slot += (pages as u64) * PAGE_SIZE as u64;
        base
    }

    /// Allocates `pages` fresh (exclusive) pages in `domain` with `perms`.
    /// Returns the base virtual address.
    pub fn alloc(&self, domain: DomainId, pages: usize, perms: Perms) -> CoreResult<u64> {
        if pages == 0 {
            return Err(CoreError::Policy("zero-page allocation".into()));
        }
        let base = self.reserve_vaddr(domain, pages);
        let mut m = self.machine.lock();
        if !m.mmu.has_context(domain.context()) {
            return Err(CoreError::NoSuchDomain(domain.0));
        }
        let mut mapped = Vec::with_capacity(pages);
        for i in 0..pages {
            let frame = match m.phys.alloc_frame() {
                Ok(f) => f,
                Err(e) => {
                    // Roll back partial allocation.
                    for (va, f) in mapped {
                        let _ = m.mmu.unmap(domain.context(), va);
                        m.phys.free_frame(f);
                    }
                    return Err(e.into());
                }
            };
            let va = base + (i as u64) * PAGE_SIZE as u64;
            m.mmu.map(domain.context(), va, frame, perms)?;
            mapped.push((va, frame));
        }
        let mut refs = self.frame_refs.lock();
        for (_, f) in &mapped {
            refs.insert(*f, 1);
        }
        self.stats.lock().pages_allocated += pages as u64;
        Ok(base)
    }

    /// Maps the pages backing `[src_vaddr, src_vaddr + pages)` of
    /// `src_domain` into `dst_domain` with `perms` (shared memory).
    /// Returns the base address in the destination domain.
    pub fn share(
        &self,
        src_domain: DomainId,
        src_vaddr: u64,
        pages: usize,
        dst_domain: DomainId,
        perms: Perms,
    ) -> CoreResult<u64> {
        if pages == 0 {
            return Err(CoreError::Policy("zero-page share".into()));
        }
        let dst_base = self.reserve_vaddr(dst_domain, pages);
        let mut m = self.machine.lock();
        let mut frames = Vec::with_capacity(pages);
        for i in 0..pages {
            let va = src_vaddr + (i as u64) * PAGE_SIZE as u64;
            let entry = m
                .mmu
                .entry(src_domain.context(), va)
                .ok_or(MachineError::Fault(Fault {
                    ctx: src_domain.context(),
                    vaddr: va,
                    access: paramecium_machine::mmu::Access::Read,
                    kind: paramecium_machine::mmu::FaultKind::NotMapped,
                }))?;
            frames.push(entry.frame);
        }
        for (i, frame) in frames.iter().enumerate() {
            let va = dst_base + (i as u64) * PAGE_SIZE as u64;
            m.mmu.map(dst_domain.context(), va, *frame, perms)?;
        }
        let mut refs = self.frame_refs.lock();
        for f in &frames {
            *refs.entry(*f).or_insert(0) += 1;
        }
        self.stats.lock().pages_shared += pages as u64;
        Ok(dst_base)
    }

    /// Unmaps `pages` pages at `vaddr` in `domain`, freeing any frame
    /// whose last mapping this was.
    pub fn free(&self, domain: DomainId, vaddr: u64, pages: usize) -> CoreResult<()> {
        let mut m = self.machine.lock();
        let mut refs = self.frame_refs.lock();
        for i in 0..pages {
            let va = vaddr + (i as u64) * PAGE_SIZE as u64;
            if let Some(entry) = m.mmu.unmap(domain.context(), va)? {
                let count = refs.entry(entry.frame).or_insert(1);
                *count -= 1;
                if *count == 0 {
                    refs.remove(&entry.frame);
                    m.phys.free_frame(entry.frame);
                }
            }
            self.fault_handlers
                .write()
                .remove(&(domain.0, va / PAGE_SIZE as u64));
        }
        Ok(())
    }

    /// Associates a fault call-back with the page containing `vaddr` in
    /// `domain`. The page need not be mapped — fault-on-access pages are
    /// the cross-domain invocation mechanism.
    pub fn set_fault_handler(&self, domain: DomainId, vaddr: u64, handler: FaultHandler) {
        self.fault_handlers
            .write()
            .insert((domain.0, vaddr / PAGE_SIZE as u64), handler);
    }

    /// Removes a fault call-back. Returns true if one existed.
    pub fn clear_fault_handler(&self, domain: DomainId, vaddr: u64) -> bool {
        self.fault_handlers
            .write()
            .remove(&(domain.0, vaddr / PAGE_SIZE as u64))
            .is_some()
    }

    /// Routes a fault to its per-page handler. Returns true if a handler
    /// ran.
    pub fn handle_fault(&self, fault: &Fault) -> bool {
        let key = (fault.ctx.0, fault.vaddr / PAGE_SIZE as u64);
        let handler = self.fault_handlers.read().get(&key).cloned();
        match handler {
            Some(h) => {
                self.stats.lock().faults_handled += 1;
                h(fault);
                true
            }
            None => {
                self.stats.lock().faults_unhandled += 1;
                false
            }
        }
    }

    /// Tears down all memory of a domain: destroys its MMU context and
    /// frees every frame whose last mapping was there. Fault handlers for
    /// the domain are dropped.
    pub fn destroy_domain(&self, domain: DomainId) -> CoreResult<()> {
        let frames = {
            let mut m = self.machine.lock();
            m.mmu.destroy_context(domain.context())?
        };
        {
            let mut m = self.machine.lock();
            let mut refs = self.frame_refs.lock();
            for f in frames {
                let count = refs.entry(f).or_insert(1);
                *count -= 1;
                if *count == 0 {
                    refs.remove(&f);
                    m.phys.free_frame(f);
                }
            }
        }
        self.fault_handlers
            .write()
            .retain(|(d, _), _| *d != domain.0);
        Ok(())
    }

    /// Allocates an I/O region for a device.
    pub fn io_allocate(
        &self,
        device: &str,
        len: usize,
        sharing: IoSharing,
    ) -> CoreResult<IoRegionId> {
        Ok(self.machine.lock().io.allocate(device, len, sharing)?)
    }

    /// Claims an I/O region for a domain (maps device registers or buffers
    /// into its protection domain).
    pub fn io_claim(&self, domain: DomainId, region: IoRegionId) -> CoreResult<()> {
        Ok(self.machine.lock().io.claim(region, domain.context())?)
    }

    /// Releases an I/O claim.
    pub fn io_release(&self, domain: DomainId, region: IoRegionId) -> CoreResult<()> {
        Ok(self.machine.lock().io.release(region, domain.context())?)
    }

    /// True if `domain` holds a claim on `region` — drivers must check
    /// before touching registers.
    pub fn io_is_claimant(&self, domain: DomainId, region: IoRegionId) -> bool {
        self.machine.lock().io.is_claimant(region, domain.context())
    }

    /// Allocates `pages` *lazy* (demand-zero) pages in `domain`: no frames
    /// are consumed until a page is first touched, at which point its
    /// per-page fault call-back allocates and maps a zeroed frame.
    ///
    /// This is the paper's "individual virtual pages can have fault
    /// call-backs associated with them" put to its classic use.
    pub fn alloc_lazy(
        self: &Arc<Self>,
        domain: DomainId,
        pages: usize,
        perms: Perms,
    ) -> CoreResult<u64> {
        if pages == 0 {
            return Err(CoreError::Policy("zero-page allocation".into()));
        }
        if !self.machine.lock().mmu.has_context(domain.context()) {
            return Err(CoreError::NoSuchDomain(domain.0));
        }
        let base = self.reserve_vaddr(domain, pages);
        for i in 0..pages {
            let va = base + (i as u64) * PAGE_SIZE as u64;
            let svc = self.clone();
            self.set_fault_handler(
                domain,
                va,
                Arc::new(move |fault: &Fault| {
                    let mut m = svc.machine.lock();
                    let Ok(frame) = m.phys.alloc_frame() else {
                        // Out of memory at fault time: leave the page
                        // unmapped; the retry loop will surface the fault.
                        return;
                    };
                    let page_va = fault.vaddr - fault.vaddr % PAGE_SIZE as u64;
                    if m.mmu.map(fault.ctx, page_va, frame, perms).is_err() {
                        m.phys.free_frame(frame);
                        return;
                    }
                    drop(m);
                    svc.frame_refs.lock().insert(frame, 1);
                    svc.stats.lock().pages_allocated += 1;
                    // The page is now resident; the handler stays
                    // registered but will not fire again for it.
                }),
            );
        }
        Ok(base)
    }

    /// Reads virtual memory of a domain. A fault with a registered
    /// per-page handler (demand paging, copy-on-access schemes) is
    /// resolved and the access retried.
    pub fn read(&self, domain: DomainId, vaddr: u64, buf: &mut [u8]) -> CoreResult<()> {
        self.access_with_retry(|m| m.read_virt(domain.context(), vaddr, buf))
    }

    /// Writes virtual memory of a domain, resolving handled faults like
    /// [`MemService::read`].
    pub fn write(&self, domain: DomainId, vaddr: u64, buf: &[u8]) -> CoreResult<()> {
        self.access_with_retry(|m| m.write_virt(domain.context(), vaddr, buf))
    }

    /// Runs a virtual-memory access, routing faults to per-page handlers
    /// and retrying. Bounded so an unresolvable fault cannot loop.
    fn access_with_retry(
        &self,
        mut access: impl FnMut(&mut Machine) -> Result<(), MachineError>,
    ) -> CoreResult<()> {
        // Worst case one fault per touched page; 1024 covers any sane
        // access span and still terminates fast on handler no-ops.
        for _ in 0..1024 {
            let result = access(&mut self.machine.lock());
            match result {
                Ok(()) => return Ok(()),
                Err(MachineError::Fault(fault)) => {
                    let before = self.machine.lock().mmu.entry(fault.ctx, fault.vaddr);
                    if !self.handle_fault(&fault) {
                        return Err(MachineError::Fault(fault).into());
                    }
                    let after = self.machine.lock().mmu.entry(fault.ctx, fault.vaddr);
                    if before == after {
                        // The handler ran but did not resolve the fault
                        // (e.g. a pure-notification handler): surface it.
                        return Err(MachineError::Fault(fault).into());
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(CoreError::Policy("fault retry budget exhausted".into()))
    }

    /// Service statistics.
    pub fn stats(&self) -> MemStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::KERNEL_DOMAIN;
    use paramecium_machine::mmu::Access;

    fn svc() -> (MemService, DomainId) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        (MemService::new(machine), user)
    }

    #[test]
    fn alloc_maps_usable_pages() {
        let (svc, user) = svc();
        let base = svc.alloc(user, 2, Perms::RW).unwrap();
        svc.write(user, base + 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        svc.read(user, base + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(svc.stats().pages_allocated, 2);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (svc, user) = svc();
        let a = svc.alloc(user, 1, Perms::RW).unwrap();
        let b = svc.alloc(user, 3, Perms::RW).unwrap();
        let c = svc.alloc(user, 1, Perms::RW).unwrap();
        assert!(a + PAGE_SIZE as u64 <= b);
        assert!(b + 3 * PAGE_SIZE as u64 <= c);
    }

    #[test]
    fn alloc_into_missing_domain_fails() {
        let (svc, _) = svc();
        assert!(matches!(
            svc.alloc(DomainId(99), 1, Perms::RW),
            Err(CoreError::NoSuchDomain(99))
        ));
    }

    #[test]
    fn shared_pages_see_each_others_writes() {
        let (svc, user) = svc();
        let kbase = svc.alloc(KERNEL_DOMAIN, 1, Perms::RW).unwrap();
        let ubase = svc.share(KERNEL_DOMAIN, kbase, 1, user, Perms::R).unwrap();
        svc.write(KERNEL_DOMAIN, kbase + 10, b"shared!").unwrap();
        let mut buf = [0u8; 7];
        svc.read(user, ubase + 10, &mut buf).unwrap();
        assert_eq!(&buf, b"shared!");
        assert_eq!(svc.stats().pages_shared, 1);
    }

    #[test]
    fn share_respects_destination_perms() {
        let (svc, user) = svc();
        let kbase = svc.alloc(KERNEL_DOMAIN, 1, Perms::RW).unwrap();
        let ubase = svc.share(KERNEL_DOMAIN, kbase, 1, user, Perms::R).unwrap();
        // Read-only in the user domain: writes fault.
        assert!(svc.write(user, ubase, b"x").is_err());
    }

    #[test]
    fn free_releases_frames_only_at_last_unmap() {
        let (svc, user) = svc();
        let machine = svc.machine().clone();
        let kbase = svc.alloc(KERNEL_DOMAIN, 1, Perms::RW).unwrap();
        let ubase = svc.share(KERNEL_DOMAIN, kbase, 1, user, Perms::RW).unwrap();
        let frames_before = machine.lock().phys.allocated_frames();
        svc.free(user, ubase, 1).unwrap();
        // Still mapped in the kernel: frame survives.
        assert_eq!(machine.lock().phys.allocated_frames(), frames_before);
        svc.free(KERNEL_DOMAIN, kbase, 1).unwrap();
        assert_eq!(machine.lock().phys.allocated_frames(), frames_before - 1);
    }

    #[test]
    fn fault_handlers_route_by_page() {
        let (svc, user) = svc();
        let hit = Arc::new(Mutex::new(None));
        let h = hit.clone();
        let vaddr = 0x40_0000u64;
        svc.set_fault_handler(
            user,
            vaddr,
            Arc::new(move |f: &Fault| {
                *h.lock() = Some(f.vaddr);
            }),
        );
        let fault = Fault {
            ctx: user.context(),
            vaddr: vaddr + 123, // Same page.
            access: Access::Read,
            kind: paramecium_machine::mmu::FaultKind::NotMapped,
        };
        assert!(svc.handle_fault(&fault));
        assert_eq!(*hit.lock(), Some(vaddr + 123));
        // A different page has no handler.
        let other = Fault {
            vaddr: vaddr + PAGE_SIZE as u64,
            ..fault
        };
        assert!(!svc.handle_fault(&other));
        let s = svc.stats();
        assert_eq!((s.faults_handled, s.faults_unhandled), (1, 1));
    }

    #[test]
    fn clear_fault_handler_works() {
        let (svc, user) = svc();
        svc.set_fault_handler(user, 0x1000, Arc::new(|_| {}));
        assert!(svc.clear_fault_handler(user, 0x1000));
        assert!(!svc.clear_fault_handler(user, 0x1000));
    }

    #[test]
    fn io_claims_enforce_exclusivity() {
        let (svc, user) = svc();
        let regs = svc.io_allocate("nic", 64, IoSharing::Exclusive).unwrap();
        let bufs = svc.io_allocate("nic", 8192, IoSharing::Shared).unwrap();
        svc.io_claim(user, regs).unwrap();
        assert!(svc.io_claim(KERNEL_DOMAIN, regs).is_err());
        svc.io_claim(KERNEL_DOMAIN, bufs).unwrap();
        svc.io_claim(user, bufs).unwrap();
        assert!(svc.io_is_claimant(user, regs));
        svc.io_release(user, regs).unwrap();
        assert!(!svc.io_is_claimant(user, regs));
        svc.io_claim(KERNEL_DOMAIN, regs).unwrap();
    }

    #[test]
    fn lazy_pages_materialise_on_first_touch() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let svc = Arc::new(MemService::new(machine.clone()));
        let base = svc.alloc_lazy(user, 4, Perms::RW).unwrap();
        // Nothing resident yet.
        assert_eq!(machine.lock().phys.allocated_frames(), 0);
        // Touch page 2: exactly one frame appears, zeroed, then usable.
        svc.write(user, base + 2 * PAGE_SIZE as u64 + 100, b"lazy!")
            .unwrap();
        assert_eq!(machine.lock().phys.allocated_frames(), 1);
        let mut buf = [0u8; 5];
        svc.read(user, base + 2 * PAGE_SIZE as u64 + 100, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"lazy!");
        // A read touching two further pages faults them both in.
        let mut big = vec![0u8; PAGE_SIZE + 10];
        svc.read(user, base, &mut big).unwrap();
        assert_eq!(machine.lock().phys.allocated_frames(), 3);
        assert!(
            big.iter().all(|&b| b == 0),
            "demand-zero pages read as zero"
        );
        assert_eq!(svc.stats().faults_handled, 3);
    }

    #[test]
    fn lazy_pages_respect_permissions() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let svc = Arc::new(MemService::new(machine));
        let base = svc.alloc_lazy(user, 1, Perms::R).unwrap();
        // First touch materialises the page read-only…
        let mut buf = [0u8; 4];
        svc.read(user, base, &mut buf).unwrap();
        // …so writes still fault, and the handler cannot fix a protection
        // fault (the page is already mapped): the error surfaces.
        assert!(svc.write(user, base, b"nope").is_err());
    }

    #[test]
    fn unhandled_fault_still_surfaces() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let svc = Arc::new(MemService::new(machine));
        let mut buf = [0u8; 4];
        assert!(matches!(
            svc.read(user, 0xDEAD_0000, &mut buf),
            Err(CoreError::Machine(MachineError::Fault(_)))
        ));
    }

    #[test]
    fn notification_only_handler_does_not_spin() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let svc = Arc::new(MemService::new(machine));
        let hits = Arc::new(Mutex::new(0u32));
        let h = hits.clone();
        svc.set_fault_handler(
            user,
            0x7000,
            Arc::new(move |_| {
                *h.lock() += 1;
            }),
        );
        let mut buf = [0u8; 4];
        assert!(svc.read(user, 0x7000, &mut buf).is_err());
        assert_eq!(*hits.lock(), 1, "handler ran once, no retry loop");
    }

    #[test]
    fn alloc_rolls_back_on_exhaustion() {
        let machine = Arc::new(Mutex::new(Machine::with_config(
            paramecium_machine::CostModel::default(),
            4,
            8,
        )));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let svc = MemService::new(machine.clone());
        // Ask for more pages than exist: must fail and free everything.
        assert!(svc.alloc(user, 8, Perms::RW).is_err());
        assert_eq!(machine.lock().phys.allocated_frames(), 0);
        // A smaller allocation then succeeds.
        assert!(svc.alloc(user, 2, Perms::RW).is_ok());
    }
}
