//! Cross-domain invocation through proxies.
//!
//! "Cross-domain invocations are implemented using proxies. Importing an
//! object from another protection domain, by means of the directory
//! service, causes a proxy to appear. This proxy provides exactly the same
//! set of interfaces as the original object, but each interface entry will
//! cause a page fault when referenced. Control is then transferred to a per
//! page fault handler which will map in arguments into the object's
//! protection domain, switch context, and invoke the actual method. Return
//! values are handled similarly." (paper, section 3).
//!
//! The proxy here does exactly that dance against the simulated machine:
//! each proxy owns an intentionally unmapped page in the caller's domain
//! with a per-page fault handler registered in the memory service; every
//! invocation touches that page, takes the real MMU fault, delivers it
//! through the event service (trap costs), marshals arguments (copy costs,
//! with object handles translated into nested proxies), switches context,
//! invokes the target, and marshals the result back.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use parking_lot::Mutex;

use paramecium_machine::{mmu::Access, trap::Trap, Machine, MachineError};
use paramecium_obj::{
    interface::{CallCache, Interface},
    value::ArgFrame,
    ObjError, ObjRef, ObjectBuilder, Value,
};

use crate::{domain::DomainId, events::EventService, memsvc::MemService};

/// Counters for cross-domain traffic.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Cross-domain invocations performed.
    pub crossings: AtomicU64,
    /// Argument + result bytes marshalled.
    pub bytes_marshalled: AtomicU64,
    /// Nested proxies created for handle arguments/results.
    pub nested_proxies: AtomicU64,
    /// Arguments transferred by page *mapping* rather than copying.
    pub args_mapped: AtomicU64,
    /// Byte threshold at or above which a byte-string argument is mapped
    /// instead of copied; 0 disables mapping (always copy). The paper's
    /// fault handler "will map in arguments into the object's protection
    /// domain" — this knob lets experiments compare both transports.
    pub map_threshold: AtomicU64,
}

impl ProxyStats {
    /// Total crossings so far.
    pub fn crossings(&self) -> u64 {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Total marshalled bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes_marshalled.load(Ordering::Relaxed)
    }
}

/// Everything a proxy needs to perform a crossing.
pub struct ProxyCtx {
    /// The machine (for faults, context switches and cycle accounting).
    pub machine: Arc<Mutex<Machine>>,
    /// The event service traps are delivered through.
    pub events: Arc<EventService>,
    /// The memory service holding the per-page fault handlers.
    pub mem: Arc<MemService>,
    /// Shared traffic counters.
    pub stats: Arc<ProxyStats>,
}

impl Clone for ProxyCtx {
    fn clone(&self) -> Self {
        ProxyCtx {
            machine: self.machine.clone(),
            events: self.events.clone(),
            mem: self.mem.clone(),
            stats: self.stats.clone(),
        }
    }
}

/// Builds a proxy in `caller` domain standing for `target` living in
/// `target_domain`.
///
/// The proxy exports exactly the same interfaces as the target (including
/// a forwarding fallback for methods added later).
pub fn make_proxy(
    ctx: &ProxyCtx,
    target: ObjRef,
    target_domain: DomainId,
    caller: DomainId,
) -> ObjRef {
    // The fault page: reserved, never mapped, with a per-page handler.
    let fault_vaddr = ctx.mem.reserve_vaddr(caller, 1);
    {
        let stats = ctx.stats.clone();
        ctx.mem.set_fault_handler(
            caller,
            fault_vaddr,
            Arc::new(move |_fault| {
                stats.crossings.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }

    let shared = Arc::new(CrossCall {
        ctx: ctx.clone(),
        target: target.clone(),
        target_domain,
        caller,
        fault_vaddr,
    });

    // Each proxy interface entry owns a `CallCache`: the target's `Method`
    // handle is resolved once and revalidated against the target's export
    // generation on every crossing, so repeated crossings skip the
    // interface- and method-table lookups. A re-export on the target makes
    // the cached handle miss cleanly and re-resolve — it can never call
    // the superseded implementation.
    let mut builder =
        ObjectBuilder::new(format!("proxy<{}>", target.class())).state(shared.clone());
    for desc in target.descriptors() {
        let mut iface = Interface::new(desc.interface.clone());
        for sig in desc.methods {
            let cc = shared.clone();
            let iface_name = desc.interface.clone();
            let method = sig.name.clone();
            let cache = CallCache::new();
            iface.insert_method(
                sig,
                Arc::new(move |_this: &ObjRef, args: &[Value]| {
                    cc.invoke(&iface_name, &method, args, &cache)
                }),
            );
        }
        let cc = shared.clone();
        let iface_name = desc.interface.clone();
        let fwd_cache = CallCache::new();
        iface.set_fallback(Arc::new(move |_this, method, args| {
            cc.invoke(&iface_name, method, args, &fwd_cache)
        }));
        builder = builder.raw_interface(iface);
    }
    builder.build()
}

/// The captured state of one proxy.
struct CrossCall {
    ctx: ProxyCtx,
    target: ObjRef,
    target_domain: DomainId,
    caller: DomainId,
    fault_vaddr: u64,
}

impl CrossCall {
    fn map_threshold(&self) -> usize {
        self.ctx.stats.map_threshold.load(Ordering::Relaxed) as usize
    }

    /// Performs one cross-domain invocation.
    fn invoke(
        &self,
        interface: &str,
        method: &str,
        args: &[Value],
        cache: &CallCache,
    ) -> Result<Value, ObjError> {
        // 1. Reference the fault page: a genuine MMU fault in the caller's
        //    context.
        let fault = {
            let mut m = self.ctx.machine.lock();
            // The caller runs in its own context when it touches the proxy.
            let _ = m.switch_context(self.caller.context());
            match m.translate(self.caller.context(), self.fault_vaddr, Access::Exec) {
                Err(MachineError::Fault(f)) => f,
                Err(e) => return Err(ObjError::failed(format!("proxy fault setup: {e}"))),
                Ok(_) => {
                    return Err(ObjError::failed(
                        "proxy fault page unexpectedly mapped".to_owned(),
                    ))
                }
            }
        };

        // 2. Deliver the trap: event service charges trap costs and runs
        //    the nucleus's page-fault call-back, which routes to our
        //    per-page handler.
        self.ctx
            .events
            .deliver(&self.ctx.machine, &Trap::page_fault(fault));

        // 3. Map in (marshal) the arguments and switch to the target's
        //    context. The translated frame lives in an `ArgFrame`: small
        //    flat frames stay entirely on the stack instead of paying a
        //    `Vec` allocation per crossing.
        let mut bytes = 0usize;
        let mut sent = ArgFrame::with_capacity(args.len());
        for a in args {
            let (v, n) = self.translate_value(a, self.caller, self.target_domain)?;
            bytes += n;
            sent.push(v);
        }
        {
            let mut m = self.ctx.machine.lock();
            let cost = m.cost.copy_cost(bytes);
            m.charge(cost);
            m.switch_context(self.target_domain.context())
                .map_err(|e| ObjError::failed(format!("context switch: {e}")))?;
        }

        // 4. Invoke the actual method in the target's domain, through the
        //    proxy entry's pinned method handle when it is still current.
        let result = cache.invoke(
            None,
            || Ok(self.target.clone()),
            interface,
            method,
            sent.as_slice(),
        );

        // 5. Marshal the result back and return to the caller's context.
        let back = match result {
            Ok(v) => {
                let (v, n) = self.translate_value(&v, self.target_domain, self.caller)?;
                bytes += n;
                Ok(v)
            }
            Err(e) => Err(e),
        };
        {
            let mut m = self.ctx.machine.lock();
            let ret_bytes = if back.is_ok() { bytes } else { 0 };
            let cost = m.cost.copy_cost(ret_bytes);
            m.charge(cost);
            let _ = m.switch_context(self.caller.context());
        }
        self.ctx
            .stats
            .bytes_marshalled
            .fetch_add(bytes as u64, Ordering::Relaxed);
        back
    }

    /// Marshals one value across the boundary: flat values are encoded and
    /// decoded (a genuine copy), handles become nested proxies pointing
    /// back at `from`.
    fn translate_value(
        &self,
        v: &Value,
        from: DomainId,
        to: DomainId,
    ) -> Result<(Value, usize), ObjError> {
        match v {
            Value::Handle(h) => {
                self.ctx
                    .stats
                    .nested_proxies
                    .fetch_add(1, Ordering::Relaxed);
                let proxy = make_proxy(&self.ctx, h.clone(), from, to);
                Ok((Value::Handle(proxy), v.marshalled_size()))
            }
            Value::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                let mut bytes = 5; // List framing.
                for item in items {
                    let (tv, n) = self.translate_value(item, from, to)?;
                    bytes += n;
                    out.push(tv);
                }
                Ok((Value::List(out), bytes))
            }
            Value::Bytes(b) if self.map_threshold() > 0 && b.len() >= self.map_threshold() => {
                // Large payload: map the backing pages instead of copying.
                // The page-table writes are charged here; the byte count
                // recorded is 0 because no bytes move.
                let pages = b.len().div_ceil(paramecium_machine::PAGE_SIZE) as u64;
                let mut m = self.ctx.machine.lock();
                let cost = pages * m.cost.page_map;
                m.charge(cost);
                drop(m);
                self.ctx.stats.args_mapped.fetch_add(1, Ordering::Relaxed);
                Ok((Value::Bytes(b.clone()), 0))
            }
            flat => {
                let mut buf = Vec::with_capacity(flat.marshalled_size());
                flat.encode(&mut buf)?;
                let mut pos = 0;
                let copied = Value::decode(&buf, &mut pos)?;
                Ok((copied, buf.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        domain::{DomainId, KERNEL_DOMAIN},
        events::EventService,
        memsvc::MemService,
    };
    use paramecium_machine::trap::TrapKind;
    use paramecium_obj::{ObjectBuilder, TypeTag};

    /// Builds a two-domain world with the page-fault wiring the nucleus
    /// normally installs.
    fn world() -> (ProxyCtx, DomainId) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let user = DomainId::from(machine.lock().mmu.create_context());
        let events = Arc::new(EventService::new());
        let mem = Arc::new(MemService::new(machine.clone()));
        let mem_for_faults = mem.clone();
        events
            .register(
                TrapKind::PageFault.vector(),
                KERNEL_DOMAIN,
                Arc::new(move |trap: &Trap| {
                    if let Some(fault) = &trap.fault {
                        mem_for_faults.handle_fault(fault);
                    }
                }),
            )
            .unwrap();
        (
            ProxyCtx {
                machine,
                events,
                mem,
                stats: Arc::new(ProxyStats::default()),
            },
            user,
        )
    }

    fn adder() -> ObjRef {
        ObjectBuilder::new("adder")
            .state(0i64)
            .interface("math", |i| {
                i.method(
                    "add",
                    &[TypeTag::Int, TypeTag::Int],
                    TypeTag::Int,
                    |_, args| Ok(Value::Int(args[0].as_int()? + args[1].as_int()?)),
                )
                .method("acc", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let v = args[0].as_int()?;
                    this.with_state(|s: &mut i64| {
                        *s += v;
                        Ok(Value::Int(*s))
                    })
                })
            })
            .build()
    }

    #[test]
    fn proxy_invokes_target_transparently() {
        let (ctx, user) = world();
        let target = adder();
        let proxy = make_proxy(&ctx, target.clone(), KERNEL_DOMAIN, user);
        assert_eq!(proxy.class(), "proxy<adder>");
        let r = proxy
            .invoke("math", "add", &[Value::Int(2), Value::Int(40)])
            .unwrap();
        assert_eq!(r, Value::Int(42));
        assert_eq!(ctx.stats.crossings(), 1);
        assert!(ctx.stats.bytes() > 0);
    }

    #[test]
    fn proxy_state_lives_in_target() {
        let (ctx, user) = world();
        let target = adder();
        let proxy = make_proxy(&ctx, target.clone(), KERNEL_DOMAIN, user);
        proxy.invoke("math", "acc", &[Value::Int(10)]).unwrap();
        proxy.invoke("math", "acc", &[Value::Int(5)]).unwrap();
        // Direct call sees the accumulated state.
        assert_eq!(
            target.invoke("math", "acc", &[Value::Int(0)]).unwrap(),
            Value::Int(15)
        );
    }

    #[test]
    fn crossing_charges_trap_and_switch_costs() {
        let (ctx, user) = world();
        let proxy = make_proxy(&ctx, adder(), KERNEL_DOMAIN, user);
        let before = ctx.machine.lock().now();
        proxy
            .invoke("math", "add", &[Value::Int(1), Value::Int(1)])
            .unwrap();
        let elapsed = ctx.machine.lock().now() - before;
        let floor = {
            let m = ctx.machine.lock();
            // At minimum: trap enter+exit and two context switches.
            m.cost.trap_enter + m.cost.trap_exit + 2 * m.cost.context_switch
        };
        assert!(elapsed >= floor, "elapsed {elapsed} < floor {floor}");
    }

    #[test]
    fn larger_arguments_cost_more() {
        let (ctx, user) = world();
        let echo = ObjectBuilder::new("echo")
            .interface("echo", |i| {
                i.method("echo", &[TypeTag::Bytes], TypeTag::Bytes, |_, args| {
                    Ok(args[0].clone())
                })
            })
            .build();
        let proxy = make_proxy(&ctx, echo, KERNEL_DOMAIN, user);
        let small_cost = {
            let before = ctx.machine.lock().now();
            proxy
                .invoke(
                    "echo",
                    "echo",
                    &[Value::Bytes(bytes::Bytes::from(vec![0u8; 16]))],
                )
                .unwrap();
            ctx.machine.lock().now() - before
        };
        let big_cost = {
            let before = ctx.machine.lock().now();
            proxy
                .invoke(
                    "echo",
                    "echo",
                    &[Value::Bytes(bytes::Bytes::from(vec![0u8; 4096]))],
                )
                .unwrap();
            ctx.machine.lock().now() - before
        };
        assert!(
            big_cost > small_cost,
            "big {big_cost} <= small {small_cost}"
        );
    }

    #[test]
    fn large_args_can_be_mapped_instead_of_copied() {
        let (ctx, user) = world();
        let echo = ObjectBuilder::new("echo")
            .interface("echo", |i| {
                i.method("echo", &[TypeTag::Bytes], TypeTag::Bytes, |_, args| {
                    Ok(args[0].clone())
                })
            })
            .build();
        let proxy = make_proxy(&ctx, echo, KERNEL_DOMAIN, user);
        let big = Value::Bytes(bytes::Bytes::from(vec![7u8; 16 * 4096]));

        // Copy transport.
        let t0 = ctx.machine.lock().now();
        proxy
            .invoke("echo", "echo", std::slice::from_ref(&big))
            .unwrap();
        let copy_cost = ctx.machine.lock().now() - t0;

        // Map transport for payloads ≥ one page.
        ctx.stats.map_threshold.store(4096, Ordering::Relaxed);
        let t0 = ctx.machine.lock().now();
        let out = proxy
            .invoke("echo", "echo", std::slice::from_ref(&big))
            .unwrap();
        let map_cost = ctx.machine.lock().now() - t0;
        assert_eq!(out, big, "mapping is transparent to the callee");
        assert_eq!(ctx.stats.args_mapped.load(Ordering::Relaxed), 2); // Arg + result.
        assert!(
            map_cost < copy_cost,
            "mapping 64 KiB ({map_cost}) should beat copying it ({copy_cost})"
        );

        // Small args still copy even with mapping enabled.
        let before = ctx.stats.args_mapped.load(Ordering::Relaxed);
        proxy
            .invoke(
                "echo",
                "echo",
                &[Value::Bytes(bytes::Bytes::from_static(b"tiny"))],
            )
            .unwrap();
        assert_eq!(ctx.stats.args_mapped.load(Ordering::Relaxed), before);
    }

    #[test]
    fn handle_arguments_become_nested_proxies() {
        let (ctx, user) = world();
        // A kernel service that calls back into whatever handle you give it.
        let invoker = ObjectBuilder::new("invoker")
            .interface("run", |i| {
                i.method("call", &[TypeTag::Handle], TypeTag::Int, |_, args| {
                    let h = args[0].as_handle()?;
                    h.invoke("math", "add", &[Value::Int(20), Value::Int(22)])
                })
            })
            .build();
        let proxy = make_proxy(&ctx, invoker, KERNEL_DOMAIN, user);
        // The user passes a handle to its own (user-domain) object.
        let user_obj = adder();
        let r = proxy
            .invoke("run", "call", &[Value::Handle(user_obj)])
            .unwrap();
        assert_eq!(r, Value::Int(42));
        // Outer call + nested callback = 2 crossings, 1 nested proxy.
        assert_eq!(ctx.stats.crossings(), 2);
        assert_eq!(ctx.stats.nested_proxies.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn errors_propagate_across_domains() {
        let (ctx, user) = world();
        let proxy = make_proxy(&ctx, adder(), KERNEL_DOMAIN, user);
        assert!(matches!(
            proxy.invoke("math", "nope", &[]),
            Err(ObjError::NoSuchMethod { .. })
        ));
        assert!(matches!(
            proxy.invoke("nope", "add", &[]),
            Err(ObjError::NoSuchInterface { .. })
        ));
        // Type errors are caught by the proxy's copied signatures before
        // any crossing happens.
        let before = ctx.stats.crossings();
        assert!(proxy
            .invoke("math", "add", &[Value::Str("x".into()), Value::Int(1)])
            .is_err());
        assert_eq!(ctx.stats.crossings(), before);
    }

    #[test]
    fn caller_context_is_restored_after_call() {
        let (ctx, user) = world();
        let proxy = make_proxy(&ctx, adder(), KERNEL_DOMAIN, user);
        proxy
            .invoke("math", "add", &[Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(ctx.machine.lock().mmu.current_context(), user.context());
    }

    #[test]
    fn page_fault_events_are_visible_in_event_stats() {
        let (ctx, user) = world();
        let proxy = make_proxy(&ctx, adder(), KERNEL_DOMAIN, user);
        for _ in 0..3 {
            proxy
                .invoke("math", "add", &[Value::Int(1), Value::Int(2)])
                .unwrap();
        }
        let s = ctx.events.stats(TrapKind::PageFault.vector());
        assert_eq!(s.delivered, 3);
    }
}
