//! The certification service.
//!
//! "Objects can be associated with a certificate that is validated by the
//! certification service before mapping it into a protection domain. The
//! certification service uses a message digest function, public key
//! cryptography, and a trusted certification agent to validate
//! credentials." (paper, section 3).
//!
//! Validation performs real SHA-256 + RSA work (from
//! `paramecium-crypto`); simulated time is charged per signature check so
//! the load-time cost is visible on the same cycle axis as everything
//! else.

use std::sync::Arc;

use parking_lot::Mutex;

use paramecium_cert::{
    certificate::{Certificate, DelegationCert, Right},
    store::{CertStore, StoreStats},
};
use paramecium_machine::{cost::Cycles, Machine};

use crate::CoreResult;

/// Default cost of one RSA signature verification, in simulated cycles.
/// (A 512–1024-bit modular exponentiation with e = 65537 on early-90s
/// hardware was on the order of a millisecond — ~10⁵ cycles.)
pub const DEFAULT_SIG_CHECK_COST: Cycles = 100_000;

/// Cost of digesting one byte of component image (SHA-256 is a few cycles
/// per byte on simple hardware).
pub const DIGEST_COST_PER_BYTE_NUM: Cycles = 3;

/// The certification service.
pub struct CertService {
    machine: Arc<Mutex<Machine>>,
    store: Mutex<CertStore>,
    /// Simulated cycles charged per signature verification.
    pub sig_check_cost: Cycles,
}

impl CertService {
    /// Creates the service trusting `store`'s root key.
    pub fn new(machine: Arc<Mutex<Machine>>, store: CertStore) -> Self {
        CertService {
            machine,
            store: Mutex::new(store),
            sig_check_cost: DEFAULT_SIG_CHECK_COST,
        }
    }

    /// Installs a certificate and its delegation chain.
    pub fn install(&self, cert: Certificate, chain: Vec<DelegationCert>) {
        self.store.lock().install(cert, chain);
    }

    /// Enables or disables the validation cache (ablation knob).
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.store.lock().set_cache_enabled(enabled);
    }

    /// Validates `image` for `right`, charging digest and signature costs
    /// to simulated time. This is the load-time check.
    pub fn validate_for(&self, image: &[u8], right: Right) -> CoreResult<Certificate> {
        let before = self.store.lock().stats();
        let result = self.store.lock().validate_for(image, right);
        let after = self.store.lock().stats();
        let mut m = self.machine.lock();
        // Digesting the image happens on every validation (cached or not —
        // the digest is how we look the certificate up).
        m.charge((image.len() as Cycles * DIGEST_COST_PER_BYTE_NUM).max(1));
        let new_checks = after.signature_checks - before.signature_checks;
        m.charge(new_checks * self.sig_check_cost);
        Ok(result?)
    }

    /// True if the store has a certificate for this image (no validation,
    /// no cost).
    pub fn is_certified(&self, image: &[u8]) -> bool {
        self.store.lock().lookup(image).is_some()
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        self.store.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramecium_cert::{authority::Authority, certificate::CertifyMethod};
    use rand::{rngs::StdRng, SeedableRng};

    fn service_with(image: &[u8], rights: Vec<Right>) -> CertService {
        let root = Authority::new("root", &mut StdRng::seed_from_u64(1), 512);
        let cert = root
            .certify("c", image, rights, CertifyMethod::Administrator)
            .unwrap();
        let store = CertStore::new(root.public().clone());
        let machine = Arc::new(Mutex::new(Machine::new()));
        let svc = CertService::new(machine, store);
        svc.install(cert, vec![]);
        svc
    }

    #[test]
    fn validation_charges_cycles() {
        let image = b"component image";
        let svc = service_with(image, vec![Right::RunKernel]);
        let before = svc.machine.lock().now();
        svc.validate_for(image, Right::RunKernel).unwrap();
        let elapsed = svc.machine.lock().now() - before;
        // One signature check plus digesting.
        assert!(elapsed >= DEFAULT_SIG_CHECK_COST);
    }

    #[test]
    fn cached_validation_is_much_cheaper() {
        let image = b"component image";
        let svc = service_with(image, vec![Right::RunKernel]);
        svc.validate_for(image, Right::RunKernel).unwrap();
        let before = svc.machine.lock().now();
        svc.validate_for(image, Right::RunKernel).unwrap();
        let cached = svc.machine.lock().now() - before;
        assert!(cached < DEFAULT_SIG_CHECK_COST);
        assert_eq!(svc.stats().cache_hits, 1);
    }

    #[test]
    fn uncertified_image_fails() {
        let svc = service_with(b"known", vec![Right::RunKernel]);
        assert!(!svc.is_certified(b"unknown"));
        assert!(svc.validate_for(b"unknown", Right::RunKernel).is_err());
    }
}
