//! The component loader: placement policy and protection selection.
//!
//! "Determining which components reside in user and kernel space is up to
//! the user. An authority certifies which components are trustworthy and
//! are therefore permitted to run in the kernel address space." (paper,
//! section 1).
//!
//! The loader implements that split: the *user* asks for a placement; the
//! *certification service* decides whether the kernel placement is
//! permitted; and — because Paramecium generalises the Exokernel/SPIN
//! approaches — an uncertified bytecode component may still enter the
//! kernel domain under *software* protection (load-time verification or
//! SFI rewriting) when the load options allow it.

use std::sync::Arc;

use parking_lot::Mutex;

use paramecium_machine::{
    cost::{CostModel, Cycles},
    Machine,
};
use paramecium_obj::{ObjRef, ObjectBuilder, TypeTag, Value};
use paramecium_sfi::{
    analysis,
    bytecode::Program,
    interp::{ElidedProgram, ExecOutcome, Interp, InterpError},
    sandbox::sandbox_rewrite,
};

use crate::domain::DomainId;

/// Where the user asks for a component to live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Inside the kernel protection domain.
    Kernel,
    /// In the given (user) protection domain.
    Domain(DomainId),
}

/// How the loaded component is protected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protection {
    /// Hardware: it lives in its own MMU context; stray accesses fault.
    Hardware,
    /// A valid certificate was checked at load time; the component runs
    /// native with **zero** run-time checks — the Paramecium way.
    CertifiedNative,
    /// Statically verified at load time; runs with only its own compiler-
    /// emitted guards — the SPIN way.
    Verified,
    /// Rewritten with SFI guards on every access — the Exokernel way.
    Sandboxed,
}

/// Options controlling a load.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Requested placement.
    pub placement: Placement,
    /// Instance path to register in the name space.
    pub register_as: String,
    /// If the component is uncertified bytecode, may the loader fall back
    /// to software protection (verify, then sandbox) for kernel placement?
    pub allow_software_protection: bool,
    /// Require certificates even for user-domain placement.
    pub require_user_cert: bool,
    /// Skip certification and verification entirely and force SFI
    /// rewriting (the pure-Exokernel baseline, used by ablations).
    pub force_sandbox: bool,
}

impl LoadOptions {
    /// Standard options: kernel placement, software fallback allowed.
    pub fn kernel(register_as: impl Into<String>) -> Self {
        LoadOptions {
            placement: Placement::Kernel,
            register_as: register_as.into(),
            allow_software_protection: true,
            require_user_cert: false,
            force_sandbox: false,
        }
    }

    /// Standard options: placement in a user domain.
    pub fn user(domain: DomainId, register_as: impl Into<String>) -> Self {
        LoadOptions {
            placement: Placement::Domain(domain),
            register_as: register_as.into(),
            allow_software_protection: false,
            require_user_cert: false,
            force_sandbox: false,
        }
    }

    /// Disables the software-protection fallback (strict certification).
    pub fn strict(mut self) -> Self {
        self.allow_software_protection = false;
        self
    }

    /// Forces SFI rewriting regardless of certificates or verifiability.
    pub fn sandboxed(mut self) -> Self {
        self.force_sandbox = true;
        self
    }
}

/// The outcome of a load.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Instance path the component was registered under.
    pub path: String,
    /// Domain it was placed in.
    pub domain: DomainId,
    /// Protection regime selected.
    pub protection: Protection,
    /// Simulated cycles the load itself cost (certificate validation,
    /// verification or rewriting).
    pub load_cycles: Cycles,
}

/// Instance state of a loaded bytecode component object.
struct BcState {
    program: Program,
    /// For [`Protection::Verified`] components: the proof-elided stream.
    /// The facts the verifier demanded are exactly the checks the fast
    /// interpreter drops — this is where "verifying at load-time obviates
    /// the need for run time fault checks" becomes cycles.
    elided: Option<ElidedProgram>,
    machine: Arc<Mutex<Machine>>,
    protection: Protection,
    step_budget: u64,
    last_steps: u64,
}

impl BcState {
    /// Executes the component over `data` with `r1` set, through the
    /// proof-elided interpreter when one was compiled and the checked
    /// interpreter otherwise.
    fn execute(&self, data: &[u8], r1: u64) -> Result<ExecOutcome, InterpError> {
        let n = data.len().min(self.program.data_len as usize);
        match &self.elided {
            Some(elided) => {
                let mut interp = paramecium_sfi::ElidedInterp::new(elided);
                interp.load_data(0, &data[..n]);
                interp.set_reg(paramecium_sfi::Reg::new(1), r1);
                interp.run(self.step_budget)
            }
            None => {
                let mut interp = Interp::new(&self.program);
                interp.load_data(0, &data[..n]);
                interp.set_reg(paramecium_sfi::Reg::new(1), r1);
                interp.run(self.step_budget)
            }
        }
    }
}

/// Cost charged per interpreted VM step, in simulated cycles.
const VM_STEP_COST: Cycles = 1;

/// Wraps a bytecode program as an object exporting the `component`
/// interface:
///
/// - `run(data: bytes, r1: int) -> int` — load `data` at offset 0, set
///   register r1, execute, return r0;
/// - `steps() -> int` — VM steps of the most recent run;
/// - `protection() -> str` — the protection regime in force.
pub fn make_bytecode_object(
    class: impl Into<String>,
    program: Program,
    protection: Protection,
    machine: Arc<Mutex<Machine>>,
    step_budget: u64,
) -> ObjRef {
    // Verified components earned a proof map at load time; spend it now by
    // compiling the check-elided stream they will execute through.
    let elided = (protection == Protection::Verified)
        .then(|| analysis::analyze(&program).ok())
        .flatten()
        .map(|a| ElidedProgram::compile(&program, &a));
    ObjectBuilder::new(class)
        .state(BcState {
            program,
            elided,
            machine,
            protection,
            step_budget,
            last_steps: 0,
        })
        .interface("component", |i| {
            i.method(
                "run",
                &[TypeTag::Bytes, TypeTag::Int],
                TypeTag::Int,
                |this, args| {
                    let data = args[0].as_bytes()?.clone();
                    let r1 = args[1].as_int()?;
                    this.with_state(|s: &mut BcState| {
                        let out = s
                            .execute(&data, r1 as u64)
                            .map_err(|e| paramecium_obj::ObjError::failed(e.to_string()))?;
                        s.last_steps = out.steps;
                        s.machine.lock().charge(out.steps * VM_STEP_COST);
                        Ok(Value::Int(out.result as i64))
                    })
                },
            )
            .method("steps", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut BcState| Ok(Value::Int(s.last_steps as i64)))
            })
            .method("protection", &[], TypeTag::Str, |this, _| {
                this.with_state(|s: &mut BcState| Ok(Value::Str(format!("{:?}", s.protection))))
            })
        })
        .build()
}

/// Chooses the software-protection regime for uncertified bytecode headed
/// into the kernel domain: verification if it passes, else SFI rewriting.
///
/// Returns the (possibly rewritten) program, the regime, and the simulated
/// load-time cost of making it safe. The cost model prices each
/// abstract-interpretation evaluation ([`CostModel::analysis_eval`]); a
/// failed verification still charges the evaluations it burned before the
/// loader fell back to rewriting.
pub fn soften(program: Program, cost_model: &CostModel) -> (Program, Protection, Cycles) {
    let analysis = analysis::analyze(&program);
    let analysis_cycles = analysis
        .as_ref()
        .map(|a| a.report.evaluations * cost_model.analysis_eval)
        .unwrap_or(0);
    if let Ok(a) = &analysis {
        if a.verdict(&program).is_ok() {
            return (program, Protection::Verified, analysis_cycles);
        }
    }
    let original_len = program.len() as Cycles;
    let (rewritten, stats) = sandbox_rewrite(&program);
    // Rewriting is linear in program size, on top of the evaluations the
    // failed verification attempt already spent.
    let cost = analysis_cycles + (original_len + stats.rewritten_len as Cycles) * 2;
    (rewritten, Protection::Sandboxed, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramecium_sfi::workloads;

    fn machine() -> Arc<Mutex<Machine>> {
        Arc::new(Mutex::new(Machine::new()))
    }

    #[test]
    fn bytecode_object_runs_and_reports() {
        let m = machine();
        let obj = make_bytecode_object(
            "csum",
            workloads::checksum_loop(64, 1),
            Protection::Hardware,
            m.clone(),
            1 << 20,
        );
        let data = bytes::Bytes::from((0..64u8).collect::<Vec<_>>());
        let expected: i64 = (0..64i64).sum();
        let r = obj
            .invoke("component", "run", &[Value::Bytes(data), Value::Int(0)])
            .unwrap();
        assert_eq!(r, Value::Int(expected));
        let steps = obj.invoke("component", "steps", &[]).unwrap();
        assert!(steps.as_int().unwrap() > 64);
        assert_eq!(
            obj.invoke("component", "protection", &[]).unwrap(),
            Value::Str("Hardware".into())
        );
    }

    #[test]
    fn running_charges_simulated_time() {
        let m = machine();
        let obj = make_bytecode_object(
            "alu",
            workloads::alu_loop(100),
            Protection::CertifiedNative,
            m.clone(),
            1 << 20,
        );
        let before = m.lock().now();
        obj.invoke(
            "component",
            "run",
            &[Value::Bytes(bytes::Bytes::new()), Value::Int(0)],
        )
        .unwrap();
        assert!(m.lock().now() > before);
    }

    #[test]
    fn faulting_component_reports_failure() {
        let m = machine();
        let obj = make_bytecode_object(
            "wild",
            workloads::wild_writer(),
            Protection::Hardware,
            m,
            1 << 20,
        );
        let r = obj.invoke(
            "component",
            "run",
            &[Value::Bytes(bytes::Bytes::new()), Value::Int(0)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn soften_verifies_when_possible() {
        let cm = CostModel::default();
        let (p, prot, cost) = soften(workloads::checksum_loop_verified(64, 1), &cm);
        assert_eq!(prot, Protection::Verified);
        assert!(cost > 0);
        // Program untouched.
        assert_eq!(p, workloads::checksum_loop_verified(64, 1));
    }

    #[test]
    fn soften_charges_per_the_cost_model() {
        let p = workloads::checksum_loop_verified(64, 1);
        let (_, _, default_cost) = soften(p.clone(), &CostModel::default());
        let (_, _, free_cost) = soften(p.clone(), &CostModel::free());
        let mut doubled = CostModel::default();
        doubled.analysis_eval *= 2;
        let (_, _, doubled_cost) = soften(p, &doubled);
        assert_eq!(free_cost, 0);
        assert_eq!(doubled_cost, default_cost * 2);
    }

    #[test]
    fn soften_sandboxes_unverifiable_code() {
        let original = workloads::checksum_loop(64, 1);
        let (p, prot, cost) = soften(original.clone(), &CostModel::default());
        assert_eq!(prot, Protection::Sandboxed);
        assert!(cost > 0);
        assert!(p.len() > original.len());
    }

    #[test]
    fn failed_verification_still_charges_its_evaluations() {
        let original = workloads::checksum_loop(64, 1);
        let (_, _, with_eval) = soften(original.clone(), &CostModel::default());
        let no_eval = CostModel {
            analysis_eval: 0,
            ..CostModel::default()
        };
        let (_, _, without_eval) = soften(original, &no_eval);
        assert!(with_eval > without_eval);
    }

    #[test]
    fn verified_component_runs_through_the_elided_path() {
        // Same observable result as the checked interpreter, under the
        // Verified protection string.
        let m = machine();
        let program = workloads::checksum_loop_verified(64, 1);
        let obj = make_bytecode_object(
            "csum_v",
            program.clone(),
            Protection::Verified,
            m.clone(),
            1 << 20,
        );
        let data: Vec<u8> = (0..64u8).collect();
        let mut oracle = Interp::new(&program);
        oracle.load_data(0, &data);
        let expected = oracle.run(1 << 20).unwrap();

        let r = obj
            .invoke(
                "component",
                "run",
                &[Value::Bytes(bytes::Bytes::from(data)), Value::Int(0)],
            )
            .unwrap();
        assert_eq!(r, Value::Int(expected.result as i64));
        // Step accounting is preserved exactly — the elided interpreter
        // does less work but reports the same simulated cost.
        let steps = obj.invoke("component", "steps", &[]).unwrap();
        assert_eq!(steps.as_int().unwrap() as u64, expected.steps);
        assert_eq!(
            obj.invoke("component", "protection", &[]).unwrap(),
            Value::Str("Verified".into())
        );
    }

    #[test]
    fn step_budget_is_enforced_through_the_object() {
        let m = machine();
        let obj = make_bytecode_object(
            "big",
            workloads::alu_loop(1_000_000),
            Protection::Hardware,
            m,
            100, // Tiny budget.
        );
        assert!(obj
            .invoke(
                "component",
                "run",
                &[Value::Bytes(bytes::Bytes::new()), Value::Int(0)]
            )
            .is_err());
    }
}
