//! Processor event management.
//!
//! "All processor events (traps and interrupts) are handled by this
//! service. Components can register call-backs which are called every time
//! a specified processor event occurs. A call-back consists of a context,
//! and the address of a call-back function." (paper, section 3).
//!
//! Call-backs registered for a non-kernel domain incur the context-switch
//! cost when dispatched — exactly the cost the thread package's proto-
//! thread machinery amortises.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use paramecium_machine::{
    trap::{Trap, NUM_VECTORS},
    Machine,
};

use crate::{domain::DomainId, CoreError, CoreResult};

/// A registered call-back: the paper's `(context, function)` pair.
pub type EventCallback = Arc<dyn Fn(&Trap) + Send + Sync>;

/// Identifier of a registration (for unregistering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallbackId(u64);

struct Registration {
    id: CallbackId,
    domain: DomainId,
    callback: EventCallback,
}

/// Per-vector dispatch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events delivered on this vector.
    pub delivered: u64,
    /// Events with no registered call-back (dropped).
    pub unhandled: u64,
}

/// The processor event service.
pub struct EventService {
    vectors: Vec<RwLock<Vec<Registration>>>,
    stats: Vec<Mutex<EventStats>>,
    next_id: Mutex<u64>,
}

impl EventService {
    /// Creates the service with all vectors empty.
    pub fn new() -> Self {
        EventService {
            vectors: (0..NUM_VECTORS).map(|_| RwLock::new(Vec::new())).collect(),
            stats: (0..NUM_VECTORS)
                .map(|_| Mutex::new(EventStats::default()))
                .collect(),
            next_id: Mutex::new(0),
        }
    }

    /// Registers a call-back for `vector` on behalf of `domain`.
    pub fn register(
        &self,
        vector: u32,
        domain: DomainId,
        callback: EventCallback,
    ) -> CoreResult<CallbackId> {
        let slot = self
            .vectors
            .get(vector as usize)
            .ok_or_else(|| CoreError::Policy(format!("vector {vector} out of range")))?;
        let mut next = self.next_id.lock();
        let id = CallbackId(*next);
        *next += 1;
        slot.write().push(Registration {
            id,
            domain,
            callback,
        });
        Ok(id)
    }

    /// Unregisters a call-back. Returns true if it existed.
    pub fn unregister(&self, vector: u32, id: CallbackId) -> bool {
        match self.vectors.get(vector as usize) {
            Some(slot) => {
                let mut regs = slot.write();
                let before = regs.len();
                regs.retain(|r| r.id != id);
                regs.len() != before
            }
            None => false,
        }
    }

    /// Number of call-backs on a vector.
    pub fn callback_count(&self, vector: u32) -> usize {
        self.vectors
            .get(vector as usize)
            .map_or(0, |v| v.read().len())
    }

    /// Delivers a trap: charges trap entry/exit, switches to each
    /// call-back's domain (charging the context switch when it differs),
    /// and invokes the call-backs in registration order.
    ///
    /// Returns the number of call-backs run.
    pub fn deliver(&self, machine: &Mutex<Machine>, trap: &Trap) -> usize {
        let vector = trap.vector as usize;
        let Some(slot) = self.vectors.get(vector) else {
            return 0;
        };
        // Snapshot under the lock, run outside it: call-backs may
        // re-enter the event service (e.g. a fault handler making a
        // nested cross-domain call).
        let regs: Vec<(DomainId, EventCallback)> = slot
            .read()
            .iter()
            .map(|r| (r.domain, r.callback.clone()))
            .collect();

        {
            let mut m = machine.lock();
            let cost = m.cost.trap_enter;
            m.charge(cost);
        }

        if regs.is_empty() {
            self.stats[vector].lock().unhandled += 1;
        } else {
            self.stats[vector].lock().delivered += 1;
        }

        let mut ran = 0;
        for (domain, cb) in regs {
            {
                let mut m = machine.lock();
                // Dispatching into a non-current context pays the switch.
                let _ = m.switch_context(domain.context());
            }
            cb(trap);
            ran += 1;
        }

        {
            let mut m = machine.lock();
            let cost = m.cost.trap_exit;
            m.charge(cost);
        }
        ran
    }

    /// Polls the interrupt controller and delivers every pending
    /// interrupt. Returns the number of interrupts delivered.
    pub fn drain_interrupts(&self, machine: &Mutex<Machine>) -> usize {
        let mut count = 0;
        loop {
            let line = {
                let mut m = machine.lock();
                match m.irq.acknowledge() {
                    Some(l) => {
                        let cost = m.cost.irq_dispatch;
                        m.charge(cost);
                        l
                    }
                    None => break,
                }
            };
            self.deliver(machine, &Trap::interrupt(line));
            count += 1;
        }
        count
    }

    /// Statistics for one vector.
    pub fn stats(&self, vector: u32) -> EventStats {
        self.stats
            .get(vector as usize)
            .map(|s| *s.lock())
            .unwrap_or_default()
    }
}

impl Default for EventService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::KERNEL_DOMAIN;
    use paramecium_machine::{dev::Nic, trap::TrapKind};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn machine() -> Mutex<Machine> {
        Mutex::new(Machine::new())
    }

    #[test]
    fn callbacks_fire_on_delivery() {
        let es = EventService::new();
        let m = machine();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        es.register(
            TrapKind::Breakpoint.vector(),
            KERNEL_DOMAIN,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        let trap = Trap::exception(TrapKind::Breakpoint);
        assert_eq!(es.deliver(&m, &trap), 1);
        assert_eq!(es.deliver(&m, &trap), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(es.stats(trap.vector).delivered, 2);
    }

    #[test]
    fn delivery_charges_trap_costs() {
        let es = EventService::new();
        let m = machine();
        es.register(TrapKind::Syscall.vector(), KERNEL_DOMAIN, Arc::new(|_| {}))
            .unwrap();
        let before = m.lock().now();
        es.deliver(&m, &Trap::syscall(1));
        let elapsed = m.lock().now() - before;
        let (enter, exit) = {
            let mm = m.lock();
            (mm.cost.trap_enter, mm.cost.trap_exit)
        };
        assert_eq!(elapsed, enter + exit);
    }

    #[test]
    fn dispatch_to_user_domain_pays_context_switch() {
        let es = EventService::new();
        let m = machine();
        let user_ctx = m.lock().mmu.create_context();
        es.register(
            TrapKind::Breakpoint.vector(),
            DomainId::from(user_ctx),
            Arc::new(|_| {}),
        )
        .unwrap();
        let before = m.lock().now();
        es.deliver(&m, &Trap::exception(TrapKind::Breakpoint));
        let elapsed = m.lock().now() - before;
        let (enter, exit, switch) = {
            let mm = m.lock();
            (
                mm.cost.trap_enter,
                mm.cost.trap_exit,
                mm.cost.context_switch,
            )
        };
        assert_eq!(elapsed, enter + exit + switch);
    }

    #[test]
    fn unhandled_events_are_counted() {
        let es = EventService::new();
        let m = machine();
        es.deliver(&m, &Trap::exception(TrapKind::DivideByZero));
        let s = es.stats(TrapKind::DivideByZero.vector());
        assert_eq!(s.unhandled, 1);
        assert_eq!(s.delivered, 0);
    }

    #[test]
    fn unregister_stops_delivery() {
        let es = EventService::new();
        let m = machine();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let v = TrapKind::Breakpoint.vector();
        let id = es
            .register(
                v,
                KERNEL_DOMAIN,
                Arc::new(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            )
            .unwrap();
        assert_eq!(es.callback_count(v), 1);
        assert!(es.unregister(v, id));
        assert!(!es.unregister(v, id));
        es.deliver(&m, &Trap::exception(TrapKind::Breakpoint));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn multiple_callbacks_run_in_order() {
        let es = EventService::new();
        let m = machine();
        let log = Arc::new(Mutex::new(Vec::new()));
        let v = TrapKind::Syscall.vector();
        for tag in [1, 2, 3] {
            let l = log.clone();
            es.register(v, KERNEL_DOMAIN, Arc::new(move |_| l.lock().push(tag)))
                .unwrap();
        }
        es.deliver(&m, &Trap::syscall(0));
        assert_eq!(*log.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn drain_interrupts_delivers_pending_lines() {
        let es = EventService::new();
        let m = machine();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for line in [1u32, 3] {
            let s = seen.clone();
            es.register(
                paramecium_machine::trap::IRQ_VECTOR_BASE + line,
                KERNEL_DOMAIN,
                Arc::new(move |t| s.lock().push(t.code)),
            )
            .unwrap();
        }
        {
            let mut mm = m.lock();
            mm.device_mut::<Nic>("nic").unwrap().inject_rx(vec![1]);
            mm.tick(1);
            mm.irq.raise(3);
        }
        let n = es.drain_interrupts(&m);
        assert_eq!(n, 2);
        assert_eq!(*seen.lock(), vec![1, 3]);
    }

    #[test]
    fn out_of_range_vector_rejected() {
        let es = EventService::new();
        assert!(es
            .register(NUM_VECTORS + 1, KERNEL_DOMAIN, Arc::new(|_| {}))
            .is_err());
    }
}
