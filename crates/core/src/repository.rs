//! The component repository.
//!
//! "The Paramecium system architecture consists of a nucleus and a
//! repository of system components." (paper, section 3). Objects are
//! "usually loaded dynamically on demand" from here.
//!
//! Two component kinds exist:
//!
//! - **Native** components are implemented in Rust (drivers, protocol
//!   layers, thread packages — the trusted toolbox). Their *image* is a
//!   declared identity byte string; certificates digest that.
//! - **Bytecode** components are downloadable code (the [`paramecium_sfi`]
//!   instruction set). Their image is the encoded program, so certifying,
//!   sandboxing and verifying all operate on the exact bytes that run.

use std::{collections::BTreeMap, sync::Arc};

use parking_lot::RwLock;

use paramecium_obj::{ObjRef, ObjResult};
use paramecium_sfi::bytecode::Program;

use crate::{CoreError, CoreResult};

/// Constructor for a native component instance.
pub type NativeFactory = Arc<dyn Fn() -> ObjResult<ObjRef> + Send + Sync>;

/// A stored component.
#[derive(Clone)]
pub enum ComponentKind {
    /// A Rust-implemented component.
    Native {
        /// Identity bytes certificates digest (name + version + build id).
        image: Vec<u8>,
        /// Instantiates the component object.
        factory: NativeFactory,
    },
    /// A downloadable bytecode component.
    Bytecode {
        /// The encoded program (see [`Program::encode`]).
        image: Vec<u8>,
    },
}

impl ComponentKind {
    /// The certifiable image bytes.
    pub fn image(&self) -> &[u8] {
        match self {
            ComponentKind::Native { image, .. } => image,
            ComponentKind::Bytecode { image } => image,
        }
    }
}

impl std::fmt::Debug for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComponentKind::Native { image, .. } => f
                .debug_struct("Native")
                .field("image_len", &image.len())
                .finish(),
            ComponentKind::Bytecode { image } => f
                .debug_struct("Bytecode")
                .field("image_len", &image.len())
                .finish(),
        }
    }
}

/// The repository: named components.
#[derive(Default)]
pub struct Repository {
    components: RwLock<BTreeMap<String, ComponentKind>>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Registers a native component under `name`.
    ///
    /// The `version` string becomes part of the certifiable image, so
    /// re-versioning a component invalidates old certificates.
    pub fn add_native(
        &self,
        name: impl Into<String>,
        version: &str,
        factory: NativeFactory,
    ) -> Vec<u8> {
        let name = name.into();
        let image = format!("native:{name}:{version}").into_bytes();
        self.components.write().insert(
            name,
            ComponentKind::Native {
                image: image.clone(),
                factory,
            },
        );
        image
    }

    /// Registers a bytecode component under `name`. Returns its image.
    pub fn add_bytecode(&self, name: impl Into<String>, program: &Program) -> Vec<u8> {
        let image = program.encode();
        self.components.write().insert(
            name.into(),
            ComponentKind::Bytecode {
                image: image.clone(),
            },
        );
        image
    }

    /// Fetches a component.
    pub fn get(&self, name: &str) -> CoreResult<ComponentKind> {
        self.components
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NoSuchComponent(name.to_owned()))
    }

    /// The certifiable image of a component.
    pub fn image_of(&self, name: &str) -> CoreResult<Vec<u8>> {
        Ok(self.get(name)?.image().to_vec())
    }

    /// Removes a component, returning whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.components.write().remove(name).is_some()
    }

    /// Lists all component names.
    pub fn list(&self) -> Vec<String> {
        self.components.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paramecium_obj::ObjectBuilder;
    use paramecium_sfi::workloads;

    #[test]
    fn native_roundtrip() {
        let repo = Repository::new();
        let image = repo.add_native(
            "nic-driver",
            "1.0",
            Arc::new(|| Ok(ObjectBuilder::new("nic-driver").build())),
        );
        assert_eq!(repo.image_of("nic-driver").unwrap(), image);
        match repo.get("nic-driver").unwrap() {
            ComponentKind::Native { factory, .. } => {
                let obj = factory().unwrap();
                assert_eq!(obj.class(), "nic-driver");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn bytecode_roundtrip() {
        let repo = Repository::new();
        let p = workloads::alu_loop(4);
        let image = repo.add_bytecode("alu", &p);
        assert_eq!(Program::decode(&image).unwrap(), p);
        assert!(matches!(
            repo.get("alu").unwrap(),
            ComponentKind::Bytecode { .. }
        ));
    }

    #[test]
    fn version_changes_image() {
        let repo = Repository::new();
        let f: NativeFactory = Arc::new(|| Ok(ObjectBuilder::new("x").build()));
        let v1 = repo.add_native("x", "1.0", f.clone());
        let v2 = repo.add_native("x", "1.1", f);
        assert_ne!(v1, v2);
    }

    #[test]
    fn missing_component_is_an_error() {
        let repo = Repository::new();
        assert!(matches!(
            repo.get("ghost"),
            Err(CoreError::NoSuchComponent(_))
        ));
        assert!(!repo.remove("ghost"));
    }

    #[test]
    fn list_is_sorted() {
        let repo = Repository::new();
        repo.add_bytecode("zeta", &workloads::alu_loop(1));
        repo.add_bytecode("alpha", &workloads::alu_loop(1));
        assert_eq!(repo.list(), vec!["alpha", "zeta"]);
    }
}
