//! The Paramecium nucleus (paper, section 3).
//!
//! "The Paramecium system architecture consists of a nucleus and a
//! repository of system components. The nucleus is a protected and trusted
//! component which implements only those services that cannot be moved into
//! the application without jeopardizing the system's integrity."
//!
//! The nucleus provides exactly four services, all using the protection
//! domain (MMU context) as their unit of granularity:
//!
//! - [`events`] — processor event management: traps and interrupts
//!   dispatched to registered call-backs `(context, function)`,
//! - [`memsvc`] — memory management: virtual/physical pages, exclusive or
//!   shared allocation, per-page fault call-backs, I/O-space allocation,
//! - [`directory`] — the hierarchical object name space with per-domain
//!   inheritance and overrides; importing across domains produces proxies,
//! - [`certsvc`] — certificate validation before a component is mapped
//!   into a protection domain.
//!
//! Everything else — thread packages, device drivers, protocol stacks,
//! virtual memory policies — lives *outside* the nucleus and is loaded
//! from the [`repository`] into whichever protection domain the user
//! configures, subject to certification.
//!
//! The nucleus itself is an object [composition](paramecium_obj::compose):
//! [`nucleus::Nucleus::boot`] statically composes the four service objects
//! and registers them in the name space under `/nucleus/…`, so kernel
//! services are bound, interposed upon and measured with exactly the same
//! mechanisms as application components.

pub mod certsvc;
pub mod directory;
pub mod domain;
pub mod events;
pub mod loader;
pub mod memsvc;
pub mod nucleus;
pub mod proxy;
pub mod repository;

pub use directory::NameSpace;
pub use domain::{Domain, DomainId};
pub use loader::{LoadOptions, Placement, Protection};
pub use nucleus::Nucleus;
pub use repository::{ComponentKind, Repository};

use paramecium_cert::CertError;
use paramecium_machine::MachineError;
use paramecium_obj::ObjError;

/// Errors surfaced by nucleus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// An object-model operation failed.
    Obj(ObjError),
    /// A machine/hardware operation failed.
    Machine(MachineError),
    /// Certification failed.
    Cert(CertError),
    /// A name-space path was malformed or absent.
    Name(String),
    /// The referenced protection domain does not exist.
    NoSuchDomain(u16),
    /// The operation violates domain policy (e.g. loading an uncertified
    /// component into the kernel domain).
    Policy(String),
    /// The component repository has no such component.
    NoSuchComponent(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Obj(e) => write!(f, "object error: {e}"),
            CoreError::Machine(e) => write!(f, "machine error: {e}"),
            CoreError::Cert(e) => write!(f, "certification error: {e}"),
            CoreError::Name(m) => write!(f, "name error: {m}"),
            CoreError::NoSuchDomain(d) => write!(f, "no such protection domain {d}"),
            CoreError::Policy(m) => write!(f, "policy violation: {m}"),
            CoreError::NoSuchComponent(n) => write!(f, "no component `{n}` in repository"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ObjError> for CoreError {
    fn from(e: ObjError) -> Self {
        CoreError::Obj(e)
    }
}

impl From<MachineError> for CoreError {
    fn from(e: MachineError) -> Self {
        CoreError::Machine(e)
    }
}

impl From<CertError> for CoreError {
    fn from(e: CertError) -> Self {
        CoreError::Cert(e)
    }
}

/// Convenient result alias.
pub type CoreResult<T> = Result<T, CoreError>;
