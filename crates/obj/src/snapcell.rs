//! A read-mostly publish cell for the dispatch caches.
//!
//! The dispatch fast paths ([`Object::invoke`](crate::object::Object)'s
//! inline cache and [`CallCache`](crate::interface::CallCache)) read their
//! cached resolutions on every invocation but rewrite them only when a
//! resolution goes stale — a control-plane event (interface re-export,
//! interposer retarget, child replacement). Even an uncontended lock costs
//! an atomic read-modify-write per read; at the measured dispatch budget
//! that is the single largest line item. `SnapCell` removes it: readers
//! perform exactly one `Acquire` pointer load.
//!
//! # How it stays sound without reader registration
//!
//! Writers publish a freshly boxed snapshot with a pointer `swap` and move
//! the previous snapshot into a graveyard (`retired`) instead of freeing
//! it. Every snapshot ever published therefore stays allocated until the
//! `SnapCell` itself is dropped, so a reference obtained by [`SnapCell::
//! load`] — which borrows the cell — can never dangle, even if a republish
//! races the reader mid-call. Snapshots are immutable after publication;
//! there is nothing to tear.
//!
//! The price is that retired snapshots accumulate. That is bounded by
//! design: caches only republish when a resolution is first learned
//! (bounded by the slot cap) or invalidated by an export-generation bump
//! (bounded by the number of reconfigurations, which are rare
//! control-plane operations — never by steady-state call traffic).

use std::{
    ptr,
    sync::atomic::{AtomicPtr, Ordering},
};

use parking_lot::Mutex;

/// A cell holding an immutable snapshot, readable with one atomic load.
pub(crate) struct SnapCell<T> {
    /// The current snapshot (null until the first publish).
    current: AtomicPtr<T>,
    /// Previously published snapshots, kept alive until the cell drops so
    /// in-flight readers can never observe a freed snapshot. Locked only
    /// on the (cold) publish path.
    retired: Mutex<Vec<*mut T>>,
}

// Safety: `SnapCell` owns every snapshot it has ever published (directly or
// via `retired`) and hands out only shared references borrowed from the
// cell itself; the raw pointers are an ownership detail. Sharing the cell
// across threads shares `&T`/moves `T`, hence the `Send + Sync` bound.
unsafe impl<T: Send + Sync> Send for SnapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}

impl<T> SnapCell<T> {
    /// Creates an empty cell.
    pub(crate) fn new() -> Self {
        SnapCell {
            current: AtomicPtr::new(ptr::null_mut()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Returns the current snapshot, if any has been published.
    ///
    /// The reference borrows the cell, and snapshots are never freed
    /// before the cell drops, so it remains valid for the whole borrow
    /// even if a concurrent [`SnapCell::publish`] replaces it.
    #[inline]
    pub(crate) fn load(&self) -> Option<&T> {
        let p = self.current.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // Safety: `p` was published by `publish` (hence points to a
            // live, fully initialised `Box<T>`), and ownership is only
            // released in `Drop`, which requires no outstanding borrows.
            Some(unsafe { &*p })
        }
    }

    /// Publishes a new snapshot, retiring the previous one.
    pub(crate) fn publish(&self, value: T) {
        let new = Box::into_raw(Box::new(value));
        let old = self.current.swap(new, Ordering::AcqRel);
        if !old.is_null() {
            self.retired.lock().push(old);
        }
    }
}

impl<T> Drop for SnapCell<T> {
    fn drop(&mut self) {
        let p = *self.current.get_mut();
        if !p.is_null() {
            // Safety: exclusive access (`&mut self`) proves no borrows of
            // any snapshot remain; every pointer was created by
            // `Box::into_raw` and is freed exactly once.
            drop(unsafe { Box::from_raw(p) });
        }
        for p in self.retired.get_mut().drain(..) {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl<T> Default for SnapCell<T> {
    fn default() -> Self {
        SnapCell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_then_publish_then_replace() {
        let cell = SnapCell::new();
        assert!(cell.load().is_none());
        cell.publish(vec![1, 2]);
        assert_eq!(cell.load().unwrap(), &[1, 2]);
        // A reference taken before a republish stays readable.
        let before = cell.load().unwrap();
        cell.publish(vec![3]);
        assert_eq!(before, &[1, 2]);
        assert_eq!(cell.load().unwrap(), &[3]);
    }

    #[test]
    fn drop_frees_current_and_retired() {
        // Leak detection by proxy: drop counters.
        struct Counted(Arc<std::sync::atomic::AtomicU64>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicU64::new(0));
        {
            let cell = SnapCell::new();
            for _ in 0..5 {
                cell.publish(Counted(drops.clone()));
            }
            assert_eq!(drops.load(Ordering::SeqCst), 0, "retired not freed early");
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            5,
            "all snapshots freed on drop"
        );
    }

    /// The world-pool stress profile: many readers hammering `load` while
    /// a writer churns publishes. Each snapshot is internally consistent
    /// (all elements equal its sequence number), so any torn or dangling
    /// read shows up as a mixed vector; the drop counter proves every
    /// retired snapshot is freed exactly once when the cell goes away.
    #[test]
    fn stress_readers_never_tear_and_retired_snapshots_all_drop() {
        struct Counted {
            payload: Vec<u64>,
            drops: Arc<std::sync::atomic::AtomicU64>,
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                self.drops.fetch_add(1, Ordering::SeqCst);
            }
        }

        const PUBLISHES: u64 = 4_000;
        let drops = Arc::new(std::sync::atomic::AtomicU64::new(0));
        {
            let cell = Arc::new(SnapCell::<Counted>::new());
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = cell.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let mut seen_max = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            if let Some(snap) = cell.load() {
                                let seq = snap.payload[0];
                                assert!(
                                    snap.payload.iter().all(|&x| x == seq),
                                    "torn snapshot: {:?}",
                                    snap.payload
                                );
                                // Publishes are observed in order: the
                                // single writer's swap sequence is the
                                // only source of new pointers.
                                assert!(seq >= seen_max, "snapshot went backwards");
                                seen_max = seq;
                            }
                        }
                        seen_max
                    })
                })
                .collect();
            for seq in 1..=PUBLISHES {
                cell.publish(Counted {
                    payload: vec![seq; 16],
                    drops: drops.clone(),
                });
            }
            stop.store(true, Ordering::Relaxed);
            for h in readers {
                let seen = h.join().unwrap();
                assert!(seen <= PUBLISHES);
            }
            // While the cell is alive nothing is freed — that is the
            // whole safety argument for lock-free readers.
            assert_eq!(drops.load(Ordering::SeqCst), 0, "snapshot freed early");
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            PUBLISHES,
            "every published snapshot freed exactly once on cell drop"
        );
    }

    #[test]
    fn concurrent_readers_and_publishers() {
        let cell = Arc::new(SnapCell::new());
        cell.publish(0u64);
        let mut handles = Vec::new();
        for t in 0..2 {
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    cell.publish(t * 10_000 + i);
                    let v = *cell.load().unwrap();
                    assert!(v <= 20_000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
