//! Fluent construction of objects and interfaces.

use std::any::Any;

use crate::{
    interface::{Interface, MethodFn},
    object::{ObjRef, Object},
    typeinfo::{MethodSig, TypeTag},
    value::Value,
    ObjResult,
};

/// Builds an [`Object`] with state and interfaces.
///
/// # Examples
///
/// ```
/// use paramecium_obj::{ObjectBuilder, TypeTag, Value};
///
/// let obj = ObjectBuilder::new("echo")
///     .interface("echo", |i| {
///         i.method("echo", &[TypeTag::Str], TypeTag::Str, |_, args| {
///             Ok(args[0].clone())
///         })
///     })
///     .build();
/// assert_eq!(
///     obj.invoke("echo", "echo", &[Value::Str("hi".into())]).unwrap(),
///     Value::Str("hi".into())
/// );
/// ```
pub struct ObjectBuilder {
    class: String,
    state: Box<dyn Any + Send>,
    interfaces: Vec<Interface>,
}

impl ObjectBuilder {
    /// Starts building an object of the given class with unit state.
    pub fn new(class: impl Into<String>) -> Self {
        ObjectBuilder {
            class: class.into(),
            state: Box::new(()),
            interfaces: Vec::new(),
        }
    }

    /// Sets the instance data.
    pub fn state<T: Any + Send>(mut self, state: T) -> Self {
        self.state = Box::new(state);
        self
    }

    /// Adds an interface, configured by `f`.
    pub fn interface(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(InterfaceBuilder) -> InterfaceBuilder,
    ) -> Self {
        let b = f(InterfaceBuilder::new(name));
        self.interfaces.push(b.finish());
        self
    }

    /// Adds a fully built interface.
    pub fn raw_interface(mut self, iface: Interface) -> Self {
        self.interfaces.push(iface);
        self
    }

    /// Finishes construction.
    pub fn build(self) -> ObjRef {
        Object::new(self.class, self.state, self.interfaces)
    }
}

/// Builds one [`Interface`].
pub struct InterfaceBuilder {
    iface: Interface,
}

impl InterfaceBuilder {
    /// Starts an empty interface.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceBuilder {
            iface: Interface::new(name),
        }
    }

    /// Adds a method with a fixed signature.
    pub fn method<F>(mut self, name: &str, params: &[TypeTag], returns: TypeTag, f: F) -> Self
    where
        F: Fn(&ObjRef, &[Value]) -> ObjResult<Value> + Send + Sync + 'static,
    {
        self.iface.insert_method(
            MethodSig::new(name, params, returns),
            std::sync::Arc::new(f),
        );
        self
    }

    /// Adds a variadic method (any arguments, any result). Used by generic
    /// forwarders such as proxies and interposers.
    pub fn variadic_method<F>(mut self, name: &str, f: F) -> Self
    where
        F: Fn(&ObjRef, &[Value]) -> ObjResult<Value> + Send + Sync + 'static,
    {
        self.iface.insert_method(
            MethodSig::variadic(name, TypeTag::Any),
            std::sync::Arc::new(f),
        );
        self
    }

    /// Adds a pre-built method.
    pub fn raw_method(mut self, sig: MethodSig, imp: MethodFn) -> Self {
        self.iface.insert_method(sig, imp);
        self
    }

    /// Installs the delegation fallback.
    pub fn fallback(
        mut self,
        f: impl Fn(&ObjRef, &str, &[Value]) -> ObjResult<Value> + Send + Sync + 'static,
    ) -> Self {
        self.iface.set_fallback(std::sync::Arc::new(f));
        self
    }

    /// Finishes the interface.
    pub fn finish(self) -> Interface {
        self.iface
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_multi_interface_objects() {
        let obj = ObjectBuilder::new("multi")
            .state(10i64)
            .interface("a", |i| {
                i.method("one", &[], TypeTag::Int, |_, _| Ok(Value::Int(1)))
            })
            .interface("b", |i| {
                i.method("two", &[], TypeTag::Int, |_, _| Ok(Value::Int(2)))
                    .method("state", &[], TypeTag::Int, |this, _| {
                        this.with_state(|s: &mut i64| Ok(Value::Int(*s)))
                    })
            })
            .build();
        assert_eq!(obj.interface_names(), ["a", "b"]);
        assert_eq!(obj.invoke("a", "one", &[]).unwrap(), Value::Int(1));
        assert_eq!(obj.invoke("b", "state", &[]).unwrap(), Value::Int(10));
    }

    #[test]
    fn variadic_methods_accept_any_args() {
        let obj = ObjectBuilder::new("v")
            .interface("v", |i| {
                i.variadic_method("count", |_, args| Ok(Value::Int(args.len() as i64)))
            })
            .build();
        assert_eq!(
            obj.invoke("v", "count", &[Value::Unit, Value::Int(1)])
                .unwrap(),
            Value::Int(2)
        );
    }
}
