//! Object instances.
//!
//! "An object is conceptually a collection of methods and instance data"
//! (paper, section 2). Objects are coarse grained — a scheduler, an IP
//! layer, a device driver, a memory allocator — and are always manipulated
//! through the named interfaces they export.

use std::{
    any::Any,
    collections::BTreeMap,
    sync::{
        atomic::{AtomicU64, Ordering},
        Arc,
    },
};

use parking_lot::{Mutex, RwLock};

use crate::{
    error::ObjError, interface::Interface, typeinfo::InterfaceDescriptor, value::Value, ObjResult,
};

/// A shared reference to an object instance — the paper's "object handle".
pub type ObjRef = Arc<Object>;

/// An object instance: instance data plus exported interfaces.
pub struct Object {
    /// Class (component) name, e.g. `"nic-driver"`. Not unique.
    class: String,
    /// Instance name assigned when registered in a name space, if any.
    instance_name: RwLock<Option<String>>,
    /// Instance data. Methods downcast it via [`Object::with_state`].
    state: Mutex<Box<dyn Any + Send>>,
    /// Exported interfaces by name.
    interfaces: RwLock<BTreeMap<String, Arc<Interface>>>,
    /// Total method invocations through [`Object::invoke`].
    invocations: AtomicU64,
}

impl std::fmt::Debug for Object {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Object")
            .field("class", &self.class)
            .field("instance_name", &*self.instance_name.read())
            .field(
                "interfaces",
                &self.interfaces.read().keys().cloned().collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Object {
    /// Creates an object with the given class name, instance state and
    /// interfaces. Most callers use [`ObjectBuilder`](crate::ObjectBuilder)
    /// instead.
    pub fn new(
        class: impl Into<String>,
        state: Box<dyn Any + Send>,
        interfaces: impl IntoIterator<Item = Interface>,
    ) -> ObjRef {
        Arc::new(Object {
            class: class.into(),
            instance_name: RwLock::new(None),
            state: Mutex::new(state),
            interfaces: RwLock::new(
                interfaces
                    .into_iter()
                    .map(|i| (i.name().to_owned(), Arc::new(i)))
                    .collect(),
            ),
            invocations: AtomicU64::new(0),
        })
    }

    /// The class (component type) name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The instance name under which this object was last registered,
    /// if any.
    pub fn instance_name(&self) -> Option<String> {
        self.instance_name.read().clone()
    }

    /// Records the instance name. Called by the directory service when the
    /// object is registered in a name space.
    pub fn set_instance_name(&self, name: Option<String>) {
        *self.instance_name.write() = name;
    }

    /// Runs `f` with exclusive access to the instance state, downcast to
    /// `T`.
    ///
    /// Returns [`ObjError::StateType`] if the state is not a `T`. The state
    /// lock is held for the duration of `f`; methods must not re-enter
    /// `with_state` on the *same* object from within `f` (calls to other
    /// objects are fine).
    pub fn with_state<T: 'static, R>(
        &self,
        f: impl FnOnce(&mut T) -> ObjResult<R>,
    ) -> ObjResult<R> {
        let mut guard = self.state.lock();
        let state = guard
            .downcast_mut::<T>()
            .ok_or_else(|| ObjError::StateType {
                class: self.class.clone(),
            })?;
        f(state)
    }

    /// Replaces the instance state wholesale, returning the old state.
    pub fn replace_state(&self, new: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
        std::mem::replace(&mut self.state.lock(), new)
    }

    /// Returns the named interface.
    ///
    /// This is the standard "obtain an interface from a given object handle"
    /// operation of the architecture.
    pub fn interface(&self, name: &str) -> ObjResult<Arc<Interface>> {
        self.interfaces
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ObjError::NoSuchInterface {
                class: self.class.clone(),
                interface: name.to_owned(),
            })
    }

    /// True if the object exports an interface named `name`.
    pub fn has_interface(&self, name: &str) -> bool {
        self.interfaces.read().contains_key(name)
    }

    /// Names of all exported interfaces, sorted.
    pub fn interface_names(&self) -> Vec<String> {
        self.interfaces.read().keys().cloned().collect()
    }

    /// Adds (or replaces) an exported interface at run time.
    ///
    /// Interface *addition* is the paper's evolution story: new named
    /// interfaces can appear on an object without recompiling users of the
    /// existing ones.
    pub fn export_interface(&self, iface: Interface) {
        self.interfaces
            .write()
            .insert(iface.name().to_owned(), Arc::new(iface));
    }

    /// Removes an exported interface, returning whether it existed.
    pub fn revoke_interface(&self, name: &str) -> bool {
        self.interfaces.write().remove(name).is_some()
    }

    /// Flattened type information for every exported interface.
    pub fn descriptors(&self) -> Vec<InterfaceDescriptor> {
        self.interfaces
            .read()
            .values()
            .map(|i| i.descriptor())
            .collect()
    }

    /// Total number of invocations made through [`Object::invoke`].
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

/// Extension trait providing invocation on `ObjRef` (methods need the `Arc`
/// so they can hand out `self` references).
pub trait Invoke {
    /// Invokes `interface::method(args)` on this object.
    fn invoke(&self, interface: &str, method: &str, args: &[Value]) -> ObjResult<Value>;
}

impl Invoke for ObjRef {
    fn invoke(&self, interface: &str, method: &str, args: &[Value]) -> ObjResult<Value> {
        let iface = self.interface(interface)?;
        self.invocations.fetch_add(1, Ordering::Relaxed);
        iface.call(self, method, args)
    }
}

impl Object {
    /// Invokes `interface::method(args)` on this object.
    ///
    /// Inherent convenience wrapper so call sites holding an `ObjRef` can
    /// write `obj.invoke(..)` directly.
    pub fn invoke(
        self: &Arc<Self>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        let iface = self.interface(interface)?;
        self.invocations.fetch_add(1, Ordering::Relaxed);
        iface.call(self, method, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        builder::ObjectBuilder,
        typeinfo::{MethodSig, TypeTag},
    };

    fn counter() -> ObjRef {
        ObjectBuilder::new("counter")
            .state(0i64)
            .interface("counter", |i| {
                i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let by = args[0].as_int()?;
                    this.with_state(|n: &mut i64| {
                        *n += by;
                        Ok(Value::Int(*n))
                    })
                })
                .method("get", &[], TypeTag::Int, |this, _| {
                    this.with_state(|n: &mut i64| Ok(Value::Int(*n)))
                })
            })
            .build()
    }

    #[test]
    fn invoke_mutates_state() {
        let c = counter();
        c.invoke("counter", "incr", &[Value::Int(2)]).unwrap();
        c.invoke("counter", "incr", &[Value::Int(3)]).unwrap();
        assert_eq!(c.invoke("counter", "get", &[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn missing_interface_is_an_error() {
        let c = counter();
        assert!(matches!(
            c.invoke("nope", "get", &[]),
            Err(ObjError::NoSuchInterface { .. })
        ));
    }

    #[test]
    fn wrong_state_type_is_reported() {
        let c = counter();
        let err = c.with_state(|_: &mut String| Ok(())).unwrap_err();
        assert!(matches!(err, ObjError::StateType { .. }));
    }

    #[test]
    fn invocation_count_tracks_calls() {
        let c = counter();
        assert_eq!(c.invocation_count(), 0);
        for _ in 0..7 {
            c.invoke("counter", "get", &[]).unwrap();
        }
        assert_eq!(c.invocation_count(), 7);
    }

    #[test]
    fn interfaces_can_be_added_and_revoked_at_runtime() {
        let c = counter();
        assert!(!c.has_interface("measurement"));
        let mut m = Interface::new("measurement");
        m.insert_method(
            MethodSig::new("calls", &[], TypeTag::Int),
            crate::interface::method_fn(|this, _| Ok(Value::Int(this.invocation_count() as i64))),
        );
        c.export_interface(m);
        assert!(c.has_interface("measurement"));
        // Existing interface still works — evolution without recompilation.
        c.invoke("counter", "incr", &[Value::Int(1)]).unwrap();
        let calls = c.invoke("measurement", "calls", &[]).unwrap();
        assert_eq!(calls, Value::Int(2));
        assert!(c.revoke_interface("measurement"));
        assert!(!c.has_interface("measurement"));
    }

    #[test]
    fn instance_name_roundtrips() {
        let c = counter();
        assert_eq!(c.instance_name(), None);
        c.set_instance_name(Some("/app/counter".into()));
        assert_eq!(c.instance_name().as_deref(), Some("/app/counter"));
    }

    #[test]
    fn replace_state_swaps_instance_data() {
        let c = counter();
        c.invoke("counter", "incr", &[Value::Int(41)]).unwrap();
        let old = c.replace_state(Box::new(0i64));
        assert_eq!(*old.downcast::<i64>().unwrap(), 41);
        assert_eq!(c.invoke("counter", "get", &[]).unwrap(), Value::Int(0));
    }
}
