//! Object instances.
//!
//! "An object is conceptually a collection of methods and instance data"
//! (paper, section 2). Objects are coarse grained — a scheduler, an IP
//! layer, a device driver, a memory allocator — and are always manipulated
//! through the named interfaces they export.

use std::{
    any::Any,
    collections::BTreeMap,
    sync::{
        atomic::{AtomicU64, Ordering},
        Arc,
    },
};

use parking_lot::RwLock;

use crate::{
    error::ObjError,
    interface::{FallbackFn, Interface, Method},
    snapcell::SnapCell,
    trylock::TryLock,
    typeinfo::{InterfaceDescriptor, MethodSig},
    value::Value,
    ObjResult,
};

/// A shared reference to an object instance — the paper's "object handle".
pub type ObjRef = Arc<Object>;

/// Slots in the per-object dispatch cache. Eight covers every hot loop in
/// the tree (most call sites hammer one or two methods per object) while
/// keeping the linear revalidation scan trivially cheap. Objects invoking
/// more distinct methods than this serve the excess from the slow path —
/// the cache never evicts a fresh entry, which also bounds snapshot
/// republishing (see `snapcell`).
const DISPATCH_CACHE_SLOTS: usize = 8;

/// What a dispatch-cache entry resolved to.
///
/// Directly implemented methods pin their `Arc<Method>`. Methods served by
/// a delegation fallback pin the interface's fallback handler instead:
/// interfaces are immutable once exported (a re-export swaps the whole
/// `Arc<Interface>` and bumps the generation), so "absent from the method
/// table at generation g" is a stable fact — delegated calls stop
/// re-walking the interface table on every hit.
#[derive(Clone)]
enum CachedDispatch {
    Direct(Arc<Method>),
    Fallback(FallbackFn),
}

/// One pinned `(interface, method)` resolution, valid while the object's
/// export generation still matches `gen`.
#[derive(Clone)]
struct DispatchEntry {
    gen: u64,
    interface: String,
    method: String,
    imp: CachedDispatch,
}

/// An object instance: instance data plus exported interfaces.
pub struct Object {
    /// Class (component) name, e.g. `"nic-driver"`. Not unique.
    class: String,
    /// Instance name assigned when registered in a name space, if any.
    instance_name: RwLock<Option<String>>,
    /// Instance data. Methods downcast it via [`Object::with_state`].
    /// Guarded by a spin lock: state critical sections are short, never
    /// re-entrant (see [`Object::with_state`]) and effectively uncontended
    /// in the deterministic simulation, so the single-swap acquire keeps
    /// state access off the dispatch path's cost ledger.
    state: TryLock<Box<dyn Any + Send>>,
    /// Exported interfaces by name.
    interfaces: RwLock<BTreeMap<String, Arc<Interface>>>,
    /// Total method invocations through [`Object::invoke`].
    invocations: AtomicU64,
    /// Export generation: bumped whenever the set of exported interfaces
    /// changes (or a wrapper's forwarding topology changes, see
    /// [`Object::bump_export_generation`]). Cached method handles carry the
    /// generation they were resolved at and miss cleanly once it moves.
    export_gen: AtomicU64,
    /// Pinned method resolutions serving [`Object::invoke`]'s fast path:
    /// an immutable snapshot republished (cold path only) when a
    /// resolution is learned or invalidated. Readers pay one atomic load.
    dispatch_cache: SnapCell<Vec<DispatchEntry>>,
}

impl std::fmt::Debug for Object {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Object")
            .field("class", &self.class)
            .field("instance_name", &*self.instance_name.read())
            .field(
                "interfaces",
                &self.interfaces.read().keys().cloned().collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Object {
    /// Creates an object with the given class name, instance state and
    /// interfaces. Most callers use [`ObjectBuilder`](crate::ObjectBuilder)
    /// instead.
    pub fn new(
        class: impl Into<String>,
        state: Box<dyn Any + Send>,
        interfaces: impl IntoIterator<Item = Interface>,
    ) -> ObjRef {
        Arc::new(Object {
            class: class.into(),
            instance_name: RwLock::new(None),
            state: TryLock::new(state),
            interfaces: RwLock::new(
                interfaces
                    .into_iter()
                    .map(|i| (i.name().to_owned(), Arc::new(i)))
                    .collect(),
            ),
            invocations: AtomicU64::new(0),
            export_gen: AtomicU64::new(0),
            dispatch_cache: SnapCell::new(),
        })
    }

    /// The class (component type) name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The instance name under which this object was last registered,
    /// if any.
    pub fn instance_name(&self) -> Option<String> {
        self.instance_name.read().clone()
    }

    /// Records the instance name. Called by the directory service when the
    /// object is registered in a name space.
    pub fn set_instance_name(&self, name: Option<String>) {
        *self.instance_name.write() = name;
    }

    /// Runs `f` with exclusive access to the instance state, downcast to
    /// `T`.
    ///
    /// Returns [`ObjError::StateType`] if the state is not a `T`. The state
    /// lock is held for the duration of `f`; methods must not re-enter
    /// `with_state` on the *same* object from within `f` (calls to other
    /// objects are fine).
    pub fn with_state<T: 'static, R>(
        &self,
        f: impl FnOnce(&mut T) -> ObjResult<R>,
    ) -> ObjResult<R> {
        let mut guard = self.state.lock();
        let state = guard
            .downcast_mut::<T>()
            .ok_or_else(|| ObjError::StateType {
                class: self.class.clone(),
            })?;
        f(state)
    }

    /// Replaces the instance state wholesale, returning the old state.
    pub fn replace_state(&self, new: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
        std::mem::replace(&mut self.state.lock(), new)
    }

    /// Returns the named interface.
    ///
    /// This is the standard "obtain an interface from a given object handle"
    /// operation of the architecture.
    pub fn interface(&self, name: &str) -> ObjResult<Arc<Interface>> {
        self.interfaces
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ObjError::NoSuchInterface {
                class: self.class.clone(),
                interface: name.to_owned(),
            })
    }

    /// True if the object exports an interface named `name`.
    pub fn has_interface(&self, name: &str) -> bool {
        self.interfaces.read().contains_key(name)
    }

    /// Names of all exported interfaces, sorted.
    pub fn interface_names(&self) -> Vec<String> {
        self.interfaces.read().keys().cloned().collect()
    }

    /// Adds (or replaces) an exported interface at run time.
    ///
    /// Interface *addition* is the paper's evolution story: new named
    /// interfaces can appear on an object without recompiling users of the
    /// existing ones.
    pub fn export_interface(&self, iface: Interface) {
        self.interfaces
            .write()
            .insert(iface.name().to_owned(), Arc::new(iface));
        self.bump_export_generation();
    }

    /// Removes an exported interface, returning whether it existed.
    pub fn revoke_interface(&self, name: &str) -> bool {
        let removed = self.interfaces.write().remove(name).is_some();
        if removed {
            self.bump_export_generation();
        }
        removed
    }

    /// The current export generation.
    ///
    /// Any cached method handle ([`ResolvedMethod`], a
    /// [`CallCache`](crate::interface::CallCache) slot, the per-object
    /// dispatch cache) resolved at an older generation is stale and must
    /// re-resolve before calling.
    #[inline]
    pub fn export_generation(&self) -> u64 {
        self.export_gen.load(Ordering::Acquire)
    }

    /// Invalidates every cached method handle resolved against this object.
    ///
    /// Called automatically by [`Object::export_interface`] and
    /// [`Object::revoke_interface`]. Wrapper objects whose *forwarding
    /// topology* changes without their interface set changing — an
    /// interposer being retargeted, a composition child being replaced —
    /// call this explicitly so per-hop forward caches miss and re-resolve.
    pub fn bump_export_generation(&self) {
        self.export_gen.fetch_add(1, Ordering::Release);
    }

    /// Resolves a directly implemented method to a cacheable handle, or
    /// `None` if the interface is missing or the method is only reachable
    /// through a delegation fallback.
    pub fn resolve_method(&self, interface: &str, method: &str) -> Option<ResolvedMethod> {
        let gen = self.export_generation();
        let imp = self
            .interfaces
            .read()
            .get(interface)?
            .method(method)?
            .clone();
        Some(ResolvedMethod { gen, imp })
    }

    /// Flattened type information for every exported interface.
    pub fn descriptors(&self) -> Vec<InterfaceDescriptor> {
        self.interfaces
            .read()
            .values()
            .map(|i| i.descriptor())
            .collect()
    }

    /// Total method invocations through [`Object::invoke`].
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Bumps the invocation statistic.
    ///
    /// Deliberately a plain load/store rather than an atomic RMW: the
    /// counter is a monitoring statistic on the dispatch hot path, and a
    /// locked `fetch_add` costs more than the rest of the fast path
    /// combined on some hosts. Racing writers may drop a count; the value
    /// is exact in the deterministic single-threaded simulation.
    #[inline]
    pub(crate) fn note_invocation(&self) {
        self.invocations.store(
            self.invocations.load(Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// Records a resolution in the dispatch cache by republishing a new
    /// snapshot. Stale entries (older generation) are dropped; fresh
    /// entries are never evicted, so once the cache is full of current
    /// resolutions additional methods stay on the slow path and no
    /// snapshot churn occurs.
    fn remember_dispatch(&self, gen: u64, interface: &str, method: &str, imp: CachedDispatch) {
        let mut entries: Vec<DispatchEntry> = match self.dispatch_cache.load() {
            Some(t) => {
                // Full of current entries (and this pair is not one of
                // them, else we would have hit): leave the cache alone.
                if t.iter().filter(|e| e.gen == gen).count() >= DISPATCH_CACHE_SLOTS {
                    return;
                }
                t.iter().filter(|e| e.gen == gen).cloned().collect()
            }
            None => Vec::with_capacity(1),
        };
        entries.push(DispatchEntry {
            gen,
            interface: interface.to_owned(),
            method: method.to_owned(),
            imp,
        });
        self.dispatch_cache.publish(entries);
    }
}

/// Extension trait providing invocation on `ObjRef` (methods need the `Arc`
/// so they can hand out `self` references).
pub trait Invoke {
    /// Invokes `interface::method(args)` on this object.
    fn invoke(&self, interface: &str, method: &str, args: &[Value]) -> ObjResult<Value>;
}

impl Invoke for ObjRef {
    fn invoke(&self, interface: &str, method: &str, args: &[Value]) -> ObjResult<Value> {
        Object::invoke(self, interface, method, args)
    }
}

impl Object {
    /// Invokes `interface::method(args)` on this object.
    ///
    /// The common case is served by a per-object inline cache: a pinned
    /// `Arc<Method>` handle revalidated against the export generation, so
    /// repeated calls skip the interface-table and method-table lookups
    /// entirely and the arguments stay borrowed end to end (no clone, no
    /// allocation for flat frames). Any interface re-export or revocation
    /// bumps the generation and sends the next call down the slow path.
    ///
    /// Fast and slow path run the identical dispatch kernel
    /// ([`Method::call`]) — same signature checks, same invocation
    /// accounting — which `tests/dispatch_conformance.rs` pins
    /// differentially against [`Object::invoke_uncached`].
    #[inline]
    pub fn invoke(
        self: &Arc<Self>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        // Lock-free fast path: one atomic load of the current snapshot,
        // one of the generation, then a short scan. The snapshot reference
        // stays valid for the whole call even if a concurrent re-export
        // republishes (see `snapcell`), and the generation check rejects
        // anything stale.
        if let Some(entries) = self.dispatch_cache.load() {
            let gen = self.export_gen.load(Ordering::Acquire);
            if let Some(e) = entries
                .iter()
                .find(|e| e.gen == gen && e.method == method && e.interface == interface)
            {
                self.note_invocation();
                return match &e.imp {
                    CachedDispatch::Direct(m) => m.call(self, args),
                    CachedDispatch::Fallback(fb) => fb(self, method, args),
                };
            }
        }
        self.invoke_slow(interface, method, args)
    }

    /// Slow path: full name-space lookup, then populate the dispatch cache
    /// for directly implemented methods.
    #[cold]
    fn invoke_slow(
        self: &Arc<Self>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        // Generation is sampled *before* the interface read so a racing
        // re-export can only make the recorded entry stale, never wrongly
        // fresh.
        let gen = self.export_generation();
        let iface = self.interface(interface)?;
        self.note_invocation();
        match iface.method(method) {
            Some(m) => {
                self.remember_dispatch(gen, interface, method, CachedDispatch::Direct(m.clone()));
                m.call(self, args)
            }
            None => match iface.fallback_fn() {
                // Delegated (fallback-served) methods pin the fallback
                // handler itself: the interface is immutable at this
                // generation, so the method's absence is stable and the
                // hot path skips the interface-table walk entirely. Only
                // *successful* resolutions are pinned — the name space of
                // failing probes is unbounded, and caching them would let
                // junk method names fill the slots and push real hot
                // methods off the fast path.
                Some(fb) => {
                    let result = fb(self, method, args);
                    if result.is_ok() {
                        self.remember_dispatch(
                            gen,
                            interface,
                            method,
                            CachedDispatch::Fallback(fb.clone()),
                        );
                    }
                    result
                }
                None => Err(ObjError::NoSuchMethod {
                    interface: iface.name().to_owned(),
                    method: method.to_owned(),
                }),
            },
        }
    }

    /// Invokes `interface::method(args)` bypassing every dispatch cache —
    /// the reference slow path.
    ///
    /// Semantically identical to [`Object::invoke`] (same lookups, checks
    /// and accounting); it only skips cache consultation and population.
    /// The dispatch conformance suite drives both and asserts equivalence.
    pub fn invoke_uncached(
        self: &Arc<Self>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        let iface = self.interface(interface)?;
        self.note_invocation();
        iface.call(self, method, args)
    }
}

/// A pinned method resolution: the target's `Arc<Method>` plus the export
/// generation it was resolved at.
///
/// Produced by [`Object::resolve_method`] and cached by cross-domain
/// proxies and per-hop forward caches. Callers must revalidate with
/// [`ResolvedMethod::is_current`] against the *same object* the handle was
/// resolved from before each call; a stale handle must be dropped and
/// re-resolved (it would otherwise pin an implementation the object no
/// longer exports).
#[derive(Clone)]
pub struct ResolvedMethod {
    gen: u64,
    imp: Arc<Method>,
}

impl ResolvedMethod {
    /// The export generation this handle was resolved at.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// True while `obj` (the object this was resolved from) has not
    /// re-exported or revoked any interface since resolution.
    #[inline]
    pub fn is_current(&self, obj: &Object) -> bool {
        self.gen == obj.export_generation()
    }

    /// The resolved method's signature.
    pub fn signature(&self) -> &MethodSig {
        &self.imp.sig
    }

    /// Calls the resolved method on `this` with exactly the semantics of
    /// [`Object::invoke`]: invocation accounting plus full signature
    /// checking.
    #[inline]
    pub fn call(&self, this: &ObjRef, args: &[Value]) -> ObjResult<Value> {
        this.note_invocation();
        self.imp.call(this, args)
    }
}

impl std::fmt::Debug for ResolvedMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedMethod")
            .field("gen", &self.gen)
            .field("sig", &self.imp.sig)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        builder::ObjectBuilder,
        typeinfo::{MethodSig, TypeTag},
    };

    /// Objects are shared across OS threads by the world pool (e.g. one
    /// sharded block cache serving many worlds), so `Object` must stay
    /// `Send + Sync`; pinned here so a non-thread-safe field is caught in
    /// this crate.
    #[test]
    fn objects_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Object>();
        assert_send_sync::<ObjRef>();
    }

    fn counter() -> ObjRef {
        ObjectBuilder::new("counter")
            .state(0i64)
            .interface("counter", |i| {
                i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let by = args[0].as_int()?;
                    this.with_state(|n: &mut i64| {
                        *n += by;
                        Ok(Value::Int(*n))
                    })
                })
                .method("get", &[], TypeTag::Int, |this, _| {
                    this.with_state(|n: &mut i64| Ok(Value::Int(*n)))
                })
            })
            .build()
    }

    #[test]
    fn invoke_mutates_state() {
        let c = counter();
        c.invoke("counter", "incr", &[Value::Int(2)]).unwrap();
        c.invoke("counter", "incr", &[Value::Int(3)]).unwrap();
        assert_eq!(c.invoke("counter", "get", &[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn missing_interface_is_an_error() {
        let c = counter();
        assert!(matches!(
            c.invoke("nope", "get", &[]),
            Err(ObjError::NoSuchInterface { .. })
        ));
    }

    #[test]
    fn wrong_state_type_is_reported() {
        let c = counter();
        let err = c.with_state(|_: &mut String| Ok(())).unwrap_err();
        assert!(matches!(err, ObjError::StateType { .. }));
    }

    #[test]
    fn invocation_count_tracks_calls() {
        let c = counter();
        assert_eq!(c.invocation_count(), 0);
        for _ in 0..7 {
            c.invoke("counter", "get", &[]).unwrap();
        }
        assert_eq!(c.invocation_count(), 7);
    }

    #[test]
    fn interfaces_can_be_added_and_revoked_at_runtime() {
        let c = counter();
        assert!(!c.has_interface("measurement"));
        let mut m = Interface::new("measurement");
        m.insert_method(
            MethodSig::new("calls", &[], TypeTag::Int),
            crate::interface::method_fn(|this, _| Ok(Value::Int(this.invocation_count() as i64))),
        );
        c.export_interface(m);
        assert!(c.has_interface("measurement"));
        // Existing interface still works — evolution without recompilation.
        c.invoke("counter", "incr", &[Value::Int(1)]).unwrap();
        let calls = c.invoke("measurement", "calls", &[]).unwrap();
        assert_eq!(calls, Value::Int(2));
        assert!(c.revoke_interface("measurement"));
        assert!(!c.has_interface("measurement"));
    }

    #[test]
    fn instance_name_roundtrips() {
        let c = counter();
        assert_eq!(c.instance_name(), None);
        c.set_instance_name(Some("/app/counter".into()));
        assert_eq!(c.instance_name().as_deref(), Some("/app/counter"));
    }

    #[test]
    fn replace_state_swaps_instance_data() {
        let c = counter();
        c.invoke("counter", "incr", &[Value::Int(41)]).unwrap();
        let old = c.replace_state(Box::new(0i64));
        assert_eq!(*old.downcast::<i64>().unwrap(), 41);
        assert_eq!(c.invoke("counter", "get", &[]).unwrap(), Value::Int(0));
    }
}
