//! A minimal try-only lock for the dispatch fast path.
//!
//! The dispatch caches ([`Object`](crate::object::Object)'s inline cache
//! and [`CallCache`](crate::interface::CallCache)) are acquired on every
//! hot invocation, always via *try*-acquire, and never held across a
//! blocking operation. A full mutex pays for capabilities those caches
//! never use (blocking, queueing); this lock is the minimum that preserves
//! their correctness: one atomic `swap` to acquire, one release store to
//! unlock. Acquisition failure is not an error — callers fall back to the
//! uncached slow path.
//!
//! The lock is public because other hot paths share its profile: the
//! sharded store cache guards each shard with one, keeping the warmed
//! single-client hit exactly as cheap as the old exclusive-state design
//! while letting concurrent worlds hit disjoint shards in parallel.

use std::{
    cell::UnsafeCell,
    ops::{Deref, DerefMut},
    sync::atomic::{AtomicBool, Ordering},
};

/// A lock offering only non-blocking acquisition.
pub struct TryLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: access to `value` is mediated exclusively by the `locked` flag —
// `try_lock` hands out at most one guard at a time (acquire on the
// successful swap, release on the guard's drop), so `&TryLock<T>` can be
// shared across threads whenever `T` itself may move between them.
unsafe impl<T: Send> Sync for TryLock<T> {}
unsafe impl<T: Send> Send for TryLock<T> {}

impl<T> TryLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        TryLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock if it is free, returning `None` (immediately,
    /// without spinning) when it is held.
    #[inline]
    pub fn try_lock(&self) -> Option<TryLockGuard<'_, T>> {
        if self.locked.swap(true, Ordering::Acquire) {
            None
        } else {
            Some(TryLockGuard { lock: self })
        }
    }

    /// Acquires the lock, spinning briefly and then yielding the thread
    /// until it is available.
    ///
    /// Suitable for short, never re-entrant critical sections (instance
    /// state access): in the deterministic simulation contention is
    /// essentially zero, and the uncontended acquire is a single atomic
    /// swap — measurably cheaper than a full mutex on the dispatch hot
    /// path. Like any non-reentrant lock, acquiring it twice on one thread
    /// livelocks; [`Object::with_state`](crate::object::Object::with_state)
    /// documents that rule for state access.
    pub fn lock(&self) -> TryLockGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T: Default> Default for TryLock<T> {
    fn default() -> Self {
        TryLock::new(T::default())
    }
}

/// Guard proving exclusive access to the protected value.
pub struct TryLockGuard<'a, T> {
    lock: &'a TryLock<T>,
}

impl<T> Deref for TryLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard exists, so `locked` is held by this guard and
        // no other reference to `value` is live.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for TryLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, plus `&mut self` rules out aliasing via this
        // guard itself.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for TryLockGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_while_held_then_released() {
        let l = TryLock::new(7);
        {
            let mut g = l.try_lock().expect("free lock acquires");
            *g += 1;
            assert!(l.try_lock().is_none(), "second acquire must fail");
        }
        assert_eq!(*l.try_lock().expect("released lock re-acquires"), 8);
    }

    #[test]
    fn shared_across_threads() {
        let l = std::sync::Arc::new(TryLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        if let Some(mut g) = l.try_lock() {
                            *g += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = *l.try_lock().unwrap();
        assert!(total > 0 && total <= 40_000);
    }
}
