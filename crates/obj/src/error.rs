//! Errors produced by the object model.

use crate::typeinfo::TypeTag;

/// Errors returned by object-model operations and method invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjError {
    /// The object does not export an interface with the given name.
    NoSuchInterface {
        /// Class name of the object that was queried.
        class: String,
        /// Interface name that was requested.
        interface: String,
    },
    /// The interface has no method with the given name.
    NoSuchMethod {
        /// Interface that was searched.
        interface: String,
        /// Method name that was requested.
        method: String,
    },
    /// Wrong number of arguments.
    Arity {
        /// Method whose signature was violated.
        method: String,
        /// Number of parameters the signature declares.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// An argument or result had the wrong type.
    TypeMismatch {
        /// Human-readable position, e.g. `argument 0 of \`read\``.
        context: String,
        /// Declared type.
        expected: TypeTag,
        /// Supplied type.
        got: TypeTag,
    },
    /// The object's instance state was not of the type the method expected.
    StateType {
        /// Class name of the object.
        class: String,
    },
    /// A value could not be marshalled or unmarshalled.
    Marshal(String),
    /// A name-space or binding operation failed.
    Binding(String),
    /// The method itself failed; carries a component-defined message.
    Failed(String),
    /// The operation is not permitted in the calling domain.
    Denied(String),
}

impl ObjError {
    /// Shorthand constructor for a [`ObjError::TypeMismatch`] without
    /// positional context.
    pub fn type_mismatch(expected: TypeTag, got: TypeTag) -> Self {
        ObjError::TypeMismatch {
            context: "value".into(),
            expected,
            got,
        }
    }

    /// Shorthand constructor for [`ObjError::Failed`].
    pub fn failed(msg: impl Into<String>) -> Self {
        ObjError::Failed(msg.into())
    }
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjError::NoSuchInterface { class, interface } => {
                write!(
                    f,
                    "object of class `{class}` exports no interface `{interface}`"
                )
            }
            ObjError::NoSuchMethod { interface, method } => {
                write!(f, "interface `{interface}` has no method `{method}`")
            }
            ObjError::Arity {
                method,
                expected,
                got,
            } => {
                write!(f, "method `{method}` takes {expected} arguments, got {got}")
            }
            ObjError::TypeMismatch {
                context,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, got {got}"
                )
            }
            ObjError::StateType { class } => {
                write!(f, "instance state of `{class}` has unexpected type")
            }
            ObjError::Marshal(m) => write!(f, "marshalling error: {m}"),
            ObjError::Binding(m) => write!(f, "binding error: {m}"),
            ObjError::Failed(m) => write!(f, "method failed: {m}"),
            ObjError::Denied(m) => write!(f, "permission denied: {m}"),
        }
    }
}

impl std::error::Error for ObjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ObjError::NoSuchInterface {
            class: "nic".into(),
            interface: "stats".into(),
        };
        let s = e.to_string();
        assert!(s.contains("nic") && s.contains("stats"));

        let e = ObjError::Arity {
            method: "send".into(),
            expected: 2,
            got: 0,
        };
        assert!(e.to_string().contains("takes 2 arguments"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ObjError::failed("x"));
    }
}
