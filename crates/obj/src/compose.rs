//! Object composition.
//!
//! "A composition is an ordinary object composed of other object instances.
//! Composition is to objects what objects are to data: an encapsulation
//! technique." (paper, section 2). The Paramecium kernel itself is a
//! composition of the objects managing interrupts, contexts, memory, etc.
//!
//! A composition re-exports selected interfaces of its children under its
//! own handle, and — because the common case is *dynamic* composition —
//! children can be replaced by new instances at run time without rebinding
//! the composition's clients.

use std::collections::BTreeMap;

use crate::{
    builder::ObjectBuilder,
    error::ObjError,
    interface::{CallCache, Interface},
    object::ObjRef,
    typeinfo::{MethodSig, TypeTag},
    value::Value,
    ObjResult,
};

/// Instance data of a composition object: its children and export table.
#[derive(Default)]
struct CompositionState {
    /// Child instances by local name.
    children: BTreeMap<String, ObjRef>,
    /// Which child backs each re-exported interface.
    exports: BTreeMap<String, String>,
}

/// Name of the administrative interface every composition exports.
pub const COMPOSITION_IFACE: &str = "composition";

/// Builds a composition object.
///
/// # Examples
///
/// ```
/// use paramecium_obj::{CompositionBuilder, ObjectBuilder, TypeTag, Value};
///
/// let ticker = ObjectBuilder::new("ticker")
///     .state(0i64)
///     .interface("clock", |i| {
///         i.method("tick", &[], TypeTag::Int, |this, _| {
///             this.with_state(|n: &mut i64| { *n += 1; Ok(Value::Int(*n)) })
///         })
///     })
///     .build();
///
/// let comp = CompositionBuilder::new("kernel")
///     .child("clock", ticker)
///     .export("clock", "clock")
///     .build()
///     .unwrap();
/// assert_eq!(comp.invoke("clock", "tick", &[]).unwrap(), Value::Int(1));
/// ```
pub struct CompositionBuilder {
    class: String,
    state: CompositionState,
    errors: Vec<String>,
}

impl CompositionBuilder {
    /// Starts a composition of the given class.
    pub fn new(class: impl Into<String>) -> Self {
        CompositionBuilder {
            class: class.into(),
            state: CompositionState::default(),
            errors: Vec::new(),
        }
    }

    /// Adds a child instance under a local name.
    pub fn child(mut self, name: impl Into<String>, obj: ObjRef) -> Self {
        let name = name.into();
        if self.state.children.insert(name.clone(), obj).is_some() {
            self.errors.push(format!("duplicate child `{name}`"));
        }
        self
    }

    /// Re-exports `interface` of child `child` as an interface of the
    /// composition itself.
    pub fn export(mut self, interface: impl Into<String>, child: impl Into<String>) -> Self {
        let (interface, child) = (interface.into(), child.into());
        match self.state.children.get(&child) {
            Some(c) if c.has_interface(&interface) => {
                self.state.exports.insert(interface, child);
            }
            Some(_) => self.errors.push(format!(
                "child `{child}` does not export interface `{interface}`"
            )),
            None => self.errors.push(format!("no child named `{child}`")),
        }
        self
    }

    /// Finishes the composition.
    pub fn build(self) -> ObjResult<ObjRef> {
        if let Some(e) = self.errors.first() {
            return Err(ObjError::Binding(e.clone()));
        }
        let mut builder = ObjectBuilder::new(self.class);

        // One forwarding interface per export. The current child instance
        // backs each call so that `replace` takes effect for existing
        // clients — this is the late-binding property. Resolution is
        // cached per hop ([`CallCache`]) and revalidated against the
        // composition's export generation, which `replace` bumps; the
        // argument slice is reused, never re-collected.
        for (iface_name, child_name) in &self.state.exports {
            let child = &self.state.children[child_name];
            let mut iface = Interface::new(iface_name.clone());
            for desc in child.descriptors() {
                if desc.interface != *iface_name {
                    continue;
                }
                for sig in desc.methods {
                    let (i, c, m) = (iface_name.clone(), child_name.clone(), sig.name.clone());
                    let cache = CallCache::new();
                    iface.insert_method(
                        sig,
                        std::sync::Arc::new(move |this: &ObjRef, args: &[Value]| {
                            cache.invoke(Some(this), || lookup_child(this, &c), &i, &m, args)
                        }),
                    );
                }
            }
            // Fallback covers methods added to the child after composition.
            let (i, c) = (iface_name.clone(), child_name.clone());
            let fwd_cache = CallCache::new();
            iface.set_fallback(std::sync::Arc::new(move |this, method, args| {
                fwd_cache.invoke(Some(this), || lookup_child(this, &c), &i, method, args)
            }));
            builder = builder.raw_interface(iface);
        }

        builder = builder.raw_interface(admin_interface());
        Ok(builder.state(self.state).build())
    }
}

/// Fetches the current instance of a child from the composition state.
fn lookup_child(this: &ObjRef, child: &str) -> ObjResult<ObjRef> {
    this.with_state(|s: &mut CompositionState| {
        s.children
            .get(child)
            .cloned()
            .ok_or_else(|| ObjError::Binding(format!("composition lost child `{child}`")))
    })
}

/// Builds the `composition` administrative interface: listing and replacing
/// children.
fn admin_interface() -> Interface {
    let mut iface = Interface::new(COMPOSITION_IFACE);
    iface.insert_method(
        MethodSig::new("children", &[], TypeTag::List),
        std::sync::Arc::new(|this: &ObjRef, _args: &[Value]| {
            this.with_state(|s: &mut CompositionState| {
                Ok(Value::List(
                    s.children.keys().map(|k| Value::Str(k.clone())).collect(),
                ))
            })
        }),
    );
    iface.insert_method(
        MethodSig::new("child", &[TypeTag::Str], TypeTag::Handle),
        std::sync::Arc::new(|this: &ObjRef, args: &[Value]| {
            let name = args[0].as_str()?.to_owned();
            lookup_child(this, &name).map(Value::Handle)
        }),
    );
    iface.insert_method(
        MethodSig::new("replace", &[TypeTag::Str, TypeTag::Handle], TypeTag::Handle),
        std::sync::Arc::new(|this: &ObjRef, args: &[Value]| {
            let name = args[0].as_str()?.to_owned();
            let new = args[1].as_handle()?.clone();
            let old = this.with_state(|s: &mut CompositionState| {
                let slot = s.children.get_mut(&name).ok_or_else(|| {
                    ObjError::Binding(format!("no child named `{name}` to replace"))
                })?;
                Ok(std::mem::replace(slot, new.clone()))
            })?;
            // Re-point every cached forward at the replacement instance.
            this.bump_export_generation();
            Ok(Value::Handle(old))
        }),
    );
    iface
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named_const(class: &str, v: i64) -> ObjRef {
        ObjectBuilder::new(class)
            .interface("val", |i| {
                i.method("get", &[], TypeTag::Int, move |_, _| Ok(Value::Int(v)))
            })
            .build()
    }

    #[test]
    fn composition_forwards_to_children() {
        let comp = CompositionBuilder::new("comp")
            .child("a", named_const("a", 1))
            .child("b", named_const("b", 2))
            .export("val", "b")
            .build()
            .unwrap();
        assert_eq!(comp.invoke("val", "get", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn children_listable_and_fetchable() {
        let comp = CompositionBuilder::new("comp")
            .child("x", named_const("x", 1))
            .child("y", named_const("y", 2))
            .build()
            .unwrap();
        let names = comp.invoke(COMPOSITION_IFACE, "children", &[]).unwrap();
        assert_eq!(
            names,
            Value::List(vec![Value::Str("x".into()), Value::Str("y".into())])
        );
        let x = comp
            .invoke(COMPOSITION_IFACE, "child", &[Value::Str("x".into())])
            .unwrap();
        let x = x.as_handle().unwrap();
        assert_eq!(x.invoke("val", "get", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn replace_swaps_instances_for_existing_clients() {
        let comp = CompositionBuilder::new("comp")
            .child("c", named_const("c", 10))
            .export("val", "c")
            .build()
            .unwrap();
        assert_eq!(comp.invoke("val", "get", &[]).unwrap(), Value::Int(10));
        let old = comp
            .invoke(
                COMPOSITION_IFACE,
                "replace",
                &[Value::Str("c".into()), Value::Handle(named_const("c2", 99))],
            )
            .unwrap();
        // The handle seen by clients is unchanged, but calls go to the
        // replacement instance.
        assert_eq!(comp.invoke("val", "get", &[]).unwrap(), Value::Int(99));
        let old = old.as_handle().unwrap();
        assert_eq!(old.invoke("val", "get", &[]).unwrap(), Value::Int(10));
    }

    #[test]
    fn replace_unknown_child_fails() {
        let comp = CompositionBuilder::new("comp").build().unwrap();
        let r = comp.invoke(
            COMPOSITION_IFACE,
            "replace",
            &[
                Value::Str("ghost".into()),
                Value::Handle(named_const("g", 0)),
            ],
        );
        assert!(matches!(r, Err(ObjError::Binding(_))));
    }

    #[test]
    fn export_validates_child_and_interface() {
        assert!(CompositionBuilder::new("c")
            .export("val", "missing")
            .build()
            .is_err());
        assert!(CompositionBuilder::new("c")
            .child("a", named_const("a", 1))
            .export("wrong-iface", "a")
            .build()
            .is_err());
    }

    #[test]
    fn duplicate_child_is_an_error() {
        assert!(CompositionBuilder::new("c")
            .child("a", named_const("a", 1))
            .child("a", named_const("a", 2))
            .build()
            .is_err());
    }

    #[test]
    fn compositions_nest_recursively() {
        let inner = CompositionBuilder::new("inner")
            .child("leaf", named_const("leaf", 7))
            .export("val", "leaf")
            .build()
            .unwrap();
        let outer = CompositionBuilder::new("outer")
            .child("inner", inner)
            .export("val", "inner")
            .build()
            .unwrap();
        assert_eq!(outer.invoke("val", "get", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn fallback_covers_methods_added_after_composition() {
        let child = named_const("c", 5);
        let comp = CompositionBuilder::new("comp")
            .child("c", child.clone())
            .export("val", "c")
            .build()
            .unwrap();
        // Extend the child's interface after the composition was built.
        let mut extended = Interface::new("val");
        extended.insert_method(
            MethodSig::new("get", &[], TypeTag::Int),
            std::sync::Arc::new(|_: &ObjRef, _: &[Value]| Ok(Value::Int(5))),
        );
        extended.insert_method(
            MethodSig::new("twice", &[], TypeTag::Int),
            std::sync::Arc::new(|_: &ObjRef, _: &[Value]| Ok(Value::Int(10))),
        );
        child.export_interface(extended);
        assert_eq!(comp.invoke("val", "twice", &[]).unwrap(), Value::Int(10));
    }
}
