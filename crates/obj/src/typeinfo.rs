//! Interface type information.
//!
//! Every interface carries *type information* (paper section 2: "an
//! interface is a set of methods, state pointers and type information").
//! Signatures are checked on every dynamic invocation, and interface
//! descriptors are what the directory service uses to synthesise proxies for
//! objects imported from other protection domains.

use crate::{error::ObjError, value::Value, ObjResult};

/// The type of one method parameter or result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeTag {
    /// No value.
    Unit,
    /// Boolean.
    Bool,
    /// Signed 64-bit integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Opaque byte string.
    Bytes,
    /// Object handle.
    Handle,
    /// Heterogeneous list.
    List,
    /// Matches any value (used by generic forwarders such as interposers).
    Any,
}

impl TypeTag {
    /// Returns true if a value of type `actual` may be passed where `self`
    /// is expected.
    pub fn accepts(self, actual: TypeTag) -> bool {
        self == TypeTag::Any || self == actual
    }
}

impl std::fmt::Display for TypeTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TypeTag::Unit => "unit",
            TypeTag::Bool => "bool",
            TypeTag::Int => "int",
            TypeTag::Str => "str",
            TypeTag::Bytes => "bytes",
            TypeTag::Handle => "handle",
            TypeTag::List => "list",
            TypeTag::Any => "any",
        };
        f.write_str(s)
    }
}

/// The signature of one interface method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name, unique within its interface.
    pub name: String,
    /// Parameter types, in order.
    pub params: Vec<TypeTag>,
    /// Result type.
    pub returns: TypeTag,
    /// True if the method accepts any number of trailing arguments.
    ///
    /// Generic forwarders (interposers, proxies for unknown interfaces) use
    /// variadic signatures so they can forward calls they cannot describe.
    pub variadic: bool,
}

impl MethodSig {
    /// Creates a fixed-arity signature.
    pub fn new(name: impl Into<String>, params: &[TypeTag], returns: TypeTag) -> Self {
        MethodSig {
            name: name.into(),
            params: params.to_vec(),
            returns,
            variadic: false,
        }
    }

    /// Creates a variadic signature that accepts any arguments.
    pub fn variadic(name: impl Into<String>, returns: TypeTag) -> Self {
        MethodSig {
            name: name.into(),
            params: Vec::new(),
            returns,
            variadic: true,
        }
    }

    /// Checks `args` against this signature.
    pub fn check_args(&self, args: &[Value]) -> ObjResult<()> {
        if self.variadic {
            return Ok(());
        }
        if args.len() != self.params.len() {
            return Err(ObjError::Arity {
                method: self.name.clone(),
                expected: self.params.len(),
                got: args.len(),
            });
        }
        for (i, (want, got)) in self.params.iter().zip(args).enumerate() {
            if !want.accepts(got.tag()) {
                return Err(ObjError::TypeMismatch {
                    context: format!("argument {i} of `{}`", self.name),
                    expected: *want,
                    got: got.tag(),
                });
            }
        }
        Ok(())
    }

    /// Checks a returned value against this signature.
    pub fn check_result(&self, result: &Value) -> ObjResult<()> {
        if self.returns.accepts(result.tag()) {
            Ok(())
        } else {
            Err(ObjError::TypeMismatch {
                context: format!("result of `{}`", self.name),
                expected: self.returns,
                got: result.tag(),
            })
        }
    }
}

/// A flattened description of an interface: its name plus all signatures.
///
/// Descriptors are serialisable metadata. The proxy generator in the nucleus
/// uses them to build a cross-domain stand-in for an object without access
/// to its implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceDescriptor {
    /// Interface name as exported by the object.
    pub interface: String,
    /// Signatures of every method, sorted by name.
    pub methods: Vec<MethodSig>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_accepts_everything() {
        for t in [
            TypeTag::Unit,
            TypeTag::Bool,
            TypeTag::Int,
            TypeTag::Str,
            TypeTag::Bytes,
            TypeTag::Handle,
            TypeTag::List,
            TypeTag::Any,
        ] {
            assert!(TypeTag::Any.accepts(t));
        }
        assert!(!TypeTag::Int.accepts(TypeTag::Str));
        assert!(TypeTag::Int.accepts(TypeTag::Int));
    }

    #[test]
    fn check_args_enforces_arity() {
        let sig = MethodSig::new("m", &[TypeTag::Int, TypeTag::Str], TypeTag::Unit);
        assert!(sig
            .check_args(&[Value::Int(1), Value::Str("x".into())])
            .is_ok());
        let err = sig.check_args(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            ObjError::Arity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn check_args_enforces_types() {
        let sig = MethodSig::new("m", &[TypeTag::Int], TypeTag::Unit);
        let err = sig.check_args(&[Value::Str("oops".into())]).unwrap_err();
        assert!(matches!(
            err,
            ObjError::TypeMismatch {
                expected: TypeTag::Int,
                got: TypeTag::Str,
                ..
            }
        ));
    }

    #[test]
    fn variadic_accepts_anything() {
        let sig = MethodSig::variadic("fwd", TypeTag::Any);
        assert!(sig.check_args(&[]).is_ok());
        assert!(sig
            .check_args(&[Value::Int(1), Value::Unit, Value::Bool(true)])
            .is_ok());
        assert!(sig.check_result(&Value::Int(1)).is_ok());
    }

    #[test]
    fn check_result_enforces_return_type() {
        let sig = MethodSig::new("m", &[], TypeTag::Int);
        assert!(sig.check_result(&Value::Int(1)).is_ok());
        assert!(sig.check_result(&Value::Unit).is_err());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(TypeTag::Bytes.to_string(), "bytes");
        assert_eq!(TypeTag::Any.to_string(), "any");
    }
}
