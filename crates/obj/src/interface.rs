//! Named interfaces: the only way to operate on an object.
//!
//! "Each object exports one or more named interfaces. … Objects can be
//! operated on only through the methods in the interfaces they export."
//! (paper, section 2). Interfaces being *named* is what allows them to
//! evolve: adding a `measurement` interface to an RPC object does not change
//! the `rpc` interface its existing users bound to.

use std::{collections::BTreeMap, sync::Arc};

use crate::{
    error::ObjError,
    object::{ObjRef, ResolvedMethod},
    snapcell::SnapCell,
    typeinfo::{InterfaceDescriptor, MethodSig, TypeTag},
    value::Value,
    ObjResult,
};

/// The implementation of one method.
///
/// The first argument is the receiving object instance (its "state pointer"
/// in the paper's terms); the slice carries the type-checked arguments.
pub type MethodFn = Arc<dyn Fn(&ObjRef, &[Value]) -> ObjResult<Value> + Send + Sync>;

/// A fallback handler invoked when a named method is not present.
///
/// This is the mechanism behind *method delegation* (paper section 2): an
/// interface may delegate methods it does not implement to another object.
pub type FallbackFn = Arc<dyn Fn(&ObjRef, &str, &[Value]) -> ObjResult<Value> + Send + Sync>;

/// One entry of an interface: signature plus implementation.
#[derive(Clone)]
pub struct Method {
    /// Type information for the method.
    pub sig: MethodSig,
    /// The code to run.
    pub imp: MethodFn,
}

impl std::fmt::Debug for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Method")
            .field("sig", &self.sig)
            .finish_non_exhaustive()
    }
}

impl Method {
    /// Runs this method on behalf of `this` with full signature checking.
    ///
    /// This is the one dispatch kernel shared by every call path — slow
    /// lookup, dispatch-cache hit, bound methods and cached forwarders all
    /// funnel through it, so fast and slow paths cannot drift apart.
    #[inline]
    pub fn call(&self, this: &ObjRef, args: &[Value]) -> ObjResult<Value> {
        self.sig.check_args(args)?;
        let result = (self.imp)(this, args)?;
        self.sig.check_result(&result)?;
        Ok(result)
    }
}

/// A named set of methods with type information.
///
/// Methods are stored behind `Arc` so resolved handles can be cached by the
/// dispatch fast path (per-object caches, [`CallCache`], cross-domain
/// proxies) without cloning signatures.
#[derive(Clone)]
pub struct Interface {
    name: String,
    methods: BTreeMap<String, Arc<Method>>,
    fallback: Option<FallbackFn>,
}

impl std::fmt::Debug for Interface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interface")
            .field("name", &self.name)
            .field("methods", &self.methods.keys().collect::<Vec<_>>())
            .field("has_fallback", &self.fallback.is_some())
            .finish()
    }
}

impl Interface {
    /// Creates an empty interface with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            methods: BTreeMap::new(),
            fallback: None,
        }
    }

    /// The interface name, unique within its exporting object.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a method.
    pub fn insert_method(&mut self, sig: MethodSig, imp: MethodFn) {
        self.methods
            .insert(sig.name.clone(), Arc::new(Method { sig, imp }));
    }

    /// Returns the directly implemented method `name`, if any. Delegated
    /// (fallback-only) methods are not returned — they have no resolvable
    /// handle.
    pub fn method(&self, name: &str) -> Option<&Arc<Method>> {
        self.methods.get(name)
    }

    /// Sets the delegation fallback, called for any method not present.
    pub fn set_fallback(&mut self, fallback: FallbackFn) {
        self.fallback = Some(fallback);
    }

    /// Returns the delegation fallback, if any. Interfaces are immutable
    /// once exported (re-exports replace the whole `Arc<Interface>`), so a
    /// dispatch cache may pin this handler for methods it has proven
    /// absent from the method table — valid until the export generation
    /// moves.
    pub fn fallback_fn(&self) -> Option<&FallbackFn> {
        self.fallback.as_ref()
    }

    /// Returns true if the interface has its own entry for `method`
    /// (delegated methods do not count).
    pub fn has_method(&self, method: &str) -> bool {
        self.methods.contains_key(method)
    }

    /// Returns the signature of `method`, if implemented directly.
    pub fn signature(&self, method: &str) -> Option<&MethodSig> {
        self.methods.get(method).map(|m| &m.sig)
    }

    /// Number of directly implemented methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Names of all directly implemented methods, sorted.
    pub fn method_names(&self) -> Vec<String> {
        self.methods.keys().cloned().collect()
    }

    /// Flattens this interface into serialisable type information.
    pub fn descriptor(&self) -> InterfaceDescriptor {
        InterfaceDescriptor {
            interface: self.name.clone(),
            methods: self.methods.values().map(|m| m.sig.clone()).collect(),
        }
    }

    /// Invokes `method` on behalf of `this`, checking arguments and result
    /// against the method signature. Falls back to the delegation handler
    /// when the method is not directly implemented.
    ///
    /// Arguments are passed through borrowed (`&[Value]`) end to end: no
    /// hop in the dispatch stack re-collects them into a fresh `Vec`.
    pub fn call(&self, this: &ObjRef, method: &str, args: &[Value]) -> ObjResult<Value> {
        match self.methods.get(method) {
            Some(m) => m.call(this, args),
            None => match &self.fallback {
                Some(fb) => fb(this, method, args),
                None => Err(ObjError::NoSuchMethod {
                    interface: self.name.clone(),
                    method: method.to_owned(),
                }),
            },
        }
    }
}

/// A pre-resolved method: the paper's "run time inline techniques"
/// (section 2) for when dispatch overhead matters.
///
/// Binding snapshots the method's signature and implementation, skipping
/// both interface and method-table lookups on every call. The trade-off
/// is explicit: a bound method does **not** observe later replacement of
/// the method on the interface — callers give up one step of late binding
/// for speed, which is why this is an opt-in fast path and not the
/// default.
#[derive(Clone)]
pub struct BoundMethod {
    method: Arc<Method>,
    this: ObjRef,
}

impl BoundMethod {
    /// Invokes the bound method with full signature checking. Arguments are
    /// borrowed straight through to the implementation — no per-call clone.
    pub fn call(&self, args: &[Value]) -> ObjResult<Value> {
        self.method.call(&self.this, args)
    }

    /// Invokes without argument/result type checks — the fully inlined
    /// variant (the signature was checked when the call site was
    /// compiled, in the paper's framing).
    pub fn call_unchecked_types(&self, args: &[Value]) -> ObjResult<Value> {
        (self.method.imp)(&self.this, args)
    }

    /// The bound signature.
    pub fn signature(&self) -> &MethodSig {
        &self.method.sig
    }
}

impl Interface {
    /// Pre-resolves `method` against `this`, returning the inline-call
    /// handle. Returns `None` for delegated (fallback-only) methods —
    /// those cannot be snapshotted without freezing the delegation target.
    ///
    /// Binding shares the interface's `Arc<Method>` entry; nothing is
    /// cloned beyond two reference counts.
    pub fn bind_method(&self, this: &ObjRef, method: &str) -> Option<BoundMethod> {
        self.methods.get(method).map(|m| BoundMethod {
            method: m.clone(),
            this: this.clone(),
        })
    }
}

/// A one-slot cache for forwarding a call to another object — the per-hop
/// "run time inline technique" used by interposers, compositions,
/// delegation and cross-domain proxies.
///
/// The cached resolution (target handle + method handle) is revalidated on
/// every call against two export-generation counters
/// ([`Object::export_generation`](crate::object::Object::export_generation)):
///
/// * the **holder**'s — the wrapper object whose forwarding topology can
///   change (an interposer being retargeted, a composition child being
///   replaced); wrappers bump their generation on such changes, and
/// * the **target**'s — bumped when the target re-exports or revokes an
///   interface.
///
/// A stale entry therefore misses cleanly and re-resolves; it can never
/// call an outdated implementation. On a hit the forward costs one atomic
/// snapshot load, two atomic generation loads and a short scan — no lock,
/// no name-space walk, no state downcast, no method-table lookup, and no
/// allocation.
#[derive(Default)]
pub struct CallCache {
    slot: SnapCell<Vec<CachedCall>>,
}

/// Pinned resolutions a [`CallCache`] holds: enough for a forwarding
/// fallback alternating between a few hot methods. Fresh entries are never
/// evicted; call sites spreading over more methods serve the excess
/// through the target's own dispatch cache instead.
const CALL_CACHE_SLOTS: usize = 4;

#[derive(Clone)]
struct CachedCall {
    holder_gen: u64,
    method: String,
    target: ObjRef,
    resolved: ResolvedMethod,
}

impl CallCache {
    /// Creates an empty cache. One `CallCache` serves one forwarding call
    /// site (a fixed interface; the method may vary, e.g. in a delegation
    /// fallback).
    pub fn new() -> Self {
        CallCache::default()
    }

    /// Forwards `interface::method(args)` to the object produced by
    /// `resolve_target`, caching the resolution.
    ///
    /// `holder` is the wrapper whose generation guards the cached *target*
    /// (pass `None` when the target can never be rebound, e.g. delegation
    /// to a fixed instance). `resolve_target` is only run on a cache miss.
    /// Methods served by a delegation fallback on the target are forwarded
    /// uncached — they have no stable handle to pin.
    #[inline]
    pub fn invoke(
        &self,
        holder: Option<&ObjRef>,
        resolve_target: impl FnOnce() -> ObjResult<ObjRef>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        let holder_gen = holder.map_or(0, |h| h.export_generation());
        // Lock-free fast path: one snapshot load plus generation checks.
        // The snapshot stays valid for the duration of the call even if a
        // concurrent miss republishes (see `snapcell`).
        if let Some(entries) = self.slot.load() {
            if let Some(c) = entries.iter().find(|c| {
                c.holder_gen == holder_gen && c.resolved.is_current(&c.target) && c.method == method
            }) {
                return c.resolved.call(&c.target, args);
            }
        }
        self.invoke_miss(holder_gen, resolve_target, interface, method, args)
    }

    /// Slow path of [`CallCache::invoke`]: resolve the current target and
    /// pin its method handle. Stale entries are dropped on republish;
    /// fresh ones are never evicted, bounding snapshot churn.
    #[cold]
    fn invoke_miss(
        &self,
        holder_gen: u64,
        resolve_target: impl FnOnce() -> ObjResult<ObjRef>,
        interface: &str,
        method: &str,
        args: &[Value],
    ) -> ObjResult<Value> {
        let target = resolve_target()?;
        match target.resolve_method(interface, method) {
            Some(resolved) => {
                let fresh = |c: &&CachedCall| {
                    c.holder_gen == holder_gen && c.resolved.is_current(&c.target)
                };
                let mut entries: Vec<CachedCall> = match self.slot.load() {
                    Some(t) => {
                        if t.iter().filter(fresh).count() >= CALL_CACHE_SLOTS {
                            // Full of current resolutions for other
                            // methods: serve uncached, no churn.
                            return resolved.call(&target, args);
                        }
                        t.iter().filter(fresh).cloned().collect()
                    }
                    None => Vec::with_capacity(1),
                };
                entries.push(CachedCall {
                    holder_gen,
                    method: method.to_owned(),
                    target: target.clone(),
                    resolved: resolved.clone(),
                });
                self.slot.publish(entries);
                resolved.call(&target, args)
            }
            None => target.invoke(interface, method, args),
        }
    }
}

impl std::fmt::Debug for CallCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.slot.load().map_or(0, Vec::len);
        f.debug_struct("CallCache")
            .field("cached", &cached)
            .finish()
    }
}

/// Builds a [`MethodFn`] from a plain closure, for use outside the
/// [`ObjectBuilder`](crate::ObjectBuilder) fluent API.
pub fn method_fn<F>(f: F) -> MethodFn
where
    F: Fn(&ObjRef, &[Value]) -> ObjResult<Value> + Send + Sync + 'static,
{
    Arc::new(f)
}

/// Convenience constructor for a variadic forwarding signature.
pub fn forward_sig(name: &str) -> MethodSig {
    MethodSig::variadic(name, TypeTag::Any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectBuilder;

    fn dummy() -> ObjRef {
        ObjectBuilder::new("dummy").build()
    }

    #[test]
    fn call_checks_signature() {
        let mut iface = Interface::new("math");
        iface.insert_method(
            MethodSig::new("double", &[TypeTag::Int], TypeTag::Int),
            method_fn(|_, args| Ok(Value::Int(args[0].as_int()? * 2))),
        );
        let this = dummy();
        assert_eq!(
            iface.call(&this, "double", &[Value::Int(21)]).unwrap(),
            Value::Int(42)
        );
        assert!(iface.call(&this, "double", &[]).is_err());
        assert!(iface
            .call(&this, "double", &[Value::Str("x".into())])
            .is_err());
        assert!(matches!(
            iface.call(&this, "triple", &[]),
            Err(ObjError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn call_checks_result_type() {
        let mut iface = Interface::new("bad");
        iface.insert_method(
            MethodSig::new("lie", &[], TypeTag::Int),
            method_fn(|_, _| Ok(Value::Unit)),
        );
        let err = iface.call(&dummy(), "lie", &[]).unwrap_err();
        assert!(matches!(err, ObjError::TypeMismatch { .. }));
    }

    #[test]
    fn fallback_handles_missing_methods() {
        let mut iface = Interface::new("fwd");
        iface.set_fallback(Arc::new(|_, method, _| Ok(Value::Str(method.to_owned()))));
        assert_eq!(
            iface.call(&dummy(), "anything", &[]).unwrap(),
            Value::Str("anything".into())
        );
    }

    #[test]
    fn descriptor_lists_sorted_methods() {
        let mut iface = Interface::new("dev");
        for name in ["write", "read", "ioctl"] {
            iface.insert_method(
                MethodSig::new(name, &[], TypeTag::Unit),
                method_fn(|_, _| Ok(Value::Unit)),
            );
        }
        let d = iface.descriptor();
        let names: Vec<_> = d.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["ioctl", "read", "write"]);
    }

    #[test]
    fn bound_methods_skip_lookup_but_check_types() {
        let obj = crate::ObjectBuilder::new("c")
            .state(0i64)
            .interface("ctr", |i| {
                i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let by = args[0].as_int()?;
                    this.with_state(|n: &mut i64| {
                        *n += by;
                        Ok(Value::Int(*n))
                    })
                })
            })
            .build();
        let bound = obj
            .interface("ctr")
            .unwrap()
            .bind_method(&obj, "incr")
            .unwrap();
        assert_eq!(bound.call(&[Value::Int(5)]).unwrap(), Value::Int(5));
        assert_eq!(bound.call(&[Value::Int(2)]).unwrap(), Value::Int(7));
        assert!(bound.call(&[Value::Str("x".into())]).is_err());
        assert_eq!(
            bound.call_unchecked_types(&[Value::Int(1)]).unwrap(),
            Value::Int(8)
        );
        assert_eq!(bound.signature().name, "incr");
        // Missing and delegated methods cannot be bound.
        assert!(obj
            .interface("ctr")
            .unwrap()
            .bind_method(&obj, "nope")
            .is_none());
    }

    #[test]
    fn bound_method_does_not_see_later_replacement() {
        // The documented trade-off: binding freezes the implementation.
        let obj = crate::ObjectBuilder::new("v")
            .interface("v", |i| {
                i.method("get", &[], TypeTag::Int, |_, _| Ok(Value::Int(1)))
            })
            .build();
        let bound = obj
            .interface("v")
            .unwrap()
            .bind_method(&obj, "get")
            .unwrap();
        let mut replacement = Interface::new("v");
        replacement.insert_method(
            MethodSig::new("get", &[], TypeTag::Int),
            method_fn(|_, _| Ok(Value::Int(2))),
        );
        obj.export_interface(replacement);
        assert_eq!(obj.invoke("v", "get", &[]).unwrap(), Value::Int(2));
        assert_eq!(bound.call(&[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn insert_method_replaces() {
        let mut iface = Interface::new("v");
        iface.insert_method(
            MethodSig::new("get", &[], TypeTag::Int),
            method_fn(|_, _| Ok(Value::Int(1))),
        );
        iface.insert_method(
            MethodSig::new("get", &[], TypeTag::Int),
            method_fn(|_, _| Ok(Value::Int(2))),
        );
        assert_eq!(iface.method_count(), 1);
        assert_eq!(iface.call(&dummy(), "get", &[]).unwrap(), Value::Int(2));
    }
}
