//! The Paramecium object model.
//!
//! This crate implements the *language-independent software architecture*
//! from section 2 of the paper: coarse-grained **objects** that export one or
//! more **named interfaces** (sets of methods, state pointers and type
//! information), **method delegation** for code sharing, and **composition**
//! (objects built out of other object instances, applicable recursively).
//!
//! Both operating-system components (schedulers, device drivers, protocol
//! layers) and application components (allocators, matrices) are written
//! against this one architecture, which is what allows them to be
//! interchanged, interposed upon, and moved between protection domains.
//!
//! Because the architecture is language independent, method dispatch here is
//! *dynamic*: methods take and return [`Value`]s and are described by
//! [`MethodSig`] type information. This is deliberate — it is what makes
//! generic interposing agents possible (an interposer can forward methods it
//! has never seen, exactly as the paper requires), and it models the binary
//! interface-table convention a real Paramecium implementation uses.
//!
//! # Examples
//!
//! ```
//! use paramecium_obj::{ObjectBuilder, TypeTag, Value};
//!
//! let counter = ObjectBuilder::new("counter")
//!     .state(0i64)
//!     .interface("counter", |i| {
//!         i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
//!             let by = args[0].as_int()?;
//!             this.with_state(|n: &mut i64| {
//!                 *n += by;
//!                 Ok(Value::Int(*n))
//!             })
//!         })
//!     })
//!     .build();
//!
//! let v = counter.invoke("counter", "incr", &[Value::Int(5)]).unwrap();
//! assert_eq!(v.as_int().unwrap(), 5);
//! ```

pub mod builder;
pub mod compose;
pub mod delegate;
pub mod error;
pub mod interface;
pub mod interpose;
pub mod object;
pub(crate) mod snapcell;
pub mod trylock;
pub mod typeinfo;
pub mod value;

pub use builder::{InterfaceBuilder, ObjectBuilder};
pub use compose::CompositionBuilder;
pub use delegate::delegate_interface;
pub use error::ObjError;
pub use interface::{BoundMethod, CallCache, Interface, Method, MethodFn};
pub use interpose::InterposerBuilder;
pub use object::{ObjRef, Object, ResolvedMethod};
pub use trylock::{TryLock, TryLockGuard};
pub use typeinfo::{InterfaceDescriptor, MethodSig, TypeTag};
pub use value::ArgFrame;
pub use value::Value;

/// Convenient result alias used throughout the object model.
pub type ObjResult<T> = Result<T, ObjError>;
