//! Method delegation.
//!
//! "To support code sharing the architecture supports method delegation"
//! (paper, section 2). An interface may implement some methods itself and
//! delegate the rest to another object's interface of the same name. Unlike
//! class inheritance, delegation happens between *instances* at run time.

use crate::{interface::Interface, object::ObjRef};

/// Wires `base` so that any method it does not implement is forwarded to
/// `target`'s interface of the same name.
///
/// The receiver seen by the delegated method is `target`, so delegated
/// methods operate on the target's instance data — this is delegation, not
/// inheritance.
///
/// # Examples
///
/// ```
/// use paramecium_obj::{delegate_interface, InterfaceBuilder, ObjectBuilder, TypeTag, Value};
///
/// let base = ObjectBuilder::new("base")
///     .interface("io", |i| {
///         i.method("read", &[], TypeTag::Str, |_, _| Ok(Value::Str("base-read".into())))
///             .method("write", &[], TypeTag::Str, |_, _| Ok(Value::Str("base-write".into())))
///     })
///     .build();
///
/// // A specialised object that overrides `write` and delegates `read`.
/// let iface = InterfaceBuilder::new("io")
///     .method("write", &[], TypeTag::Str, |_, _| Ok(Value::Str("fancy-write".into())))
///     .finish();
/// let specialised = ObjectBuilder::new("fancy")
///     .raw_interface(delegate_interface(iface, base))
///     .build();
///
/// assert_eq!(specialised.invoke("io", "write", &[]).unwrap(), Value::Str("fancy-write".into()));
/// assert_eq!(specialised.invoke("io", "read", &[]).unwrap(), Value::Str("base-read".into()));
/// ```
pub fn delegate_interface(base: Interface, target: ObjRef) -> Interface {
    let iface_name = base.name().to_owned();
    let mut iface = base;
    // Delegated calls reuse the incoming argument slice and cache the
    // resolved target method per call site. The target instance is fixed
    // (no holder generation to track); re-exports on the target itself
    // invalidate the cached handle via its export generation.
    let cache = crate::interface::CallCache::new();
    iface.set_fallback(std::sync::Arc::new(move |_this, method, args| {
        cache.invoke(None, || Ok(target.clone()), &iface_name, method, args)
    }));
    iface
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        builder::{InterfaceBuilder, ObjectBuilder},
        error::ObjError,
        typeinfo::TypeTag,
        value::Value,
    };

    fn base() -> ObjRef {
        ObjectBuilder::new("base")
            .state(0i64)
            .interface("ctr", |i| {
                i.method("incr", &[], TypeTag::Int, |this, _| {
                    this.with_state(|n: &mut i64| {
                        *n += 1;
                        Ok(Value::Int(*n))
                    })
                })
                .method("name", &[], TypeTag::Str, |_, _| {
                    Ok(Value::Str("base".into()))
                })
            })
            .build()
    }

    #[test]
    fn delegated_methods_run_on_target_state() {
        let b = base();
        let iface = InterfaceBuilder::new("ctr")
            .method("name", &[], TypeTag::Str, |_, _| {
                Ok(Value::Str("child".into()))
            })
            .finish();
        let child = ObjectBuilder::new("child")
            .raw_interface(delegate_interface(iface, b.clone()))
            .build();

        // Override wins.
        assert_eq!(
            child.invoke("ctr", "name", &[]).unwrap(),
            Value::Str("child".into())
        );
        // Delegated method mutates the *target's* state.
        child.invoke("ctr", "incr", &[]).unwrap();
        child.invoke("ctr", "incr", &[]).unwrap();
        assert_eq!(b.invoke("ctr", "incr", &[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn delegation_chains_compose() {
        let b = base();
        let mid_iface = InterfaceBuilder::new("ctr").finish();
        let mid = ObjectBuilder::new("mid")
            .raw_interface(delegate_interface(mid_iface, b))
            .build();
        let top_iface = InterfaceBuilder::new("ctr").finish();
        let top = ObjectBuilder::new("top")
            .raw_interface(delegate_interface(top_iface, mid))
            .build();
        assert_eq!(top.invoke("ctr", "incr", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn missing_everywhere_is_still_an_error() {
        let b = base();
        let iface = InterfaceBuilder::new("ctr").finish();
        let child = ObjectBuilder::new("child")
            .raw_interface(delegate_interface(iface, b))
            .build();
        assert!(matches!(
            child.invoke("ctr", "no-such", &[]),
            Err(ObjError::NoSuchMethod { .. })
        ));
    }
}
