//! Dynamic values passed across interface boundaries.
//!
//! Methods in the Paramecium object model are language independent, so
//! arguments and results are carried as self-describing [`Value`]s. The
//! variants mirror the wire representation a real implementation would use
//! for cross-domain marshalling, which is why every variant (other than
//! object handles, which are translated into proxies) can be serialised to a
//! flat byte string by `encode`/`decode`.

use bytes::Bytes;

use crate::{error::ObjError, object::ObjRef, typeinfo::TypeTag, ObjResult};

/// A dynamically typed value crossing an interface boundary.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The absence of a value (`void`).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer (also used for addresses and sizes).
    Int(i64),
    /// A UTF-8 string, e.g. an instance name.
    Str(String),
    /// An opaque byte string, e.g. a network packet or a component image.
    Bytes(Bytes),
    /// A reference to another object instance.
    ///
    /// When a value containing a handle crosses a protection-domain boundary
    /// the directory service replaces it with a proxy; inside one domain it
    /// is an ordinary reference.
    Handle(ObjRef),
    /// A heterogeneous sequence of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the [`TypeTag`] describing this value.
    pub fn tag(&self) -> TypeTag {
        match self {
            Value::Unit => TypeTag::Unit,
            Value::Bool(_) => TypeTag::Bool,
            Value::Int(_) => TypeTag::Int,
            Value::Str(_) => TypeTag::Str,
            Value::Bytes(_) => TypeTag::Bytes,
            Value::Handle(_) => TypeTag::Handle,
            Value::List(_) => TypeTag::List,
        }
    }

    /// Extracts a boolean, or reports a type mismatch.
    pub fn as_bool(&self) -> ObjResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ObjError::type_mismatch(TypeTag::Bool, other.tag())),
        }
    }

    /// Extracts an integer, or reports a type mismatch.
    pub fn as_int(&self) -> ObjResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ObjError::type_mismatch(TypeTag::Int, other.tag())),
        }
    }

    /// Extracts a string slice, or reports a type mismatch.
    pub fn as_str(&self) -> ObjResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ObjError::type_mismatch(TypeTag::Str, other.tag())),
        }
    }

    /// Extracts the byte string, or reports a type mismatch.
    pub fn as_bytes(&self) -> ObjResult<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(ObjError::type_mismatch(TypeTag::Bytes, other.tag())),
        }
    }

    /// Extracts an object handle, or reports a type mismatch.
    pub fn as_handle(&self) -> ObjResult<&ObjRef> {
        match self {
            Value::Handle(h) => Ok(h),
            other => Err(ObjError::type_mismatch(TypeTag::Handle, other.tag())),
        }
    }

    /// Extracts a list, or reports a type mismatch.
    pub fn as_list(&self) -> ObjResult<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(ObjError::type_mismatch(TypeTag::List, other.tag())),
        }
    }

    /// Returns the approximate marshalled size of this value in bytes.
    ///
    /// Used by the cross-domain proxy machinery to charge marshalling costs
    /// proportional to argument size, as a real kernel would pay to map or
    /// copy arguments between address spaces.
    pub fn marshalled_size(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 2,
            Value::Int(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            // A handle marshals as a 64-bit proxy slot index.
            Value::Handle(_) => 9,
            Value::List(l) => 5 + l.iter().map(Value::marshalled_size).sum::<usize>(),
        }
    }

    /// Serialises the value to a flat byte string.
    ///
    /// Handles cannot be flattened — they must be translated by the
    /// directory service first — so encoding one is an error. This mirrors
    /// the paper's design where the per-page fault handler "maps in
    /// arguments" but object references become proxies.
    pub fn encode(&self, out: &mut Vec<u8>) -> ObjResult<()> {
        match self {
            Value::Unit => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Handle(_) => {
                return Err(ObjError::Marshal(
                    "object handles cannot be flattened; translate to a proxy first".into(),
                ))
            }
            Value::List(l) => {
                out.push(5);
                out.extend_from_slice(&(l.len() as u32).to_le_bytes());
                for v in l {
                    v.encode(out)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialises one value from `buf` starting at `pos`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> ObjResult<Value> {
        let err = || ObjError::Marshal("truncated value encoding".into());
        let tag = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> ObjResult<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(err)?;
            *pos += n;
            Ok(s)
        };
        let read_len = |pos: &mut usize| -> ObjResult<usize> {
            let s = take(pos, 4)?;
            Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")) as usize)
        };
        Ok(match tag {
            0 => Value::Unit,
            1 => Value::Bool(take(pos, 1)?[0] != 0),
            2 => Value::Int(i64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            )),
            3 => {
                let n = read_len(pos)?;
                let s = std::str::from_utf8(take(pos, n)?)
                    .map_err(|_| ObjError::Marshal("invalid UTF-8 in string value".into()))?;
                Value::Str(s.to_owned())
            }
            4 => {
                let n = read_len(pos)?;
                Value::Bytes(Bytes::copy_from_slice(take(pos, n)?))
            }
            5 => {
                let n = read_len(pos)?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(buf, pos)?);
                }
                Value::List(items)
            }
            other => {
                return Err(ObjError::Marshal(format!(
                    "unknown value tag {other} in encoding"
                )))
            }
        })
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            // Handles compare by identity: two references to the same
            // instance are equal, distinct instances are not.
            (Value::Handle(a), Value::Handle(b)) => std::sync::Arc::ptr_eq(a, b),
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

impl From<ObjRef> for Value {
    fn from(h: ObjRef) -> Self {
        Value::Handle(h)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf).expect("encodable");
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).expect("decodable");
        assert_eq!(pos, buf.len(), "decode must consume the full encoding");
        out
    }

    #[test]
    fn encode_decode_roundtrip_scalars() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Str(String::new()),
            Value::Str("hello/world".into()),
            Value::Bytes(Bytes::from_static(b"\x00\xff\x01")),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip_nested_list() {
        let v = Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::Str("a".into()), Value::Unit]),
            Value::Bytes(Bytes::from_static(b"xyz")),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn handles_do_not_encode() {
        let obj = crate::ObjectBuilder::new("x").build();
        let mut buf = Vec::new();
        assert!(matches!(
            Value::Handle(obj).encode(&mut buf),
            Err(ObjError::Marshal(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::Str("truncate me".into()).encode(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                Value::decode(&buf[..cut], &mut pos).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut pos = 0;
        assert!(Value::decode(&[42], &mut pos).is_err());
    }

    #[test]
    fn accessors_check_types() {
        assert!(Value::Int(3).as_int().is_ok());
        assert!(Value::Int(3).as_str().is_err());
        assert!(Value::Str("s".into()).as_bytes().is_err());
        assert!(Value::Unit.as_bool().is_err());
        assert!(Value::List(vec![]).as_list().is_ok());
    }

    #[test]
    fn marshalled_size_tracks_payload() {
        assert_eq!(Value::Unit.marshalled_size(), 1);
        assert_eq!(Value::Int(7).marshalled_size(), 9);
        assert_eq!(Value::Str("abcd".into()).marshalled_size(), 9);
        let big = Value::Bytes(Bytes::from(vec![0u8; 1500]));
        assert_eq!(big.marshalled_size(), 1505);
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = crate::ObjectBuilder::new("x").build();
        let b = crate::ObjectBuilder::new("x").build();
        assert_eq!(Value::Handle(a.clone()), Value::Handle(a.clone()));
        assert_ne!(Value::Handle(a), Value::Handle(b));
    }
}
