//! Dynamic values passed across interface boundaries.
//!
//! Methods in the Paramecium object model are language independent, so
//! arguments and results are carried as self-describing [`Value`]s. The
//! variants mirror the wire representation a real implementation would use
//! for cross-domain marshalling, which is why every variant (other than
//! object handles, which are translated into proxies) can be serialised to a
//! flat byte string by `encode`/`decode`.

use bytes::Bytes;

use crate::{error::ObjError, object::ObjRef, typeinfo::TypeTag, ObjResult};

/// A dynamically typed value crossing an interface boundary.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// The absence of a value (`void`).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer (also used for addresses and sizes).
    Int(i64),
    /// A UTF-8 string, e.g. an instance name.
    Str(String),
    /// An opaque byte string, e.g. a network packet or a component image.
    Bytes(Bytes),
    /// A reference to another object instance.
    ///
    /// When a value containing a handle crosses a protection-domain boundary
    /// the directory service replaces it with a proxy; inside one domain it
    /// is an ordinary reference.
    Handle(ObjRef),
    /// A heterogeneous sequence of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the [`TypeTag`] describing this value.
    pub fn tag(&self) -> TypeTag {
        match self {
            Value::Unit => TypeTag::Unit,
            Value::Bool(_) => TypeTag::Bool,
            Value::Int(_) => TypeTag::Int,
            Value::Str(_) => TypeTag::Str,
            Value::Bytes(_) => TypeTag::Bytes,
            Value::Handle(_) => TypeTag::Handle,
            Value::List(_) => TypeTag::List,
        }
    }

    /// Extracts a boolean, or reports a type mismatch.
    pub fn as_bool(&self) -> ObjResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ObjError::type_mismatch(TypeTag::Bool, other.tag())),
        }
    }

    /// Extracts an integer, or reports a type mismatch.
    pub fn as_int(&self) -> ObjResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ObjError::type_mismatch(TypeTag::Int, other.tag())),
        }
    }

    /// Extracts a string slice, or reports a type mismatch.
    pub fn as_str(&self) -> ObjResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ObjError::type_mismatch(TypeTag::Str, other.tag())),
        }
    }

    /// Extracts the byte string, or reports a type mismatch.
    pub fn as_bytes(&self) -> ObjResult<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(ObjError::type_mismatch(TypeTag::Bytes, other.tag())),
        }
    }

    /// Extracts an object handle, or reports a type mismatch.
    pub fn as_handle(&self) -> ObjResult<&ObjRef> {
        match self {
            Value::Handle(h) => Ok(h),
            other => Err(ObjError::type_mismatch(TypeTag::Handle, other.tag())),
        }
    }

    /// Extracts a list, or reports a type mismatch.
    pub fn as_list(&self) -> ObjResult<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(ObjError::type_mismatch(TypeTag::List, other.tag())),
        }
    }

    /// Returns the approximate marshalled size of this value in bytes.
    ///
    /// Used by the cross-domain proxy machinery to charge marshalling costs
    /// proportional to argument size, as a real kernel would pay to map or
    /// copy arguments between address spaces.
    pub fn marshalled_size(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 2,
            Value::Int(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            // A handle marshals as a 64-bit proxy slot index.
            Value::Handle(_) => 9,
            Value::List(l) => 5 + l.iter().map(Value::marshalled_size).sum::<usize>(),
        }
    }

    /// Serialises the value to a flat byte string.
    ///
    /// Handles cannot be flattened — they must be translated by the
    /// directory service first — so encoding one is an error. This mirrors
    /// the paper's design where the per-page fault handler "maps in
    /// arguments" but object references become proxies.
    pub fn encode(&self, out: &mut Vec<u8>) -> ObjResult<()> {
        match self {
            Value::Unit => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Handle(_) => {
                return Err(ObjError::Marshal(
                    "object handles cannot be flattened; translate to a proxy first".into(),
                ))
            }
            Value::List(l) => {
                out.push(5);
                out.extend_from_slice(&(l.len() as u32).to_le_bytes());
                for v in l {
                    v.encode(out)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialises one value from `buf` starting at `pos`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> ObjResult<Value> {
        let err = || ObjError::Marshal("truncated value encoding".into());
        let tag = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> ObjResult<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(err)?;
            *pos += n;
            Ok(s)
        };
        let read_len = |pos: &mut usize| -> ObjResult<usize> {
            let s = take(pos, 4)?;
            Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")) as usize)
        };
        Ok(match tag {
            0 => Value::Unit,
            1 => Value::Bool(take(pos, 1)?[0] != 0),
            2 => Value::Int(i64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            )),
            3 => {
                let n = read_len(pos)?;
                let s = std::str::from_utf8(take(pos, n)?)
                    .map_err(|_| ObjError::Marshal("invalid UTF-8 in string value".into()))?;
                Value::Str(s.to_owned())
            }
            4 => {
                let n = read_len(pos)?;
                Value::Bytes(Bytes::copy_from_slice(take(pos, n)?))
            }
            5 => {
                let n = read_len(pos)?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(buf, pos)?);
                }
                Value::List(items)
            }
            other => {
                return Err(ObjError::Marshal(format!(
                    "unknown value tag {other} in encoding"
                )))
            }
        })
    }
}

/// Number of values an [`ArgFrame`] stores inline before spilling to the
/// heap.
pub const ARG_FRAME_INLINE: usize = 4;

/// An argument frame: the owned form of the `&[Value]` slices flowing
/// through method dispatch.
///
/// Most of the invocation stack never materialises a frame at all — call
/// paths borrow the caller's slice end to end. `ArgFrame` exists for the
/// places that *must* build a new frame (the cross-domain proxy marshalling
/// translated arguments, tooling that rewrites arguments per hop) and makes
/// that cheap: frames of up to [`ARG_FRAME_INLINE`] values live entirely on
/// the stack, so the common small flat (non-list) frame costs **zero heap
/// allocations**; longer frames transparently spill to a `Vec<Value>`.
///
/// # Inline-capacity trade-off
///
/// The inline capacity is a balance between stack traffic and allocator
/// traffic. Every interface method in this tree takes ≤ 3 arguments, so 4
/// inline slots cover the entire workload; at ~4 machine words per `Value`
/// the inline frame is ~5 cache lines worst case — still far cheaper than a
/// `Vec` round trip through the allocator on every cross-domain crossing.
/// Raising the capacity would only grow `memcpy` traffic for frames that
/// are nearly always short; lowering it would push real calls back onto the
/// heap. Frames behave identically (push/iter/`as_slice`) on both sides of
/// the threshold — a property pinned by `arg_frame_matches_vec_model` in
/// `tests/properties.rs`.
#[derive(Clone, Debug)]
pub struct ArgFrame {
    repr: FrameRepr,
}

#[derive(Clone, Debug)]
enum FrameRepr {
    Inline {
        len: u8,
        slots: [Value; ARG_FRAME_INLINE],
    },
    Heap(Vec<Value>),
}

impl ArgFrame {
    /// Creates an empty frame (inline, no allocation).
    pub fn new() -> Self {
        ArgFrame {
            repr: FrameRepr::Inline {
                len: 0,
                slots: Default::default(),
            },
        }
    }

    /// Creates an empty frame sized for `n` values: inline when `n` fits,
    /// a single up-front heap reservation otherwise.
    pub fn with_capacity(n: usize) -> Self {
        if n <= ARG_FRAME_INLINE {
            ArgFrame::new()
        } else {
            ArgFrame {
                repr: FrameRepr::Heap(Vec::with_capacity(n)),
            }
        }
    }

    /// Appends a value, spilling to the heap on overflow.
    pub fn push(&mut self, value: Value) {
        match &mut self.repr {
            FrameRepr::Inline { len, slots } => {
                let n = usize::from(*len);
                if n < ARG_FRAME_INLINE {
                    slots[n] = value;
                    *len += 1;
                } else {
                    let mut heap: Vec<Value> = Vec::with_capacity(ARG_FRAME_INLINE * 2);
                    heap.extend(slots.iter_mut().map(std::mem::take));
                    heap.push(value);
                    self.repr = FrameRepr::Heap(heap);
                }
            }
            FrameRepr::Heap(v) => v.push(value),
        }
    }

    /// Number of values in the frame.
    pub fn len(&self) -> usize {
        match &self.repr {
            FrameRepr::Inline { len, .. } => usize::from(*len),
            FrameRepr::Heap(v) => v.len(),
        }
    }

    /// True if the frame holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frame's values as the borrowed slice dispatch works with.
    pub fn as_slice(&self) -> &[Value] {
        match &self.repr {
            FrameRepr::Inline { len, slots } => &slots[..usize::from(*len)],
            FrameRepr::Heap(v) => v,
        }
    }

    /// Iterates the frame's values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.as_slice().iter()
    }

    /// True while the frame still lives in its inline storage (exposed so
    /// tests can pin the no-alloc property).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, FrameRepr::Inline { .. })
    }

    /// Converts into a plain `Vec<Value>` (allocates only if still inline).
    pub fn into_vec(self) -> Vec<Value> {
        match self.repr {
            FrameRepr::Inline { len, mut slots } => slots[..usize::from(len)]
                .iter_mut()
                .map(std::mem::take)
                .collect(),
            FrameRepr::Heap(v) => v,
        }
    }
}

impl Default for ArgFrame {
    fn default() -> Self {
        ArgFrame::new()
    }
}

impl std::ops::Deref for ArgFrame {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl From<Vec<Value>> for ArgFrame {
    fn from(v: Vec<Value>) -> Self {
        ArgFrame {
            repr: FrameRepr::Heap(v),
        }
    }
}

impl From<&[Value]> for ArgFrame {
    fn from(values: &[Value]) -> Self {
        let mut frame = ArgFrame::with_capacity(values.len());
        for v in values {
            frame.push(v.clone());
        }
        frame
    }
}

impl FromIterator<Value> for ArgFrame {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut frame = ArgFrame::new();
        for v in iter {
            frame.push(v);
        }
        frame
    }
}

impl Extend<Value> for ArgFrame {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a> IntoIterator for &'a ArgFrame {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for ArgFrame {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Value]> for ArgFrame {
    fn eq(&self, other: &[Value]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            // Handles compare by identity: two references to the same
            // instance are equal, distinct instances are not.
            (Value::Handle(a), Value::Handle(b)) => std::sync::Arc::ptr_eq(a, b),
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

impl From<ObjRef> for Value {
    fn from(h: ObjRef) -> Self {
        Value::Handle(h)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf).expect("encodable");
        let mut pos = 0;
        let out = Value::decode(&buf, &mut pos).expect("decodable");
        assert_eq!(pos, buf.len(), "decode must consume the full encoding");
        out
    }

    #[test]
    fn encode_decode_roundtrip_scalars() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Str(String::new()),
            Value::Str("hello/world".into()),
            Value::Bytes(Bytes::from_static(b"\x00\xff\x01")),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip_nested_list() {
        let v = Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::Str("a".into()), Value::Unit]),
            Value::Bytes(Bytes::from_static(b"xyz")),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn handles_do_not_encode() {
        let obj = crate::ObjectBuilder::new("x").build();
        let mut buf = Vec::new();
        assert!(matches!(
            Value::Handle(obj).encode(&mut buf),
            Err(ObjError::Marshal(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::Str("truncate me".into()).encode(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                Value::decode(&buf[..cut], &mut pos).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut pos = 0;
        assert!(Value::decode(&[42], &mut pos).is_err());
    }

    #[test]
    fn accessors_check_types() {
        assert!(Value::Int(3).as_int().is_ok());
        assert!(Value::Int(3).as_str().is_err());
        assert!(Value::Str("s".into()).as_bytes().is_err());
        assert!(Value::Unit.as_bool().is_err());
        assert!(Value::List(vec![]).as_list().is_ok());
    }

    #[test]
    fn marshalled_size_tracks_payload() {
        assert_eq!(Value::Unit.marshalled_size(), 1);
        assert_eq!(Value::Int(7).marshalled_size(), 9);
        assert_eq!(Value::Str("abcd".into()).marshalled_size(), 9);
        let big = Value::Bytes(Bytes::from(vec![0u8; 1500]));
        assert_eq!(big.marshalled_size(), 1505);
    }

    #[test]
    fn arg_frame_stays_inline_then_spills() {
        let mut f = ArgFrame::new();
        assert!(f.is_inline() && f.is_empty());
        for i in 0..ARG_FRAME_INLINE {
            f.push(Value::Int(i as i64));
            assert!(f.is_inline(), "≤{ARG_FRAME_INLINE} values stay inline");
        }
        assert_eq!(f.len(), ARG_FRAME_INLINE);
        f.push(Value::Str("spill".into()));
        assert!(!f.is_inline(), "overflow moves to the heap");
        assert_eq!(f.len(), ARG_FRAME_INLINE + 1);
        assert_eq!(f.as_slice()[0], Value::Int(0));
        assert_eq!(f.as_slice()[ARG_FRAME_INLINE], Value::Str("spill".into()));
    }

    #[test]
    fn arg_frame_conversions_roundtrip() {
        let values = vec![Value::Int(1), Value::Bool(true), Value::Unit];
        let frame = ArgFrame::from(values.as_slice());
        assert_eq!(frame.as_slice(), values.as_slice());
        assert_eq!(frame.iter().count(), 3);
        assert_eq!(frame.clone().into_vec(), values);
        let heap = ArgFrame::from(values.clone());
        assert!(!heap.is_inline(), "Vec conversion keeps the heap buffer");
        assert_eq!(heap, frame);
        assert_eq!(ArgFrame::with_capacity(10).len(), 0);
        let collected: ArgFrame = values.clone().into_iter().collect();
        assert_eq!(&collected[..], values.as_slice());
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = crate::ObjectBuilder::new("x").build();
        let b = crate::ObjectBuilder::new("x").build();
        assert_eq!(Value::Handle(a.clone()), Value::Handle(a.clone()));
        assert_ne!(Value::Handle(a), Value::Handle(b));
    }
}
