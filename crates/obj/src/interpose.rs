//! Interposing agents.
//!
//! "Building an interposing agent … consists of building an interposing
//! object (i.e., one that exports a superset of the original object's
//! interfaces, reimplements those methods it sees fit and forwards the
//! others to the original object) and replace the object handle in the name
//! space." (paper, section 2).
//!
//! This module provides the first half — building the interposing object.
//! Replacing the handle in the name space is done by the directory service
//! (`paramecium-core`), which makes all further lookups resolve to the
//! agent.

use std::{collections::BTreeMap, sync::Arc};

use crate::{
    builder::ObjectBuilder,
    interface::{CallCache, Interface, MethodFn},
    object::ObjRef,
    value::Value,
    ObjResult,
};

/// A hook observing every forwarded invocation.
///
/// Receives the interface name, method name and arguments. Hooks are how
/// monitoring tools (call tracers, packet counters, profilers) are built.
pub type ObserveFn = Arc<dyn Fn(&str, &str, &[Value]) + Send + Sync>;

/// Instance data of an interposer: the object it wraps.
struct InterposerState {
    target: ObjRef,
}

/// Administrative interface exported by every interposer.
pub const INTERPOSER_IFACE: &str = "interposer";

/// Builds an interposing agent around a target object.
///
/// The agent exports every interface of the target (a superset if
/// [`InterposerBuilder::extra_interface`] is used), forwarding every method
/// it does not override. Hooks run around forwarded calls.
///
/// # Examples
///
/// ```
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
/// use paramecium_obj::{InterposerBuilder, ObjectBuilder, TypeTag, Value};
///
/// let target = ObjectBuilder::new("svc")
///     .interface("svc", |i| {
///         i.method("ping", &[], TypeTag::Str, |_, _| Ok(Value::Str("pong".into())))
///     })
///     .build();
///
/// let calls = Arc::new(AtomicU64::new(0));
/// let c = calls.clone();
/// let agent = InterposerBuilder::new(target)
///     .before(move |_iface, _method, _args| { c.fetch_add(1, Ordering::Relaxed); })
///     .build();
///
/// assert_eq!(agent.invoke("svc", "ping", &[]).unwrap(), Value::Str("pong".into()));
/// assert_eq!(calls.load(Ordering::Relaxed), 1);
/// ```
pub struct InterposerBuilder {
    target: ObjRef,
    class: String,
    overrides: BTreeMap<(String, String), MethodFn>,
    extra: Vec<Interface>,
    before: Vec<ObserveFn>,
    after: Vec<ObserveFn>,
}

impl InterposerBuilder {
    /// Starts an interposer around `target`.
    pub fn new(target: ObjRef) -> Self {
        let class = format!("interposer<{}>", target.class());
        InterposerBuilder {
            target,
            class,
            overrides: BTreeMap::new(),
            extra: Vec::new(),
            before: Vec::new(),
            after: Vec::new(),
        }
    }

    /// Overrides the class name of the agent.
    pub fn class(mut self, class: impl Into<String>) -> Self {
        self.class = class.into();
        self
    }

    /// Reimplements one method of one interface.
    ///
    /// The receiver passed to `f` is the *interposer*; use
    /// [`interposer_target`] to reach the wrapped object for
    /// modify-and-forward implementations.
    pub fn override_method<F>(mut self, interface: &str, method: &str, f: F) -> Self
    where
        F: Fn(&ObjRef, &[Value]) -> ObjResult<Value> + Send + Sync + 'static,
    {
        self.overrides
            .insert((interface.to_owned(), method.to_owned()), Arc::new(f));
        self
    }

    /// Exports an additional interface not present on the target (the
    /// "superset" part of the paper's definition).
    pub fn extra_interface(mut self, iface: Interface) -> Self {
        self.extra.push(iface);
        self
    }

    /// Adds a hook that runs before every forwarded or overridden call.
    pub fn before(mut self, f: impl Fn(&str, &str, &[Value]) + Send + Sync + 'static) -> Self {
        self.before.push(Arc::new(f));
        self
    }

    /// Adds a hook that runs after every forwarded or overridden call.
    pub fn after(mut self, f: impl Fn(&str, &str, &[Value]) + Send + Sync + 'static) -> Self {
        self.after.push(Arc::new(f));
        self
    }

    /// Builds the agent object.
    pub fn build(self) -> ObjRef {
        let mut builder = ObjectBuilder::new(self.class).state(InterposerState {
            target: self.target.clone(),
        });

        let before = Arc::new(self.before);
        let after = Arc::new(self.after);
        let no_hooks = before.is_empty() && after.is_empty();

        for iface_name in self.target.interface_names() {
            let mut iface = Interface::new(iface_name.clone());
            // Copy the target's signatures so the agent is indistinguishable
            // from the original to type-aware clients.
            for desc in self.target.descriptors() {
                if desc.interface != iface_name {
                    continue;
                }
                for sig in desc.methods {
                    let key = (iface_name.clone(), sig.name.clone());
                    let (i, m) = key.clone();
                    let body: MethodFn = match self.overrides.get(&key) {
                        Some(ovr) => ovr.clone(),
                        None => {
                            // Forwarding reuses the incoming argument slice
                            // (no re-collect) and caches the resolved
                            // target method per hop; `retarget` bumps the
                            // agent's export generation so the cache
                            // re-resolves.
                            let (fi, fm) = (i.clone(), m.clone());
                            let cache = CallCache::new();
                            Arc::new(move |this: &ObjRef, args: &[Value]| {
                                cache.invoke(Some(this), || interposer_target(this), &fi, &fm, args)
                            })
                        }
                    };
                    // Without hooks the body is installed directly — one
                    // fewer indirect call and capture block per hop.
                    let wrapped: MethodFn = if no_hooks {
                        body
                    } else {
                        let (b, a) = (before.clone(), after.clone());
                        Arc::new(move |this: &ObjRef, args: &[Value]| {
                            for h in b.iter() {
                                h(&i, &m, args);
                            }
                            let r = body(this, args);
                            for h in a.iter() {
                                h(&i, &m, args);
                            }
                            r
                        })
                    };
                    iface.insert_method(sig, wrapped);
                }
            }
            // Forward methods unknown at wrap time (one shared cache per
            // interface; the method name is revalidated on every hit).
            let fwd_iface = iface_name.clone();
            let fwd_cache = CallCache::new();
            if no_hooks {
                iface.set_fallback(Arc::new(move |this, method, args| {
                    fwd_cache.invoke(
                        Some(this),
                        || interposer_target(this),
                        &fwd_iface,
                        method,
                        args,
                    )
                }));
            } else {
                let (b, a) = (before.clone(), after.clone());
                iface.set_fallback(Arc::new(move |this, method, args| {
                    for h in b.iter() {
                        h(&fwd_iface, method, args);
                    }
                    let r = fwd_cache.invoke(
                        Some(this),
                        || interposer_target(this),
                        &fwd_iface,
                        method,
                        args,
                    );
                    for h in a.iter() {
                        h(&fwd_iface, method, args);
                    }
                    r
                }));
            }
            builder = builder.raw_interface(iface);
        }

        for iface in self.extra {
            builder = builder.raw_interface(iface);
        }

        builder = builder.raw_interface(admin_interface());
        builder.build()
    }
}

/// Returns the object an interposer currently wraps.
pub fn interposer_target(agent: &ObjRef) -> ObjResult<ObjRef> {
    agent.with_state(|s: &mut InterposerState| Ok(s.target.clone()))
}

/// Builds the `interposer` administrative interface (`target`, `retarget`).
fn admin_interface() -> Interface {
    let mut iface = Interface::new(INTERPOSER_IFACE);
    iface.insert_method(
        crate::typeinfo::MethodSig::new("target", &[], crate::typeinfo::TypeTag::Handle),
        Arc::new(|this: &ObjRef, _: &[Value]| interposer_target(this).map(Value::Handle)),
    );
    iface.insert_method(
        crate::typeinfo::MethodSig::new(
            "retarget",
            &[crate::typeinfo::TypeTag::Handle],
            crate::typeinfo::TypeTag::Handle,
        ),
        Arc::new(|this: &ObjRef, args: &[Value]| {
            let new = args[0].as_handle()?.clone();
            let old = this
                .with_state(|s: &mut InterposerState| Ok(std::mem::replace(&mut s.target, new)))?;
            // Invalidate every per-hop forward cache pointing at the old
            // target: they revalidate against the agent's generation.
            this.bump_export_generation();
            Ok(Value::Handle(old))
        }),
    );
    iface
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{typeinfo::TypeTag, value::Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn target() -> ObjRef {
        ObjectBuilder::new("svc")
            .state(Vec::<i64>::new())
            .interface("svc", |i| {
                i.method("push", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                    let v = args[0].as_int()?;
                    this.with_state(|s: &mut Vec<i64>| {
                        s.push(v);
                        Ok(Value::Unit)
                    })
                })
                .method("sum", &[], TypeTag::Int, |this, _| {
                    this.with_state(|s: &mut Vec<i64>| Ok(Value::Int(s.iter().sum())))
                })
            })
            .build()
    }

    #[test]
    fn agent_is_transparent_for_unoverridden_methods() {
        let t = target();
        let agent = InterposerBuilder::new(t.clone()).build();
        agent.invoke("svc", "push", &[Value::Int(4)]).unwrap();
        agent.invoke("svc", "push", &[Value::Int(5)]).unwrap();
        assert_eq!(agent.invoke("svc", "sum", &[]).unwrap(), Value::Int(9));
        // State lives in the target, not the agent.
        assert_eq!(t.invoke("svc", "sum", &[]).unwrap(), Value::Int(9));
    }

    #[test]
    fn overrides_replace_behaviour() {
        let agent = InterposerBuilder::new(target())
            .override_method("svc", "sum", |_, _| Ok(Value::Int(-1)))
            .build();
        agent.invoke("svc", "push", &[Value::Int(4)]).unwrap();
        assert_eq!(agent.invoke("svc", "sum", &[]).unwrap(), Value::Int(-1));
    }

    #[test]
    fn override_can_modify_and_forward() {
        // Doubles every pushed value, then forwards.
        let agent = InterposerBuilder::new(target())
            .override_method("svc", "push", |this, args| {
                let v = args[0].as_int()?;
                interposer_target(this)?.invoke("svc", "push", &[Value::Int(v * 2)])
            })
            .build();
        agent.invoke("svc", "push", &[Value::Int(3)]).unwrap();
        assert_eq!(agent.invoke("svc", "sum", &[]).unwrap(), Value::Int(6));
    }

    #[test]
    fn hooks_observe_all_calls() {
        let count = Arc::new(AtomicU64::new(0));
        let c1 = count.clone();
        let c2 = count.clone();
        let agent = InterposerBuilder::new(target())
            .before(move |_, _, _| {
                c1.fetch_add(1, Ordering::Relaxed);
            })
            .after(move |_, _, _| {
                c2.fetch_add(10, Ordering::Relaxed);
            })
            .build();
        agent.invoke("svc", "push", &[Value::Int(1)]).unwrap();
        agent.invoke("svc", "sum", &[]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 22);
    }

    #[test]
    fn superset_interfaces_are_exported() {
        let mut extra = Interface::new("stats");
        extra.insert_method(
            crate::typeinfo::MethodSig::new("zero", &[], TypeTag::Int),
            Arc::new(|_: &ObjRef, _: &[Value]| Ok(Value::Int(0))),
        );
        let agent = InterposerBuilder::new(target())
            .extra_interface(extra)
            .build();
        assert!(agent.has_interface("svc"));
        assert!(agent.has_interface("stats"));
        assert_eq!(agent.invoke("stats", "zero", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn retarget_redirects_existing_clients() {
        let a = target();
        let b = target();
        let agent = InterposerBuilder::new(a.clone()).build();
        agent.invoke("svc", "push", &[Value::Int(1)]).unwrap();
        agent
            .invoke(INTERPOSER_IFACE, "retarget", &[Value::Handle(b.clone())])
            .unwrap();
        agent.invoke("svc", "push", &[Value::Int(2)]).unwrap();
        assert_eq!(a.invoke("svc", "sum", &[]).unwrap(), Value::Int(1));
        assert_eq!(b.invoke("svc", "sum", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn agents_stack() {
        let inner = InterposerBuilder::new(target()).build();
        let outer = InterposerBuilder::new(inner).build();
        outer.invoke("svc", "push", &[Value::Int(8)]).unwrap();
        assert_eq!(outer.invoke("svc", "sum", &[]).unwrap(), Value::Int(8));
    }
}
